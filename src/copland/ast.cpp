#include "copland/ast.h"

#include <algorithm>
#include <set>

namespace pera::copland {

namespace {
std::shared_ptr<Term> make(TermKind k) {
  auto t = std::make_shared<Term>();
  t->kind = k;
  return t;
}
}  // namespace

TermPtr Term::nil() { return make(TermKind::kNil); }

TermPtr Term::atom(std::string target) {
  auto t = make(TermKind::kAtom);
  t->target = std::move(target);
  return t;
}

TermPtr Term::measure(std::string asp, std::string place, std::string target) {
  auto t = make(TermKind::kMeasure);
  t->asp = std::move(asp);
  t->place = std::move(place);
  t->target = std::move(target);
  return t;
}

TermPtr Term::at(std::string place, TermPtr body) {
  auto t = make(TermKind::kAtPlace);
  t->place = std::move(place);
  t->child = std::move(body);
  return t;
}

TermPtr Term::sign() { return make(TermKind::kSign); }

TermPtr Term::hash() { return make(TermKind::kHash); }

TermPtr Term::call(std::string name, std::vector<TermPtr> args) {
  auto t = make(TermKind::kFunc);
  t->func = std::move(name);
  t->args = std::move(args);
  return t;
}

TermPtr Term::pipe(TermPtr a, TermPtr b) {
  auto t = make(TermKind::kPipe);
  t->left = std::move(a);
  t->right = std::move(b);
  return t;
}

TermPtr Term::seq(TermPtr a, TermPtr b, bool pass_l, bool pass_r) {
  auto t = make(TermKind::kBranch);
  t->branch = BranchKind::kSeq;
  t->left = std::move(a);
  t->right = std::move(b);
  t->pass_left = pass_l;
  t->pass_right = pass_r;
  return t;
}

TermPtr Term::par(TermPtr a, TermPtr b, bool pass_l, bool pass_r) {
  auto t = make(TermKind::kBranch);
  t->branch = BranchKind::kPar;
  t->left = std::move(a);
  t->right = std::move(b);
  t->pass_left = pass_l;
  t->pass_right = pass_r;
  return t;
}

TermPtr Term::guard(std::string test, TermPtr body) {
  auto t = make(TermKind::kGuard);
  t->test = std::move(test);
  t->child = std::move(body);
  return t;
}

TermPtr Term::path_star(TermPtr per_hop, TermPtr tail) {
  auto t = make(TermKind::kPathStar);
  t->left = std::move(per_hop);
  t->right = std::move(tail);
  return t;
}

TermPtr Term::forall(std::vector<std::string> vars, TermPtr body) {
  auto t = make(TermKind::kForall);
  t->vars = std::move(vars);
  t->child = std::move(body);
  return t;
}

bool equal(const TermPtr& a, const TermPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case TermKind::kNil:
    case TermKind::kSign:
    case TermKind::kHash:
      return true;
    case TermKind::kAtom:
      return a->target == b->target;
    case TermKind::kMeasure:
      return a->asp == b->asp && a->place == b->place && a->target == b->target;
    case TermKind::kAtPlace:
      return a->place == b->place && equal(a->child, b->child);
    case TermKind::kFunc: {
      if (a->func != b->func || a->args.size() != b->args.size()) return false;
      for (std::size_t i = 0; i < a->args.size(); ++i) {
        if (!equal(a->args[i], b->args[i])) return false;
      }
      return true;
    }
    case TermKind::kPipe:
      return equal(a->left, b->left) && equal(a->right, b->right);
    case TermKind::kBranch:
      return a->branch == b->branch && a->pass_left == b->pass_left &&
             a->pass_right == b->pass_right && equal(a->left, b->left) &&
             equal(a->right, b->right);
    case TermKind::kGuard:
      return a->test == b->test && equal(a->child, b->child);
    case TermKind::kPathStar:
      return equal(a->left, b->left) && equal(a->right, b->right);
    case TermKind::kForall:
      return a->vars == b->vars && equal(a->child, b->child);
  }
  return false;
}

std::size_t size(const TermPtr& t) {
  if (!t) return 0;
  std::size_t n = 1;
  n += size(t->child);
  n += size(t->left);
  n += size(t->right);
  for (const auto& a : t->args) n += size(a);
  return n;
}

namespace {
void collect_places(const TermPtr& t, std::set<std::string>& out) {
  if (!t) return;
  if (t->kind == TermKind::kAtPlace) out.insert(t->place);
  if (t->kind == TermKind::kMeasure && !t->place.empty()) out.insert(t->place);
  collect_places(t->child, out);
  collect_places(t->left, out);
  collect_places(t->right, out);
  for (const auto& a : t->args) collect_places(a, out);
}
}  // namespace

std::vector<std::string> places_of(const TermPtr& t) {
  std::set<std::string> s;
  collect_places(t, s);
  return {s.begin(), s.end()};
}

bool is_network_aware(const TermPtr& t) {
  if (!t) return false;
  if (t->kind == TermKind::kGuard || t->kind == TermKind::kPathStar ||
      t->kind == TermKind::kForall) {
    return true;
  }
  if (is_network_aware(t->child) || is_network_aware(t->left) ||
      is_network_aware(t->right)) {
    return true;
  }
  return std::any_of(t->args.begin(), t->args.end(),
                     [](const TermPtr& a) { return is_network_aware(a); });
}

}  // namespace pera::copland
