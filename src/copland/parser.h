// Recursive-descent parser for Copland requests and terms.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "copland/ast.h"
#include "copland/lexer.h"

namespace pera::copland {

/// Raised on lexical or syntax errors. Carries the byte offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, std::size_t pos)
      : std::runtime_error(msg + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Parse a full request: `*RP<params> : term`.
[[nodiscard]] Request parse_request(std::string_view src);

/// Parse a bare term (no `*RP :` prefix).
[[nodiscard]] TermPtr parse_term(std::string_view src);

}  // namespace pera::copland
