#include "copland/testbed.h"

#include <stdexcept>

#include "copland/pretty.h"

namespace pera::copland {

using crypto::Digest;

void TestbedPlatform::install(const std::string& place,
                              const std::string& name,
                              const std::string& content) {
  const ComponentId id{place, name};
  content_[id] = content;
  shadow_content_[id] = content;
  golden_[id] = crypto::sha256(content);
}

void TestbedPlatform::corrupt(const std::string& place,
                              const std::string& name,
                              const std::string& content) {
  const ComponentId id{place, name};
  if (!content_.contains(id)) {
    throw std::invalid_argument("corrupt: no such component " + place + "/" +
                                name);
  }
  content_[id] = content;
}

void TestbedPlatform::repair(const std::string& place,
                             const std::string& name) {
  const ComponentId id{place, name};
  const auto it = golden_.find(id);
  if (it == golden_.end()) {
    throw std::invalid_argument("repair: no golden value for " + place + "/" +
                                name);
  }
  // Restore by re-deriving content whose hash matches: we keep the original
  // content around under a shadow key instead of inverting the hash.
  const auto shadow = shadow_content_.find(id);
  if (shadow != shadow_content_.end()) {
    content_[id] = shadow->second;
  }
}

bool TestbedPlatform::is_corrupt(const std::string& place,
                                 const std::string& name) const {
  const ComponentId id{place, name};
  const auto c = content_.find(id);
  const auto g = golden_.find(id);
  if (c == content_.end() || g == golden_.end()) return false;
  return crypto::sha256(c->second) != g->second;
}

std::optional<Digest> TestbedPlatform::golden(const std::string& place,
                                              const std::string& name) const {
  const auto it = golden_.find(ComponentId{place, name});
  if (it == golden_.end()) return std::nullopt;
  return it->second;
}

void TestbedPlatform::set_test(const std::string& place,
                               const std::string& name, bool value) {
  tests_[ComponentId{place, name}] = value;
}

void TestbedPlatform::register_func(const std::string& name,
                                    FuncHandler handler) {
  funcs_[name] = std::move(handler);
}

MeasurementResult TestbedPlatform::measure(const std::string& place,
                                           const std::string& asp,
                                           const std::string& target) {
  // A corrupt measurer lies: it reports the golden value of its target
  // regardless of the target's actual content. This is exactly the threat
  // the §4.2 bank example worries about — a tampered bmon vouching for
  // malicious browser extensions.
  for (const auto& [cid, content] : content_) {
    if (cid.second == asp && is_corrupt(cid.first, cid.second)) {
      const auto g = golden_.find(ComponentId{place, target});
      MeasurementResult lie;
      lie.value = g != golden_.end() ? g->second
                                     : crypto::sha256("missing:" + place +
                                                      "/" + target);
      lie.claim = asp + " hashed " + target;
      return lie;
    }
  }

  const ComponentId id{place, target};
  const auto it = content_.find(id);
  MeasurementResult r;
  if (it != content_.end()) {
    r.value = crypto::sha256(it->second);
    r.claim = asp + " hashed " + target;
  } else {
    // Unknown target: measure the name itself — appraisal will flag it as
    // an unknown component unless a golden value exists.
    r.value = crypto::sha256("missing:" + place + "/" + target);
    r.claim = asp + " found no component " + target;
  }
  return r;
}

crypto::Signature TestbedPlatform::sign(const std::string& place,
                                        const Digest& d) {
  crypto::Signer* s = keys_.signer_for(place);
  if (s == nullptr) {
    s = &keys_.provision_hmac(place);
  }
  return s->sign(d);
}

EvidencePtr TestbedPlatform::call(Evaluator& ev, const std::string& place,
                                  const std::string& func,
                                  const std::vector<TermPtr>& args,
                                  const EvidencePtr& input) {
  const auto it = funcs_.find(func);
  if (it == funcs_.end()) {
    throw EvalError("no handler registered for function '" + func + "'");
  }
  return it->second(ev, place, args, input);
}

bool TestbedPlatform::test(const std::string& place, const std::string& name) {
  const auto it = tests_.find(ComponentId{place, name});
  return it == tests_.end() ? true : it->second;
}

std::optional<EvidencePtr> TestbedPlatform::stored(
    const crypto::Nonce& n) const {
  const auto it = store_.find(n.value);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

namespace {

// Find the first nonce in evidence (pre-order), if any.
std::optional<crypto::Nonce> find_nonce(const EvidencePtr& e) {
  if (!e) return std::nullopt;
  if (e->kind == EvidenceKind::kNonce) return e->nonce;
  for (const auto& c : {e->child, e->left, e->right}) {
    if (auto n = find_nonce(c)) return n;
  }
  return std::nullopt;
}

}  // namespace

void TestbedPlatform::install_default_funcs(crypto::NonceRegistry& registry) {
  // attest(T1, ..., Tk): evaluate each term argument at the current place
  // and fold the results together in order.
  register_func("attest", [](Evaluator& ev, const std::string& place,
                             const std::vector<TermPtr>& args,
                             const EvidencePtr& input) {
    EvidencePtr acc = input;
    for (const auto& arg : args) {
      acc = Evidence::extend(acc, ev.eval(arg, place, Evidence::empty()));
    }
    return acc;
  });

  // appraise: checks the incoming evidence against this platform's golden
  // values and summarizes the verdict as function output.
  register_func("appraise", [this](Evaluator&, const std::string& place,
                                   const std::vector<TermPtr>&,
                                   const EvidencePtr& input) {
    const AppraisalResult res = pera::copland::appraise(input, golden_, keys_);
    crypto::Bytes verdict;
    verdict.push_back(res.ok ? 1 : 0);
    return Evidence::func_out("appraise", place, input, std::move(verdict));
  });

  // certify / certify(n): bind a nonce into the evidence. With an argument
  // the nonce is looked up from the registry-observed set via the evidence.
  register_func("certify", [&registry](Evaluator&, const std::string& place,
                                       const std::vector<TermPtr>&,
                                       const EvidencePtr& input) {
    std::optional<crypto::Nonce> n = find_nonce(input);
    crypto::Bytes out;
    if (n) {
      registry.observe(*n);
      crypto::append(out, n->value);
    }
    return Evidence::func_out("certify", place, input, std::move(out));
  });

  // store / store(n): persist evidence keyed by the nonce it contains (or
  // by its own digest when no nonce is present).
  register_func("store", [this](Evaluator&, const std::string& place,
                                const std::vector<TermPtr>&,
                                const EvidencePtr& input) {
    std::optional<crypto::Nonce> n = find_nonce(input);
    const Digest key = n ? n->value : digest(input);
    store_[key] = input;
    return Evidence::func_out("store", place, input, {});
  });

  // retrieve(n): look up stored evidence. The nonce must arrive as input
  // evidence (the relying party binds it in).
  register_func("retrieve", [this](Evaluator&, const std::string& place,
                                   const std::vector<TermPtr>&,
                                   const EvidencePtr& input) {
    std::optional<crypto::Nonce> n = find_nonce(input);
    if (!n) throw EvalError("retrieve: no nonce in input evidence");
    const auto it = store_.find(n->value);
    if (it == store_.end()) {
      return Evidence::func_out("retrieve", place, input, {});
    }
    return it->second;
  });
}

std::string to_string(AppraisalFinding::Kind k) {
  switch (k) {
    case AppraisalFinding::Kind::kBadMeasurement: return "bad-measurement";
    case AppraisalFinding::Kind::kUnknownComponent: return "unknown-component";
    case AppraisalFinding::Kind::kBadSignature: return "bad-signature";
    case AppraisalFinding::Kind::kUnknownSigner: return "unknown-signer";
    case AppraisalFinding::Kind::kMissingNonce: return "missing-nonce";
    case AppraisalFinding::Kind::kStaleNonce: return "stale-nonce";
  }
  return "?";
}

namespace {

void appraise_rec(const EvidencePtr& e,
                  const std::map<ComponentId, Digest>& goldens,
                  const crypto::KeyStore& keys, AppraisalResult& res) {
  if (!e) return;
  switch (e->kind) {
    case EvidenceKind::kMeasurement: {
      ++res.measurements_checked;
      const auto it = goldens.find(ComponentId{e->place, e->target});
      if (it == goldens.end()) {
        res.add({AppraisalFinding::Kind::kUnknownComponent, e->place,
                 "no golden value for " + e->target});
      } else if (it->second != e->value) {
        res.add({AppraisalFinding::Kind::kBadMeasurement, e->place,
                 e->target + " measured " + e->value.short_hex() +
                     ", golden " + it->second.short_hex()});
      }
      break;
    }
    case EvidenceKind::kSignature: {
      ++res.signatures_checked;
      const crypto::Verifier* v = keys.verifier_by_key_id(e->sig.key_id);
      if (v == nullptr) {
        res.add({AppraisalFinding::Kind::kUnknownSigner, e->place,
                 "key id " + e->sig.key_id.short_hex()});
      } else if (!crypto::verify_any(*v, digest(e->child), e->sig)) {
        res.add({AppraisalFinding::Kind::kBadSignature, e->place,
                 "signature by " + e->place + " does not verify"});
      }
      break;
    }
    default:
      break;
  }
  appraise_rec(e->child, goldens, keys, res);
  appraise_rec(e->left, goldens, keys, res);
  appraise_rec(e->right, goldens, keys, res);
}

bool contains_nonce(const EvidencePtr& e, const crypto::Nonce& n) {
  if (!e) return false;
  if (e->kind == EvidenceKind::kNonce && e->nonce == n) return true;
  return contains_nonce(e->child, n) || contains_nonce(e->left, n) ||
         contains_nonce(e->right, n);
}

}  // namespace

AppraisalResult appraise(const EvidencePtr& evidence,
                         const std::map<ComponentId, Digest>& goldens,
                         const crypto::KeyStore& keys,
                         const std::optional<crypto::Nonce>& expected_nonce) {
  AppraisalResult res;
  appraise_rec(evidence, goldens, keys, res);
  if (expected_nonce && !contains_nonce(evidence, *expected_nonce)) {
    res.add({AppraisalFinding::Kind::kMissingNonce, "",
             "expected nonce " + expected_nonce->value.short_hex()});
  }
  return res;
}

}  // namespace pera::copland
