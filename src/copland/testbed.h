// A concrete Platform for evaluating Copland terms over a set of software
// components — the host-side substrate for the bank example of §4.2 and
// the repair-attack experiments (Ramsdell et al.).
//
// Components live at (place, name) and have content; measuring a component
// hashes its current content. An adversary mutates content between
// evaluation steps via the EvalObserver hooks. Appraisal compares measured
// values against golden digests recorded at provisioning time.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "copland/semantics.h"
#include "crypto/keystore.h"
#include "crypto/nonce.h"

namespace pera::copland {

/// Key for components and golden values: (place, component name).
using ComponentId = std::pair<std::string, std::string>;

/// Handler signature for named Copland functions (appraise, certify, ...).
using FuncHandler = std::function<EvidencePtr(
    Evaluator& ev, const std::string& place, const std::vector<TermPtr>& args,
    const EvidencePtr& input)>;

class TestbedPlatform final : public Platform {
 public:
  /// `keys` provides signers per place; unprovisioned places get an HMAC
  /// signer on first use.
  explicit TestbedPlatform(crypto::KeyStore& keys) : keys_(keys) {}

  // --- component management ---------------------------------------------

  /// Install a component and record its current content hash as golden.
  void install(const std::string& place, const std::string& name,
               const std::string& content);

  /// Mutate a component's content without touching the golden value
  /// (what an adversary does).
  void corrupt(const std::string& place, const std::string& name,
               const std::string& content);

  /// Restore a component to content matching its golden value.
  void repair(const std::string& place, const std::string& name);

  [[nodiscard]] bool is_corrupt(const std::string& place,
                                const std::string& name) const;

  [[nodiscard]] std::optional<crypto::Digest> golden(
      const std::string& place, const std::string& name) const;

  /// All golden values (for appraisal).
  [[nodiscard]] const std::map<ComponentId, crypto::Digest>& goldens() const {
    return golden_;
  }

  // --- guard tests ---------------------------------------------------------

  /// Register the result of a named Boolean test at a place.
  void set_test(const std::string& place, const std::string& name, bool value);

  // --- function registry -----------------------------------------------------

  /// Register a handler for a named Copland function. Overwrites.
  void register_func(const std::string& name, FuncHandler handler);

  /// Install default handlers: attest, appraise, certify, store, retrieve.
  /// `registry` is used by certify/store/retrieve for nonce bookkeeping.
  void install_default_funcs(crypto::NonceRegistry& registry);

  /// Evidence stored by the default `store(n)` handler, by nonce.
  [[nodiscard]] std::optional<EvidencePtr> stored(const crypto::Nonce& n) const;

  // --- Platform interface ------------------------------------------------
  [[nodiscard]] MeasurementResult measure(const std::string& place,
                                          const std::string& asp,
                                          const std::string& target) override;
  [[nodiscard]] crypto::Signature sign(const std::string& place,
                                       const crypto::Digest& d) override;
  [[nodiscard]] EvidencePtr call(Evaluator& ev, const std::string& place,
                                 const std::string& func,
                                 const std::vector<TermPtr>& args,
                                 const EvidencePtr& input) override;
  [[nodiscard]] bool test(const std::string& place,
                          const std::string& name) override;

  [[nodiscard]] crypto::KeyStore& keys() { return keys_; }

 private:
  crypto::KeyStore& keys_;
  std::map<ComponentId, std::string> content_;
  std::map<ComponentId, std::string> shadow_content_;  // pristine copies
  std::map<ComponentId, crypto::Digest> golden_;
  std::map<ComponentId, bool> tests_;
  std::map<std::string, FuncHandler> funcs_;
  std::map<crypto::Digest, EvidencePtr> store_;
};

// --- appraisal -------------------------------------------------------------

/// One appraisal finding.
struct AppraisalFinding {
  enum class Kind {
    kBadMeasurement,     // measured value != golden value
    kUnknownComponent,   // no golden value provisioned
    kBadSignature,       // signature failed to verify
    kUnknownSigner,      // no verifier for the signing key
    kMissingNonce,       // expected nonce not present in evidence
    kStaleNonce,         // nonce replayed
  };
  Kind kind;
  std::string place;
  std::string detail;
};

struct AppraisalResult {
  bool ok = true;
  std::vector<AppraisalFinding> findings;
  std::size_t measurements_checked = 0;
  std::size_t signatures_checked = 0;

  void add(AppraisalFinding f) {
    ok = false;
    findings.push_back(std::move(f));
  }
};

/// Appraise evidence against golden values and known keys:
///  * every measurement must match its golden value,
///  * every signature must verify under a known key,
///  * if `expected_nonce` is given, the evidence must contain it.
[[nodiscard]] AppraisalResult appraise(
    const EvidencePtr& evidence,
    const std::map<ComponentId, crypto::Digest>& goldens,
    const crypto::KeyStore& keys,
    const std::optional<crypto::Nonce>& expected_nonce = std::nullopt);

[[nodiscard]] std::string to_string(AppraisalFinding::Kind k);

}  // namespace pera::copland
