// Evidence terms — the values Copland evaluation produces.
//
// Evidence mirrors the structure of the term that produced it: measurements
// accumulate, `!` wraps evidence in a signature, `#` collapses evidence to
// its digest, branches pair up the evidence of their arms. Evidence has a
// canonical byte encoding; its SHA-256 is what gets signed and what the
// appraiser recomputes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/nonce.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace pera::copland {

struct Evidence;
using EvidencePtr = std::shared_ptr<const Evidence>;

enum class EvidenceKind : std::uint8_t {
  kEmpty = 0,
  kMeasurement = 1,  // asp measured target at place -> value
  kNonce = 2,        // freshness token bound into the evidence
  kSignature = 3,    // place signed child evidence
  kHashed = 4,       // child evidence collapsed to its digest
  kSeq = 5,          // ordered pair (left before right)
  kPar = 6,          // unordered pair
  kFuncOut = 7,      // output of a named function applied to child evidence
};

struct Evidence {
  EvidenceKind kind = EvidenceKind::kEmpty;

  // kMeasurement
  std::string asp;
  std::string target;
  std::string place;           // where the measurement/signature happened
  crypto::Digest value{};      // measured value (e.g. program digest)
  std::string claim;           // human-readable claim text

  // kNonce
  crypto::Nonce nonce{};

  // kSignature / kHashed / kFuncOut
  EvidencePtr child;
  crypto::Signature sig;       // kSignature
  crypto::Digest hash_value{}; // kHashed: digest of the collapsed child

  // kFuncOut
  std::string func;
  crypto::Bytes output;

  // kSeq / kPar
  EvidencePtr left;
  EvidencePtr right;

  // --- factories ---------------------------------------------------------
  static EvidencePtr empty();
  static EvidencePtr measurement(std::string asp, std::string place,
                                 std::string target, crypto::Digest value,
                                 std::string claim);
  static EvidencePtr nonce_ev(crypto::Nonce n);
  static EvidencePtr signature(std::string place, EvidencePtr child,
                               crypto::Signature sig);
  static EvidencePtr hashed(std::string place, crypto::Digest value);
  static EvidencePtr seq(EvidencePtr l, EvidencePtr r);
  static EvidencePtr par(EvidencePtr l, EvidencePtr r);
  static EvidencePtr func_out(std::string func, std::string place,
                              EvidencePtr input, crypto::Bytes output);

  /// Extend accumulated evidence with a new item: Empty + x = x,
  /// otherwise Seq(acc, x). This is the evidence-accumulation rule the
  /// evaluator uses for measurements in a pipeline.
  static EvidencePtr extend(const EvidencePtr& acc, EvidencePtr item);
};

/// Canonical byte encoding (self-delimiting, deterministic).
[[nodiscard]] crypto::Bytes encode(const EvidencePtr& e);

/// Decode evidence from its canonical encoding.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] EvidencePtr decode(crypto::BytesView data);

/// Digest of the canonical encoding — the value `!` signs and `#` keeps.
[[nodiscard]] crypto::Digest digest(const EvidencePtr& e);

/// Wire size of the canonical encoding.
[[nodiscard]] std::size_t wire_size(const EvidencePtr& e);

/// Number of nodes.
[[nodiscard]] std::size_t node_count(const EvidencePtr& e);

/// Human-readable multi-line rendering for logs and examples.
[[nodiscard]] std::string describe(const EvidencePtr& e);

/// Deep structural equality.
[[nodiscard]] bool equal(const EvidencePtr& a, const EvidencePtr& b);

/// Collect all measurement nodes (pre-order).
[[nodiscard]] std::vector<const Evidence*> measurements_of(const EvidencePtr& e);

/// Collect all signature nodes (pre-order).
[[nodiscard]] std::vector<const Evidence*> signatures_of(const EvidencePtr& e);

/// Collect all nonce nodes (pre-order).
[[nodiscard]] std::vector<const Evidence*> nonces_of(const EvidencePtr& e);

/// Order-preserving balanced `par` fold: adjacent items are paired level
/// by level, an unpaired trailing item is promoted unchanged — the same
/// build rule as the Merkle tree, so the fold of n items has depth
/// ceil(log2 n) instead of n. Empty input folds to Evidence::empty().
[[nodiscard]] EvidencePtr fold_par(std::vector<EvidencePtr> items);

/// Canonical fold: items are sorted by canonical encoding before folding,
/// so every permutation of the same item multiset folds to byte-identical
/// evidence. This is what makes delegated composition trees comparable —
/// two appraisers that saw the same per-switch evidence in different
/// arrival orders produce the same aggregate digest.
[[nodiscard]] EvidencePtr fold_par_canonical(std::vector<EvidencePtr> items);

}  // namespace pera::copland
