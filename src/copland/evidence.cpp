#include "copland/evidence.h"

#include <algorithm>
#include <stdexcept>

namespace pera::copland {

using crypto::Bytes;
using crypto::BytesView;
using crypto::Digest;

namespace {
std::shared_ptr<Evidence> make(EvidenceKind k) {
  auto e = std::make_shared<Evidence>();
  e->kind = k;
  return e;
}

void encode_string(Bytes& out, const std::string& s) {
  crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
  crypto::append(out, crypto::as_bytes(s));
}

std::string decode_string(BytesView data, std::size_t& off) {
  const std::uint32_t len = crypto::read_u32(data, off);
  off += 4;
  if (off + len > data.size()) {
    throw std::invalid_argument("evidence decode: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + off), len);
  off += len;
  return s;
}

Digest decode_digest(BytesView data, std::size_t& off) {
  if (off + 32 > data.size()) {
    throw std::invalid_argument("evidence decode: truncated digest");
  }
  Digest d;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + 32), d.v.begin());
  off += 32;
  return d;
}

void encode_rec(const EvidencePtr& e, Bytes& out);

EvidencePtr decode_rec(BytesView data, std::size_t& off);

void encode_rec(const EvidencePtr& e, Bytes& out) {
  if (!e) throw std::invalid_argument("evidence encode: null node");
  out.push_back(static_cast<std::uint8_t>(e->kind));
  switch (e->kind) {
    case EvidenceKind::kEmpty:
      return;
    case EvidenceKind::kMeasurement:
      encode_string(out, e->asp);
      encode_string(out, e->place);
      encode_string(out, e->target);
      crypto::append(out, e->value);
      encode_string(out, e->claim);
      return;
    case EvidenceKind::kNonce:
      crypto::append(out, e->nonce.value);
      return;
    case EvidenceKind::kSignature: {
      encode_string(out, e->place);
      const Bytes sig = e->sig.serialize();
      crypto::append_u32(out, static_cast<std::uint32_t>(sig.size()));
      crypto::append(out, BytesView{sig.data(), sig.size()});
      encode_rec(e->child, out);
      return;
    }
    case EvidenceKind::kHashed:
      encode_string(out, e->place);
      crypto::append(out, e->hash_value);
      return;
    case EvidenceKind::kSeq:
    case EvidenceKind::kPar:
      encode_rec(e->left, out);
      encode_rec(e->right, out);
      return;
    case EvidenceKind::kFuncOut:
      encode_string(out, e->func);
      encode_string(out, e->place);
      crypto::append_u32(out, static_cast<std::uint32_t>(e->output.size()));
      crypto::append(out, BytesView{e->output.data(), e->output.size()});
      encode_rec(e->child, out);
      return;
  }
  throw std::invalid_argument("evidence encode: unknown kind");
}

EvidencePtr decode_rec(BytesView data, std::size_t& off) {
  if (off >= data.size()) {
    throw std::invalid_argument("evidence decode: truncated node");
  }
  const auto kind = static_cast<EvidenceKind>(data[off++]);
  switch (kind) {
    case EvidenceKind::kEmpty:
      return Evidence::empty();
    case EvidenceKind::kMeasurement: {
      auto e = make(EvidenceKind::kMeasurement);
      e->asp = decode_string(data, off);
      e->place = decode_string(data, off);
      e->target = decode_string(data, off);
      e->value = decode_digest(data, off);
      e->claim = decode_string(data, off);
      return e;
    }
    case EvidenceKind::kNonce: {
      auto e = make(EvidenceKind::kNonce);
      e->nonce.value = decode_digest(data, off);
      return e;
    }
    case EvidenceKind::kSignature: {
      auto e = make(EvidenceKind::kSignature);
      e->place = decode_string(data, off);
      const std::uint32_t sig_len = crypto::read_u32(data, off);
      off += 4;
      if (off + sig_len > data.size()) {
        throw std::invalid_argument("evidence decode: truncated signature");
      }
      e->sig = crypto::Signature::deserialize(data.subspan(off, sig_len));
      off += sig_len;
      e->child = decode_rec(data, off);
      return e;
    }
    case EvidenceKind::kHashed: {
      auto e = make(EvidenceKind::kHashed);
      e->place = decode_string(data, off);
      e->hash_value = decode_digest(data, off);
      return e;
    }
    case EvidenceKind::kSeq:
    case EvidenceKind::kPar: {
      auto e = make(kind);
      e->left = decode_rec(data, off);
      e->right = decode_rec(data, off);
      return e;
    }
    case EvidenceKind::kFuncOut: {
      auto e = make(EvidenceKind::kFuncOut);
      e->func = decode_string(data, off);
      e->place = decode_string(data, off);
      const std::uint32_t out_len = crypto::read_u32(data, off);
      off += 4;
      if (off + out_len > data.size()) {
        throw std::invalid_argument("evidence decode: truncated output");
      }
      e->output.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                       data.begin() + static_cast<std::ptrdiff_t>(off + out_len));
      off += out_len;
      e->child = decode_rec(data, off);
      return e;
    }
  }
  throw std::invalid_argument("evidence decode: unknown kind byte");
}

}  // namespace

EvidencePtr Evidence::empty() {
  static const EvidencePtr kEmptyInstance = make(EvidenceKind::kEmpty);
  return kEmptyInstance;
}

EvidencePtr Evidence::measurement(std::string asp, std::string place,
                                  std::string target, Digest value,
                                  std::string claim) {
  auto e = make(EvidenceKind::kMeasurement);
  e->asp = std::move(asp);
  e->place = std::move(place);
  e->target = std::move(target);
  e->value = value;
  e->claim = std::move(claim);
  return e;
}

EvidencePtr Evidence::nonce_ev(crypto::Nonce n) {
  auto e = make(EvidenceKind::kNonce);
  e->nonce = n;
  return e;
}

EvidencePtr Evidence::signature(std::string place, EvidencePtr child,
                                crypto::Signature sig) {
  auto e = make(EvidenceKind::kSignature);
  e->place = std::move(place);
  e->child = std::move(child);
  e->sig = std::move(sig);
  return e;
}

EvidencePtr Evidence::hashed(std::string place, Digest value) {
  auto e = make(EvidenceKind::kHashed);
  e->place = std::move(place);
  e->hash_value = value;
  return e;
}

EvidencePtr Evidence::seq(EvidencePtr l, EvidencePtr r) {
  auto e = make(EvidenceKind::kSeq);
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

EvidencePtr Evidence::par(EvidencePtr l, EvidencePtr r) {
  auto e = make(EvidenceKind::kPar);
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

EvidencePtr Evidence::func_out(std::string func, std::string place,
                               EvidencePtr input, Bytes output) {
  auto e = make(EvidenceKind::kFuncOut);
  e->func = std::move(func);
  e->place = std::move(place);
  e->child = std::move(input);
  e->output = std::move(output);
  return e;
}

EvidencePtr Evidence::extend(const EvidencePtr& acc, EvidencePtr item) {
  if (!acc || acc->kind == EvidenceKind::kEmpty) return item;
  return seq(acc, std::move(item));
}

Bytes encode(const EvidencePtr& e) {
  Bytes out;
  encode_rec(e, out);
  return out;
}

EvidencePtr decode(BytesView data) {
  std::size_t off = 0;
  EvidencePtr e = decode_rec(data, off);
  if (off != data.size()) {
    throw std::invalid_argument("evidence decode: trailing bytes");
  }
  return e;
}

Digest digest(const EvidencePtr& e) {
  const Bytes enc = encode(e);
  return crypto::sha256(BytesView{enc.data(), enc.size()});
}

std::size_t wire_size(const EvidencePtr& e) { return encode(e).size(); }

std::size_t node_count(const EvidencePtr& e) {
  if (!e) return 0;
  return 1 + node_count(e->child) + node_count(e->left) + node_count(e->right);
}

namespace {
void describe_rec(const EvidencePtr& e, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (e->kind) {
    case EvidenceKind::kEmpty:
      out += pad + "(empty)\n";
      return;
    case EvidenceKind::kMeasurement:
      out += pad + "measurement: " + e->asp + "@" + e->place + " measured " +
             e->target + " = " + e->value.short_hex();
      if (!e->claim.empty()) out += " [" + e->claim + "]";
      out += '\n';
      return;
    case EvidenceKind::kNonce:
      out += pad + "nonce: " + e->nonce.value.short_hex() + "\n";
      return;
    case EvidenceKind::kSignature:
      out += pad + "signed by " + e->place + " (" +
             crypto::to_string(e->sig.scheme) + ", " +
             std::to_string(e->sig.wire_size()) + " B):\n";
      describe_rec(e->child, indent + 1, out);
      return;
    case EvidenceKind::kHashed:
      out += pad + "hashed at " + e->place + ": " + e->hash_value.short_hex() +
             "\n";
      return;
    case EvidenceKind::kSeq:
      out += pad + "seq:\n";
      describe_rec(e->left, indent + 1, out);
      describe_rec(e->right, indent + 1, out);
      return;
    case EvidenceKind::kPar:
      out += pad + "par:\n";
      describe_rec(e->left, indent + 1, out);
      describe_rec(e->right, indent + 1, out);
      return;
    case EvidenceKind::kFuncOut:
      out += pad + "func " + e->func + "@" + e->place + " (" +
             std::to_string(e->output.size()) + " B out):\n";
      describe_rec(e->child, indent + 1, out);
      return;
  }
}
}  // namespace

std::string describe(const EvidencePtr& e) {
  std::string out;
  describe_rec(e, 0, out);
  return out;
}

bool equal(const EvidencePtr& a, const EvidencePtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return encode(a) == encode(b);
}

namespace {
template <typename Pred>
void collect(const EvidencePtr& e, std::vector<const Evidence*>& out,
             Pred pred) {
  if (!e) return;
  if (pred(*e)) out.push_back(e.get());
  collect(e->child, out, pred);
  collect(e->left, out, pred);
  collect(e->right, out, pred);
}
}  // namespace

std::vector<const Evidence*> measurements_of(const EvidencePtr& e) {
  std::vector<const Evidence*> out;
  collect(e, out, [](const Evidence& n) {
    return n.kind == EvidenceKind::kMeasurement;
  });
  return out;
}

std::vector<const Evidence*> signatures_of(const EvidencePtr& e) {
  std::vector<const Evidence*> out;
  collect(e, out, [](const Evidence& n) {
    return n.kind == EvidenceKind::kSignature;
  });
  return out;
}

std::vector<const Evidence*> nonces_of(const EvidencePtr& e) {
  std::vector<const Evidence*> out;
  collect(e, out, [](const Evidence& n) {
    return n.kind == EvidenceKind::kNonce;
  });
  return out;
}

EvidencePtr fold_par(std::vector<EvidencePtr> items) {
  if (items.empty()) return Evidence::empty();
  while (items.size() > 1) {
    std::vector<EvidencePtr> next;
    next.reserve((items.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
      next.push_back(Evidence::par(items[i], items[i + 1]));
    }
    if (items.size() % 2 == 1) next.push_back(items.back());
    items = std::move(next);
  }
  return items.front();
}

EvidencePtr fold_par_canonical(std::vector<EvidencePtr> items) {
  std::sort(items.begin(), items.end(),
            [](const EvidencePtr& a, const EvidencePtr& b) {
              return encode(a) < encode(b);
            });
  return fold_par(std::move(items));
}

}  // namespace pera::copland
