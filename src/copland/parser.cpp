#include "copland/parser.h"

#include <set>
#include <utility>

namespace pera::copland {

namespace {

/// Recursive-descent parser over the token stream.
///
/// Precedence (loosest first):
///   body      := ('forall' idlist ':')? pathterm
///   pathterm  := guardterm ('*=>' guardterm)*     (left-assoc)
///   guardterm := (ID '|>')? branchterm
///   branchterm:= pipe (BRANCH pipe)*              (left-assoc)
///   pipe      := atom ('->' atom)*                (left-assoc)
///   atom      := '@' ID '[' body ']' | '(' body ')' | '!' | '#' | '{}'
///              | ID '(' args ')' | ID ID ID | ID
class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Request parse_request() {
    expect(TokKind::kStar);
    Request req;
    req.relying_party = expect(TokKind::kIdent).text;
    if (at(TokKind::kLAngle)) {
      advance();
      req.params.push_back(expect(TokKind::kIdent).text);
      while (at(TokKind::kComma)) {
        advance();
        req.params.push_back(expect(TokKind::kIdent).text);
      }
      expect(TokKind::kRAngle);
    }
    expect(TokKind::kColon);
    req.body = parse_body();
    expect(TokKind::kEnd);
    return req;
  }

  TermPtr parse_standalone_term() {
    TermPtr t = parse_body();
    expect(TokKind::kEnd);
    return t;
  }

 private:
  // Stamp a freshly built node with the source span [begin, last_end_).
  // Nodes are copied rather than mutated so TermPtr stays pointer-to-const.
  TermPtr spanned(const TermPtr& t, std::size_t begin) const {
    auto c = std::make_shared<Term>(*t);
    c->src_begin = begin;
    c->src_end = last_end_;
    return c;
  }

  TermPtr parse_body() {
    const std::size_t begin = cur().pos;
    if (at(TokKind::kForall)) {
      advance();
      std::vector<std::string> vars;
      vars.push_back(expect(TokKind::kIdent).text);
      while (at(TokKind::kComma)) {
        advance();
        vars.push_back(expect(TokKind::kIdent).text);
      }
      expect(TokKind::kColon);
      return spanned(Term::forall(std::move(vars), parse_pathterm()), begin);
    }
    return parse_pathterm();
  }

  TermPtr parse_pathterm() {
    const std::size_t begin = cur().pos;
    TermPtr t = parse_guardterm();
    while (at(TokKind::kPathStar)) {
      advance();
      t = spanned(Term::path_star(t, parse_guardterm()), begin);
    }
    return t;
  }

  TermPtr parse_guardterm() {
    const std::size_t begin = cur().pos;
    if (at(TokKind::kIdent) && peek(1).kind == TokKind::kGuard) {
      const std::string test = advance().text;
      advance();  // consume '|>'
      return spanned(Term::guard(test, parse_branchterm()), begin);
    }
    return parse_branchterm();
  }

  TermPtr parse_branchterm() {
    const std::size_t begin = cur().pos;
    TermPtr t = parse_pipe();
    while (at(TokKind::kBranch)) {
      const std::string op = advance().text;  // e.g. "-<-", "+~+"
      const bool pass_l = op[0] == '+';
      const bool pass_r = op[2] == '+';
      TermPtr rhs = parse_pipe();
      if (op[1] == '<') {
        t = Term::seq(std::move(t), std::move(rhs), pass_l, pass_r);
      } else {
        t = Term::par(std::move(t), std::move(rhs), pass_l, pass_r);
      }
      t = spanned(t, begin);
    }
    return t;
  }

  TermPtr parse_pipe() {
    const std::size_t begin = cur().pos;
    TermPtr t = parse_atom();
    while (at(TokKind::kArrow)) {
      advance();
      t = spanned(Term::pipe(std::move(t), parse_atom()), begin);
    }
    return t;
  }

  TermPtr parse_atom() {
    const std::size_t begin = cur().pos;
    if (at(TokKind::kAt)) {
      advance();
      std::string place = expect(TokKind::kIdent).text;
      expect(TokKind::kLBracket);
      TermPtr body = parse_body();
      expect(TokKind::kRBracket);
      return spanned(Term::at(std::move(place), std::move(body)), begin);
    }
    if (at(TokKind::kLParen)) {
      advance();
      TermPtr t = parse_body();
      expect(TokKind::kRParen);
      return t;
    }
    if (at(TokKind::kBang)) {
      advance();
      return spanned(Term::sign(), begin);
    }
    if (at(TokKind::kHashSym)) {
      advance();
      return spanned(Term::hash(), begin);
    }
    if (at(TokKind::kNilBraces)) {
      advance();
      return spanned(Term::nil(), begin);
    }
    if (at(TokKind::kIdent)) {
      const Token head = advance();
      if (at(TokKind::kLParen)) {
        advance();
        std::vector<TermPtr> args;
        if (!at(TokKind::kRParen)) {
          args.push_back(parse_body());
          while (at(TokKind::kComma)) {
            advance();
            args.push_back(parse_body());
          }
        }
        expect(TokKind::kRParen);
        return spanned(Term::call(head.text, std::move(args)), begin);
      }
      if (at(TokKind::kIdent) && peek(1).kind == TokKind::kIdent) {
        const std::string place = advance().text;
        const std::string target = advance().text;
        return spanned(Term::measure(head.text, place, target), begin);
      }
      // The paper writes the standard functions bare ("appraise -> store");
      // recognize them as zero-argument function calls.
      static const std::set<std::string> kBareFuncs = {
          "attest", "appraise", "certify", "store", "retrieve"};
      if (kBareFuncs.contains(head.text)) {
        return spanned(Term::call(head.text), begin);
      }
      return spanned(Term::atom(head.text), begin);
    }
    throw ParseError("expected a term, found " + to_string(cur().kind),
                     cur().pos);
  }

  // --- token stream helpers ---------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }

  [[nodiscard]] const Token& peek(std::size_t n) const {
    const std::size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }

  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }

  Token advance() {
    const Token& t = toks_[pos_];
    last_end_ = t.pos + t.text.size();
    return toks_[pos_++];
  }

  Token expect(TokKind k) {
    if (!at(k)) {
      throw ParseError("expected " + to_string(k) + ", found " +
                           to_string(cur().kind),
                       cur().pos);
    }
    return advance();
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::size_t last_end_ = 0;  // end offset of the last consumed token
};

}  // namespace

Request parse_request(std::string_view src) {
  Parser p(lex(src));
  return p.parse_request();
}

TermPtr parse_term(std::string_view src) {
  Parser p(lex(src));
  return p.parse_standalone_term();
}

}  // namespace pera::copland
