#include "copland/parser.h"

#include <set>
#include <utility>

namespace pera::copland {

namespace {

/// Recursive-descent parser over the token stream.
///
/// Precedence (loosest first):
///   body      := ('forall' idlist ':')? pathterm
///   pathterm  := guardterm ('*=>' guardterm)*     (left-assoc)
///   guardterm := (ID '|>')? branchterm
///   branchterm:= pipe (BRANCH pipe)*              (left-assoc)
///   pipe      := atom ('->' atom)*                (left-assoc)
///   atom      := '@' ID '[' body ']' | '(' body ')' | '!' | '#' | '{}'
///              | ID '(' args ')' | ID ID ID | ID
class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Request parse_request() {
    expect(TokKind::kStar);
    Request req;
    req.relying_party = expect(TokKind::kIdent).text;
    if (at(TokKind::kLAngle)) {
      advance();
      req.params.push_back(expect(TokKind::kIdent).text);
      while (at(TokKind::kComma)) {
        advance();
        req.params.push_back(expect(TokKind::kIdent).text);
      }
      expect(TokKind::kRAngle);
    }
    expect(TokKind::kColon);
    req.body = parse_body();
    expect(TokKind::kEnd);
    return req;
  }

  TermPtr parse_standalone_term() {
    TermPtr t = parse_body();
    expect(TokKind::kEnd);
    return t;
  }

 private:
  TermPtr parse_body() {
    if (at(TokKind::kForall)) {
      advance();
      std::vector<std::string> vars;
      vars.push_back(expect(TokKind::kIdent).text);
      while (at(TokKind::kComma)) {
        advance();
        vars.push_back(expect(TokKind::kIdent).text);
      }
      expect(TokKind::kColon);
      return Term::forall(std::move(vars), parse_pathterm());
    }
    return parse_pathterm();
  }

  TermPtr parse_pathterm() {
    TermPtr t = parse_guardterm();
    while (at(TokKind::kPathStar)) {
      advance();
      t = Term::path_star(t, parse_guardterm());
    }
    return t;
  }

  TermPtr parse_guardterm() {
    if (at(TokKind::kIdent) && peek(1).kind == TokKind::kGuard) {
      const std::string test = advance().text;
      advance();  // consume '|>'
      return Term::guard(test, parse_branchterm());
    }
    return parse_branchterm();
  }

  TermPtr parse_branchterm() {
    TermPtr t = parse_pipe();
    while (at(TokKind::kBranch)) {
      const std::string op = advance().text;  // e.g. "-<-", "+~+"
      const bool pass_l = op[0] == '+';
      const bool pass_r = op[2] == '+';
      TermPtr rhs = parse_pipe();
      if (op[1] == '<') {
        t = Term::seq(std::move(t), std::move(rhs), pass_l, pass_r);
      } else {
        t = Term::par(std::move(t), std::move(rhs), pass_l, pass_r);
      }
    }
    return t;
  }

  TermPtr parse_pipe() {
    TermPtr t = parse_atom();
    while (at(TokKind::kArrow)) {
      advance();
      t = Term::pipe(std::move(t), parse_atom());
    }
    return t;
  }

  TermPtr parse_atom() {
    if (at(TokKind::kAt)) {
      advance();
      std::string place = expect(TokKind::kIdent).text;
      expect(TokKind::kLBracket);
      TermPtr body = parse_body();
      expect(TokKind::kRBracket);
      return Term::at(std::move(place), std::move(body));
    }
    if (at(TokKind::kLParen)) {
      advance();
      TermPtr t = parse_body();
      expect(TokKind::kRParen);
      return t;
    }
    if (at(TokKind::kBang)) {
      advance();
      return Term::sign();
    }
    if (at(TokKind::kHashSym)) {
      advance();
      return Term::hash();
    }
    if (at(TokKind::kNilBraces)) {
      advance();
      return Term::nil();
    }
    if (at(TokKind::kIdent)) {
      const Token head = advance();
      if (at(TokKind::kLParen)) {
        advance();
        std::vector<TermPtr> args;
        if (!at(TokKind::kRParen)) {
          args.push_back(parse_body());
          while (at(TokKind::kComma)) {
            advance();
            args.push_back(parse_body());
          }
        }
        expect(TokKind::kRParen);
        return Term::call(head.text, std::move(args));
      }
      if (at(TokKind::kIdent) && peek(1).kind == TokKind::kIdent) {
        const std::string place = advance().text;
        const std::string target = advance().text;
        return Term::measure(head.text, place, target);
      }
      // The paper writes the standard functions bare ("appraise -> store");
      // recognize them as zero-argument function calls.
      static const std::set<std::string> kBareFuncs = {
          "attest", "appraise", "certify", "store", "retrieve"};
      if (kBareFuncs.contains(head.text)) {
        return Term::call(head.text);
      }
      return Term::atom(head.text);
    }
    throw ParseError("expected a term, found " + to_string(cur().kind),
                     cur().pos);
  }

  // --- token stream helpers ---------------------------------------------
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }

  [[nodiscard]] const Token& peek(std::size_t n) const {
    const std::size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }

  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }

  Token advance() { return toks_[pos_++]; }

  Token expect(TokKind k) {
    if (!at(k)) {
      throw ParseError("expected " + to_string(k) + ", found " +
                           to_string(cur().kind),
                       cur().pos);
    }
    return advance();
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Request parse_request(std::string_view src) {
  Parser p(lex(src));
  return p.parse_request();
}

TermPtr parse_term(std::string_view src) {
  Parser p(lex(src));
  return p.parse_standalone_term();
}

}  // namespace pera::copland
