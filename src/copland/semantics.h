// Denotational evaluator for Copland terms — a software Copland Virtual
// Machine (CVM). Evaluation is parameterized over a Platform that supplies
// the actual measurement, signing and function primitives of each place,
// and an observer that lets tests and adversary models watch (and, for
// parallel branches, schedule) evaluation.
//
// Network-aware nodes (kGuard / kPathStar / kForall) are *not* handled
// here — they must first be compiled against a concrete path by
// nac::bind_path(); the evaluator throws EvalError on them.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "copland/ast.h"
#include "copland/evidence.h"

namespace pera::copland {

class Evaluator;

/// Result of one measurement primitive.
struct MeasurementResult {
  crypto::Digest value{};
  std::string claim;
};

/// The mechanism a place provides: Copland keeps policy separate from
/// mechanism, and this interface is the mechanism boundary.
class Platform {
 public:
  virtual ~Platform() = default;

  /// ASP `asp` at place `place` measures `target`.
  [[nodiscard]] virtual MeasurementResult measure(const std::string& place,
                                                  const std::string& asp,
                                                  const std::string& target) = 0;

  /// Place signs a digest (Copland `!`).
  [[nodiscard]] virtual crypto::Signature sign(const std::string& place,
                                               const crypto::Digest& d) = 0;

  /// Named function (appraise / certify / store / retrieve / attest / ...).
  /// `args` are unevaluated term arguments; implementations may re-enter
  /// the evaluator to evaluate them (e.g. attest(Hardware -~- Program)).
  [[nodiscard]] virtual EvidencePtr call(Evaluator& ev,
                                         const std::string& place,
                                         const std::string& func,
                                         const std::vector<TermPtr>& args,
                                         const EvidencePtr& input) = 0;

  /// Boolean test for guard nodes (`T |> C`). Default: true.
  [[nodiscard]] virtual bool test(const std::string& place,
                                  const std::string& name) {
    (void)place;
    (void)name;
    return true;
  }
};

/// Hook for observing/scheduling evaluation. The adversary model uses
/// on_event to corrupt/repair components between steps, and
/// par_left_first to pick the interleaving of a parallel branch.
class EvalObserver {
 public:
  virtual ~EvalObserver() = default;

  /// Called before each node is evaluated, with the resolved place.
  virtual void on_event(const Term& term, const std::string& place) {
    (void)term;
    (void)place;
  }

  /// Order of a parallel branch: true = left arm first.
  [[nodiscard]] virtual bool par_left_first(const Term& term) {
    (void)term;
    return true;
  }
};

class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Evaluation statistics (fed into the bench harnesses).
struct EvalStats {
  std::size_t measurements = 0;
  std::size_t signatures = 0;
  std::size_t hashes = 0;
  std::size_t func_calls = 0;
  std::size_t place_hops = 0;  // @P dispatches
  std::size_t guard_tests = 0;
};

/// The CVM. Stateless between calls except for accumulated stats.
class Evaluator {
 public:
  explicit Evaluator(Platform& platform, EvalObserver* observer = nullptr)
      : platform_(platform), observer_(observer) {}

  /// Evaluate `term` at `place` with incoming evidence `input`.
  [[nodiscard]] EvidencePtr eval(const TermPtr& term, const std::string& place,
                                 const EvidencePtr& input);

  /// Evaluate a full request from the relying party's own place.
  /// A fresh nonce may be bound in by passing it as `input` evidence.
  [[nodiscard]] EvidencePtr eval(const Request& req, const EvidencePtr& input);

  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EvalStats{}; }

  [[nodiscard]] Platform& platform() { return platform_; }

 private:
  Platform& platform_;
  EvalObserver* observer_;
  EvalStats stats_;
};

}  // namespace pera::copland
