#include "copland/semantics.h"

#include "copland/pretty.h"

namespace pera::copland {

EvidencePtr Evaluator::eval(const TermPtr& term, const std::string& place,
                            const EvidencePtr& input) {
  if (!term) throw EvalError("eval: null term");
  if (observer_ != nullptr) observer_->on_event(*term, place);

  switch (term->kind) {
    case TermKind::kNil:
      return input;

    case TermKind::kAtom: {
      ++stats_.measurements;
      MeasurementResult m = platform_.measure(place, place, term->target);
      return Evidence::extend(
          input, Evidence::measurement(place, place, term->target, m.value,
                                       std::move(m.claim)));
    }

    case TermKind::kMeasure: {
      ++stats_.measurements;
      MeasurementResult m =
          platform_.measure(term->place, term->asp, term->target);
      return Evidence::extend(
          input, Evidence::measurement(term->asp, term->place, term->target,
                                       m.value, std::move(m.claim)));
    }

    case TermKind::kAtPlace: {
      ++stats_.place_hops;
      return eval(term->child, term->place, input);
    }

    case TermKind::kSign: {
      ++stats_.signatures;
      const crypto::Digest d = digest(input);
      crypto::Signature sig = platform_.sign(place, d);
      return Evidence::signature(place, input, std::move(sig));
    }

    case TermKind::kHash: {
      ++stats_.hashes;
      return Evidence::hashed(place, digest(input));
    }

    case TermKind::kFunc: {
      ++stats_.func_calls;
      return platform_.call(*this, place, term->func, term->args, input);
    }

    case TermKind::kPipe: {
      EvidencePtr mid = eval(term->left, place, input);
      return eval(term->right, place, mid);
    }

    case TermKind::kBranch: {
      const EvidencePtr in_l =
          term->pass_left ? input : Evidence::empty();
      const EvidencePtr in_r =
          term->pass_right ? input : Evidence::empty();
      EvidencePtr l;
      EvidencePtr r;
      if (term->branch == BranchKind::kSeq) {
        // Strict ordering: left completes before right starts.
        l = eval(term->left, place, in_l);
        r = eval(term->right, place, in_r);
      } else {
        // Parallel: the observer (e.g. an adversary with scheduling
        // power) picks the interleaving.
        const bool left_first =
            observer_ == nullptr || observer_->par_left_first(*term);
        if (left_first) {
          l = eval(term->left, place, in_l);
          r = eval(term->right, place, in_r);
        } else {
          r = eval(term->right, place, in_r);
          l = eval(term->left, place, in_l);
        }
      }
      return term->branch == BranchKind::kSeq ? Evidence::seq(l, r)
                                              : Evidence::par(l, r);
    }

    case TermKind::kGuard: {
      ++stats_.guard_tests;
      if (!platform_.test(place, term->test)) {
        // Failed guard: "fail early" (§5.1) — contribute no evidence.
        return Evidence::empty();
      }
      return eval(term->child, place, input);
    }

    case TermKind::kPathStar:
    case TermKind::kForall:
      throw EvalError(
          "network-aware term reached the plain evaluator; bind it to a "
          "concrete path with nac::bind_path first: " +
          to_string(term));
  }
  throw EvalError("eval: unknown term kind");
}

EvidencePtr Evaluator::eval(const Request& req, const EvidencePtr& input) {
  return eval(req.body, req.relying_party, input);
}

}  // namespace pera::copland
