// Copland abstract syntax (Helble et al., "Flexible Mechanisms for Remote
// Attestation"; Rowe et al.; as used in §4.2 of the paper).
//
// Concrete syntax accepted by the parser (ASCII rendering of the paper's):
//
//   *bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]
//   *RP1<n> : @Switch [attest(Hardware -~- Program) -> # -> !] +>+ ...
//
// Grammar:
//   request  := '*' ID params? ':' term
//   params   := '<' ID (',' ID)* '>'
//   term     := pipe (BRANCH pipe)*          BRANCH = [+-][<~>][+-]
//   pipe     := atom ('->' atom)*
//   atom     := '@' ID '[' term ']' | '!' | '#' | '{}'
//             | ID '(' args ')' | ID ID ID | ID | '(' term ')'
//
// A bare ID is an atomic measurement of a named target at the current
// place ("Hardware", "Program"); the three-ID form `asp place target` is a
// full measurement ("av us bmon": ASP av measures target bmon in place us).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace pera::copland {

struct Term;
using TermPtr = std::shared_ptr<const Term>;

/// Branch composition flavour.
enum class BranchKind {
  kSeq,  // '<' or '>' : left evaluated strictly before right
  kPar,  // '~'        : branches evaluated in parallel (unordered)
};

/// Term node kinds. The last three (kGuard, kPathStar, kForall) are the
/// network-aware extension of §5.1 — plain-Copland consumers reject them.
enum class TermKind {
  kNil,       // '{}' — empty / pass-through evidence
  kAtom,      // bare target measurement at the current place
  kMeasure,   // asp place target
  kAtPlace,   // @P [ C ]
  kSign,      // '!'
  kHash,      // '#'
  kFunc,      // name(args...) — appraise, certify, store, retrieve, attest...
  kPipe,      // C -> D
  kBranch,    // C f<f' D  or  C f~f' D
  kGuard,     // T |> C    (Prim3: NetKAT Boolean-test prefix '▶')
  kPathStar,  // C *=> D   (Prim1: left holds for 0+ hops along the path)
  kForall,    // forall p,q : C   (Prim2: place abstraction)
};

/// A single Copland term. One struct with a kind discriminator keeps
/// traversal, printing and serialization in simple switch statements.
struct Term {
  TermKind kind = TermKind::kNil;

  // kAtom / kMeasure
  std::string asp;     // measuring component (kMeasure only)
  std::string target;  // measured component / named target
  std::string place;   // kMeasure: place of target; kAtPlace: the place

  // kFunc
  std::string func;
  std::vector<TermPtr> args;

  // kAtPlace (child), kPipe / kBranch (left,right)
  TermPtr child;
  TermPtr left;
  TermPtr right;

  // kBranch
  BranchKind branch = BranchKind::kSeq;
  bool pass_left = false;   // '+' : incoming evidence flows into left arm
  bool pass_right = false;  // '+' : incoming evidence flows into right arm

  // kGuard: name of the Boolean test applied before `child` runs
  std::string test;

  // kForall: abstract place variables bound over `child`
  std::vector<std::string> vars;

  // Source span: byte offsets into the policy text this node was parsed
  // from (begin inclusive, end exclusive). Synthesized nodes (factories,
  // binder output) carry {0, 0}; src_end > src_begin iff the span is real.
  std::size_t src_begin = 0;
  std::size_t src_end = 0;

  [[nodiscard]] bool has_span() const { return src_end > src_begin; }

  // --- factories ---------------------------------------------------------
  static TermPtr nil();
  static TermPtr atom(std::string target);
  static TermPtr measure(std::string asp, std::string place, std::string target);
  static TermPtr at(std::string place, TermPtr body);
  static TermPtr sign();
  static TermPtr hash();
  static TermPtr call(std::string name, std::vector<TermPtr> args = {});
  static TermPtr pipe(TermPtr a, TermPtr b);
  static TermPtr seq(TermPtr a, TermPtr b, bool pass_l, bool pass_r);
  static TermPtr par(TermPtr a, TermPtr b, bool pass_l, bool pass_r);
  static TermPtr guard(std::string test, TermPtr body);
  static TermPtr path_star(TermPtr per_hop, TermPtr tail);
  static TermPtr forall(std::vector<std::string> vars, TermPtr body);
};

/// A top-level attestation request: `*RP<params> : term`.
struct Request {
  std::string relying_party;
  std::vector<std::string> params;  // nonce / property parameters
  TermPtr body;
};

/// Structural equality (deep).
[[nodiscard]] bool equal(const TermPtr& a, const TermPtr& b);

/// Number of nodes in a term.
[[nodiscard]] std::size_t size(const TermPtr& t);

/// Collect every place name mentioned (kAtPlace and kMeasure places).
[[nodiscard]] std::vector<std::string> places_of(const TermPtr& t);

/// True if the term uses any network-aware extension node
/// (kGuard / kPathStar / kForall).
[[nodiscard]] bool is_network_aware(const TermPtr& t);

}  // namespace pera::copland
