// Tokenizer for the ASCII Copland concrete syntax (see ast.h header
// comment for the grammar). Shared with the network-aware extension in
// src/nac, which adds tokens for '∀' (spelled `forall`), '*=>' and '|>'.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pera::copland {

enum class TokKind {
  kStar,      // *
  kColon,     // :
  kAt,        // @
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kLAngle,    // <   (parameter list open)
  kRAngle,    // >   (parameter list close)
  kComma,     // ,
  kArrow,     // ->
  kBang,      // !
  kHashSym,   // #
  kNilBraces, // {}
  kBranch,    // [+-][<~>][+-], e.g. -<- , +~+ , ++> is written +>+
  kPathStar,  // *=>   (network-aware Copland: Kleene path abstraction)
  kGuard,     // |>    (network-aware Copland: NetKAT test prefix)
  kForall,    // keyword `forall`
  kIdent,     // identifier
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;       // identifier text; for kBranch the 3-char op
  std::size_t pos = 0;    // byte offset, for error messages
};

/// Tokenize `src`. Throws copland::ParseError (see parser.h) on bad input.
[[nodiscard]] std::vector<Token> lex(std::string_view src);

[[nodiscard]] std::string to_string(TokKind k);

}  // namespace pera::copland
