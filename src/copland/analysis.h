// Static trust analysis of Copland terms, after Rowe et al. ("Automated
// Trust Analysis of Copland Specifications for Layered Attestations") and
// Ramsdell et al. ("Orchestrating Layered Attestations").
//
// The headline check reproduces the §4.2 discussion: expression (1)
//   *bank : @ks [av us bmon] -~- @us [bmon us exts]
// is vulnerable to a "repair attack" — an adversary with userspace control
// runs the corrupt bmon first, repairs it, and only then lets av measure
// it — because the measurement of bmon and its use as a measurer are
// unordered. Expression (2) sequences them with -<- and is not flagged.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "copland/ast.h"

namespace pera::copland {

/// One measurement event extracted from a term, with the place context the
/// measuring component executes in.
struct MeasurementEvent {
  std::size_t id = 0;
  std::string asp;           // measuring component
  std::string asp_place;     // place the ASP executes in (enclosing @P)
  std::string target;        // measured component
  std::string target_place;  // place of the target
};

/// One signature event (Copland `!`), with its place context.
struct SignEvent {
  std::size_t id = 0;
  std::string place;
};

/// The event structure of a term: events plus the happens-before relation
/// induced by -> , sequential branches and *=> (parallel branches induce
/// no order between their arms).
struct EventGraph {
  std::vector<MeasurementEvent> measurements;
  std::vector<SignEvent> signs;

  /// happens_before[i][j]: event i strictly precedes event j. Indices are
  /// global event ids (measurements and signs share the id space).
  std::vector<std::vector<bool>> happens_before;

  [[nodiscard]] std::size_t event_count() const {
    return happens_before.size();
  }

  [[nodiscard]] bool precedes(std::size_t a, std::size_t b) const {
    return happens_before[a][b];
  }
};

/// Build the event graph of a term evaluated from `root_place`.
[[nodiscard]] EventGraph build_event_graph(const TermPtr& t,
                                           const std::string& root_place);

/// A repair-attack vulnerability: `component` (at `place`) is used as a
/// measurer without (or unordered with) its own prior measurement.
struct RepairVulnerability {
  std::string component;
  std::string place;
  std::string detail;
};

/// Detect components used as measurers whose own measurement does not
/// strictly precede that use. Self-measurements are exempt, as are
/// root-of-trust ASPs listed in `trusted_asps` (e.g. av in kernel space).
[[nodiscard]] std::vector<RepairVulnerability> find_repair_vulnerabilities(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::string>& trusted_asps = {});

/// Measurements not covered by any later signature in the same place
/// context — evidence an on-path adversary could alter undetected.
[[nodiscard]] std::vector<MeasurementEvent> find_unsigned_measurements(
    const TermPtr& t, const std::string& root_place);

/// Confinement analysis (after Rowe, "Confining Adversary Actions via
/// Measurement", repurposed for dataplanes per §1): given the set of
/// components the adversary controls at protocol start, compute which
/// measurement events are *trustworthy* (performed by a measurer whose
/// own integrity is established before use) and whether the corruption is
/// guaranteed to be detected by some trustworthy measurement.
struct ConfinementResult {
  /// Measurement events whose outcome the adversary controls (their
  /// measurer is corrupt at time of use and was never validated first).
  std::vector<MeasurementEvent> tainted;
  /// Trustworthy measurements that directly observe a corrupt component.
  std::vector<MeasurementEvent> detecting;
  /// True iff at least one corrupt component is observed by a
  /// trustworthy measurement — the policy confines the adversary.
  bool detection_guaranteed = false;
};

/// `corrupted`: (place, component) pairs under adversary control at start.
/// `trusted_asps`: roots of trust that cannot be corrupted (§3).
/// Assumes the adversary may repair-and-reorder as in the repair attack:
/// a measurement of a corrupt measurer only counts if it strictly
/// precedes every use of that measurer.
[[nodiscard]] ConfinementResult analyze_confinement(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::pair<std::string, std::string>>& corrupted,
    const std::vector<std::string>& trusted_asps = {});

/// A well-formedness issue in a policy term.
struct WellFormedness {
  bool ok = true;
  std::vector<std::string> issues;

  void fail(std::string issue) {
    ok = false;
    issues.push_back(std::move(issue));
  }
};

/// Static sanity checks a Relying Party runs before deploying a policy:
///  * `!` / `#` must have evidence to operate on (something before them
///    in their pipeline),
///  * sequential/parallel branches should not pass evidence into an arm
///    that immediately discards it via a leading `#`,
///  * `forall` variables must be used,
///  * a `*=>` left phrase should mention at least one abstract place
///    (otherwise the star is a no-op and likely a mistake),
///  * nested `forall` must not shadow an outer variable.
[[nodiscard]] WellFormedness check_well_formed(const TermPtr& t);

/// One unsigned-evidence place crossing (the V4 verifier check): a piece
/// of evidence produced at `from_place` crosses into `to_place` with no
/// signature covering it — an on-path adversary could alter it undetected.
struct CrossPlaceLeak {
  std::string description;  // what was measured / produced
  std::string from_place;   // place context the evidence left
  std::string to_place;     // place context it entered
  const Term* node = nullptr;  // producing node (owned by the input term)
};

/// Cross-place extension of the happens-before event structure: track each
/// piece of measurement evidence through pipes, branches, '@' boundaries
/// and '*=>' chaining, and report every place boundary an *unsigned* piece
/// crosses (each piece at most once, at its first unsigned crossing).
/// `params` names request parameters (nonces / property names): bare atoms
/// naming one are protocol inputs, not measurements. Collector functions
/// (appraise / certify / store / retrieve) consume the evidence handed to
/// them; a Copland '!' signs everything accrued in the current pipeline.
[[nodiscard]] std::vector<CrossPlaceLeak> find_cross_place_leaks(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::string>& params = {});

/// One attest(...) call site with its replay-binding context — the inputs
/// to the V8 verifier check. `targets` are the concrete atoms among the
/// call's arguments; `bound_params` are the request parameters among them
/// (the round nonce / property names mixed into the measurement itself).
/// `covered_by_sign` is true when a later `!` in the same place context
/// signs the evidence this call accrues; `initial_evidence_reaches` is
/// true when the request's initial evidence (which carries the round
/// nonce) flows into this call's pipeline through an unbroken '+'
/// pass chain from the request start.
struct AttestSite {
  const Term* node = nullptr;  // the kFunc node (owned by the input term)
  std::string place;           // enclosing place context
  std::vector<std::string> targets;
  std::vector<std::string> bound_params;
  bool covered_by_sign = false;
  bool initial_evidence_reaches = false;
};

/// Extract every attest(...) call with the binding context above.
/// `params` names the request's parameters.
[[nodiscard]] std::vector<AttestSite> find_attest_sites(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::string>& params = {});

/// Evidence-flow visibility: which measurement targets' evidence each
/// place gets to see while the protocol runs. Copland's `#` deliberately
/// collapses evidence to a digest, so places downstream of a hash see only
/// the opaque token "#" — the quantified basis for UC5's "redact details
/// sensitive to the enterprise customer before giving the evidence to a
/// compliance officer".
[[nodiscard]] std::map<std::string, std::set<std::string>>
evidence_visibility(const TermPtr& t, const std::string& root_place);

}  // namespace pera::copland
