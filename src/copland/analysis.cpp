#include "copland/analysis.h"

#include <algorithm>
#include <set>

namespace pera::copland {

namespace {

// Recursive builder: returns the set of event ids inside each subterm so
// parents can add ordering edges between sibling subterms.
struct Builder {
  EventGraph graph;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  // a before b
  std::size_t next_id = 0;

  std::vector<std::size_t> walk(const TermPtr& t, const std::string& place) {
    if (!t) return {};
    switch (t->kind) {
      case TermKind::kNil:
        return {};
      case TermKind::kAtom: {
        const std::size_t id = next_id++;
        graph.measurements.push_back(
            MeasurementEvent{id, place, place, t->target, place});
        return {id};
      }
      case TermKind::kMeasure: {
        const std::size_t id = next_id++;
        graph.measurements.push_back(
            MeasurementEvent{id, t->asp, place, t->target, t->place});
        return {id};
      }
      case TermKind::kAtPlace:
        return walk(t->child, t->place);
      case TermKind::kSign: {
        const std::size_t id = next_id++;
        graph.signs.push_back(SignEvent{id, place});
        return {id};
      }
      case TermKind::kHash:
        return {};
      case TermKind::kFunc: {
        // Function arguments evaluate left-to-right at the current place.
        std::vector<std::size_t> all;
        std::vector<std::size_t> prev;
        for (const auto& a : t->args) {
          auto ids = walk(a, place);
          order(prev, ids);
          prev = ids;
          all.insert(all.end(), ids.begin(), ids.end());
        }
        return all;
      }
      case TermKind::kPipe: {
        auto l = walk(t->left, place);
        auto r = walk(t->right, place);
        order(l, r);
        l.insert(l.end(), r.begin(), r.end());
        return l;
      }
      case TermKind::kBranch: {
        auto l = walk(t->left, place);
        auto r = walk(t->right, place);
        if (t->branch == BranchKind::kSeq) order(l, r);
        l.insert(l.end(), r.begin(), r.end());
        return l;
      }
      case TermKind::kGuard:
        return walk(t->child, place);
      case TermKind::kPathStar: {
        // Per-hop phrase precedes the tail of the path.
        auto l = walk(t->left, place);
        auto r = walk(t->right, place);
        order(l, r);
        l.insert(l.end(), r.begin(), r.end());
        return l;
      }
      case TermKind::kForall:
        return walk(t->child, place);
    }
    return {};
  }

  void order(const std::vector<std::size_t>& before,
             const std::vector<std::size_t>& after) {
    for (std::size_t a : before) {
      for (std::size_t b : after) edges.emplace_back(a, b);
    }
  }

  void finalize() {
    const std::size_t n = next_id;
    graph.happens_before.assign(n, std::vector<bool>(n, false));
    for (const auto& [a, b] : edges) graph.happens_before[a][b] = true;
    // Transitive closure (Floyd–Warshall over booleans).
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!graph.happens_before[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (graph.happens_before[k][j]) graph.happens_before[i][j] = true;
        }
      }
    }
  }
};

}  // namespace

EventGraph build_event_graph(const TermPtr& t, const std::string& root_place) {
  Builder b;
  b.walk(t, root_place);
  b.finalize();
  return b.graph;
}

std::vector<RepairVulnerability> find_repair_vulnerabilities(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::string>& trusted_asps) {
  const EventGraph g = build_event_graph(t, root_place);
  std::vector<RepairVulnerability> out;
  std::set<std::pair<std::string, std::string>> reported;

  for (const auto& use : g.measurements) {
    if (use.asp == use.target) continue;  // self-measurement: out of scope
    if (std::find(trusted_asps.begin(), trusted_asps.end(), use.asp) !=
        trusted_asps.end()) {
      continue;  // root-of-trust measurer, assumed good (§3 threat model)
    }
    // Find a measurement OF the measurer that strictly precedes this use.
    bool protected_use = false;
    bool ever_measured = false;
    for (const auto& meas : g.measurements) {
      if (meas.target == use.asp && meas.target_place == use.asp_place &&
          meas.id != use.id) {
        ever_measured = true;
        if (g.precedes(meas.id, use.id)) {
          protected_use = true;
          break;
        }
      }
    }
    if (!protected_use) {
      const auto key = std::make_pair(use.asp, use.asp_place);
      if (reported.insert(key).second) {
        out.push_back(RepairVulnerability{
            use.asp, use.asp_place,
            ever_measured
                ? ("measurement of " + use.asp +
                   " is unordered with its use as measurer of " + use.target +
                   " — an adversary can use the corrupt " + use.asp +
                   " first, repair it, then let it be measured")
                : (use.asp + " is never measured before measuring " +
                   use.target)});
      }
    }
  }
  return out;
}

std::vector<MeasurementEvent> find_unsigned_measurements(
    const TermPtr& t, const std::string& root_place) {
  const EventGraph g = build_event_graph(t, root_place);
  std::vector<MeasurementEvent> out;
  for (const auto& m : g.measurements) {
    const bool covered =
        std::any_of(g.signs.begin(), g.signs.end(), [&](const SignEvent& s) {
          return g.precedes(m.id, s.id);
        });
    if (!covered) out.push_back(m);
  }
  return out;
}

ConfinementResult analyze_confinement(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::pair<std::string, std::string>>& corrupted,
    const std::vector<std::string>& trusted_asps) {
  const EventGraph g = build_event_graph(t, root_place);
  ConfinementResult res;

  const auto is_corrupt = [&](const std::string& place,
                              const std::string& comp) {
    return std::find(corrupted.begin(), corrupted.end(),
                     std::make_pair(place, comp)) != corrupted.end();
  };
  // An ASP is honest when it is a root of trust or simply not corrupted.
  const auto honest_asp = [&](const MeasurementEvent& m) {
    return std::find(trusted_asps.begin(), trusted_asps.end(), m.asp) !=
               trusted_asps.end() ||
           !is_corrupt(m.asp_place, m.asp);
  };
  // A "tool" is a corrupt component the adversary uses as a measurer (to
  // lie); a "payload" is a corrupt component that is only ever measured —
  // repairing a payload forfeits the attack, so the adversary keeps it.
  const auto used_as_measurer = [&](const std::string& place,
                                    const std::string& comp) {
    return std::any_of(g.measurements.begin(), g.measurements.end(),
                       [&](const MeasurementEvent& u) {
                         return u.asp == comp && u.asp_place == place;
                       });
  };

  // Adversary-controlled outcomes: measurements taken by corrupt tools.
  for (const auto& m : g.measurements) {
    if (!honest_asp(m)) res.tainted.push_back(m);
  }

  // Detection case analysis (the Ramsdell repair argument):
  //  (a) an honest ASP measures a corrupt payload — detected outright
  //      (repairing the payload would forfeit the compromise);
  //  (b) an honest ASP measures a corrupt tool M strictly before every
  //      use of M, and some use of M targets a corrupt payload. Then
  //      either M is still corrupt when measured (detected), or the
  //      adversary repaired M first — in which case M's later use is
  //      honest and exposes the payload (detected).
  for (const auto& m : g.measurements) {
    if (!honest_asp(m)) continue;
    if (!is_corrupt(m.target_place, m.target)) continue;

    if (!used_as_measurer(m.target_place, m.target)) {
      res.detecting.push_back(m);  // case (a)
      continue;
    }
    // Case (b): m measures tool M = m.target.
    bool precedes_all_uses = true;
    bool some_use_hits_payload = false;
    for (const auto& u : g.measurements) {
      if (u.asp != m.target || u.asp_place != m.target_place) continue;
      if (!g.precedes(m.id, u.id)) precedes_all_uses = false;
      if (is_corrupt(u.target_place, u.target) &&
          !used_as_measurer(u.target_place, u.target)) {
        some_use_hits_payload = true;
      }
    }
    if (precedes_all_uses && some_use_hits_payload) {
      res.detecting.push_back(m);
    }
  }
  res.detection_guaranteed = !res.detecting.empty();
  return res;
}

namespace {

// Does evaluating this term (with empty input) produce any evidence?
bool produces_evidence(const TermPtr& t) {
  if (!t) return false;
  switch (t->kind) {
    case TermKind::kNil:
    case TermKind::kSign:   // wraps what's there; produces nothing alone
    case TermKind::kHash:
      return false;
    case TermKind::kAtom:
    case TermKind::kMeasure:
    case TermKind::kFunc:  // functions synthesize output evidence
      return true;
    case TermKind::kAtPlace:
    case TermKind::kGuard:
    case TermKind::kForall:
      return produces_evidence(t->child);
    case TermKind::kPipe:
    case TermKind::kBranch:
    case TermKind::kPathStar:
      return produces_evidence(t->left) || produces_evidence(t->right);
  }
  return false;
}

struct WfCtx {
  WellFormedness* out;
  std::set<std::string> bound_vars;
};

// `has_input`: whether evidence can be flowing into this term.
void check_wf(const TermPtr& t, bool has_input, WfCtx& ctx) {
  if (!t) return;
  switch (t->kind) {
    case TermKind::kSign:
      if (!has_input) {
        ctx.out->fail("'!' signs empty evidence (nothing precedes it)");
      }
      return;
    case TermKind::kHash:
      if (!has_input) {
        ctx.out->fail("'#' hashes empty evidence (nothing precedes it)");
      }
      return;
    case TermKind::kPipe:
      check_wf(t->left, has_input, ctx);
      check_wf(t->right, has_input || produces_evidence(t->left), ctx);
      return;
    case TermKind::kBranch:
      check_wf(t->left, has_input && t->pass_left, ctx);
      check_wf(t->right, has_input && t->pass_right, ctx);
      return;
    case TermKind::kAtPlace:
    case TermKind::kGuard:
      check_wf(t->child, has_input, ctx);
      return;
    case TermKind::kFunc:
      for (const auto& a : t->args) check_wf(a, false, ctx);
      return;
    case TermKind::kPathStar: {
      bool mentions_abstract = false;
      for (const auto& p : places_of(t->left)) {
        if (ctx.bound_vars.contains(p)) mentions_abstract = true;
      }
      if (!ctx.bound_vars.empty() && !mentions_abstract) {
        ctx.out->fail(
            "'*=>' left phrase names no abstract place; the star never "
            "expands");
      }
      check_wf(t->left, has_input, ctx);
      check_wf(t->right, has_input || produces_evidence(t->left), ctx);
      return;
    }
    case TermKind::kForall: {
      for (const auto& v : t->vars) {
        if (ctx.bound_vars.contains(v)) {
          ctx.out->fail("forall shadows outer variable '" + v + "'");
        }
      }
      std::set<std::string> saved = ctx.bound_vars;
      ctx.bound_vars.insert(t->vars.begin(), t->vars.end());
      check_wf(t->child, has_input, ctx);
      const auto used = places_of(t->child);
      for (const auto& v : t->vars) {
        if (std::find(used.begin(), used.end(), v) == used.end()) {
          ctx.out->fail("forall variable '" + v + "' is never used");
        }
      }
      ctx.bound_vars = std::move(saved);
      return;
    }
    default:
      return;
  }
}

}  // namespace

WellFormedness check_well_formed(const TermPtr& t) {
  WellFormedness out;
  WfCtx ctx{&out, {}};
  check_wf(t, /*has_input=*/false, ctx);
  return out;
}

namespace {

// --- cross-place evidence-flow tracking (V4 support) ------------------------

// One piece of evidence in flight. Shared across bundle copies so a '!'
// in one branch arm marks the same piece signed everywhere it flows.
struct FlowItem {
  std::string description;
  std::string place;  // producing place
  const Term* node = nullptr;
  bool is_signed = false;
  bool reported = false;
};
using ItemRef = std::shared_ptr<FlowItem>;
using Bundle = std::vector<ItemRef>;

const std::set<std::string> kCollectorFuncs = {"appraise", "certify", "store",
                                               "retrieve"};

struct LeakWalker {
  std::set<std::string> params;
  std::vector<CrossPlaceLeak> leaks;

  ItemRef make(const Term* node, std::string description, std::string place) {
    auto item = std::make_shared<FlowItem>();
    item->description = std::move(description);
    item->place = std::move(place);
    item->node = node;
    return item;
  }

  // The bundle moves from place context `from` into `to`: every unsigned
  // piece crossing for the first time is a leak.
  void cross(Bundle& bundle, const std::string& from, const std::string& to) {
    if (from == to) return;
    for (auto& item : bundle) {
      if (!item->is_signed && !item->reported) {
        item->reported = true;
        leaks.push_back(CrossPlaceLeak{item->description, from, to,
                                       item->node});
      }
    }
  }

  Bundle walk(const TermPtr& t, const std::string& place, Bundle in) {
    if (!t) return in;
    switch (t->kind) {
      case TermKind::kNil:
        return in;
      case TermKind::kAtom:
        if (params.contains(t->target)) return in;  // protocol input
        in.push_back(
            make(t.get(), "measurement of '" + t->target + "'", place));
        return in;
      case TermKind::kMeasure:
        in.push_back(make(t.get(),
                          "measurement of '" + t->target + "' by '" + t->asp +
                              "'",
                          place));
        return in;
      case TermKind::kSign:
        for (auto& item : in) item->is_signed = true;
        return in;
      case TermKind::kHash:
        return in;  // an unsigned digest is still forgeable in transit
      case TermKind::kFunc:
        if (kCollectorFuncs.contains(t->func)) return {};  // delivered
        if (t->func == "attest") {
          in.push_back(make(t.get(), "attestation evidence", place));
          return in;
        }
        in.push_back(
            make(t.get(), "output of " + t->func + "()", place));
        return in;
      case TermKind::kAtPlace: {
        cross(in, place, t->place);  // request + carried evidence enter
        Bundle out = walk(t->child, t->place, std::move(in));
        cross(out, t->place, place);  // results return to the caller
        return out;
      }
      case TermKind::kPipe:
        return walk(t->right, place, walk(t->left, place, std::move(in)));
      case TermKind::kBranch: {
        Bundle in_l = t->pass_left ? in : Bundle{};
        Bundle in_r = t->pass_right ? in : Bundle{};
        Bundle l = walk(t->left, place, std::move(in_l));
        const Bundle r = walk(t->right, place, std::move(in_r));
        l.insert(l.end(), r.begin(), r.end());
        return l;
      }
      case TermKind::kGuard:
        return walk(t->child, place, std::move(in));
      case TermKind::kPathStar: {
        // Chained composition: per-hop evidence flows into the path tail.
        Bundle l = walk(t->left, place, std::move(in));
        return walk(t->right, place, std::move(l));
      }
      case TermKind::kForall:
        return walk(t->child, place, std::move(in));
    }
    return in;
  }
};

}  // namespace

std::vector<CrossPlaceLeak> find_cross_place_leaks(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::string>& params) {
  LeakWalker w;
  w.params.insert(params.begin(), params.end());
  (void)w.walk(t, root_place, Bundle{});
  return w.leaks;
}

namespace {

using Visibility = std::map<std::string, std::set<std::string>>;
using Content = std::set<std::string>;

// Returns the evidence content (set of visible measurement targets, or the
// opaque token "#") flowing out of the term. Records at `vis[place]` the
// content each place observes.
Content visit_visibility(const TermPtr& t, const std::string& place,
                         Content in, Visibility& vis) {
  if (!t) return in;
  const auto see = [&vis](const std::string& p, const Content& c) {
    vis[p].insert(c.begin(), c.end());
  };
  switch (t->kind) {
    case TermKind::kNil:
      return in;
    case TermKind::kAtom: {
      in.insert(t->target);
      see(place, in);
      return in;
    }
    case TermKind::kMeasure: {
      in.insert(t->target);
      see(place, in);
      return in;
    }
    case TermKind::kAtPlace: {
      see(t->place, in);  // the remote place receives the accrued evidence
      Content out = visit_visibility(t->child, t->place, std::move(in), vis);
      see(place, out);  // results flow back to the requesting place
      return out;
    }
    case TermKind::kSign:
      see(place, in);
      return in;  // wrapped but still readable
    case TermKind::kHash:
      see(place, in);
      return Content{"#"};  // downstream sees only a digest
    case TermKind::kFunc: {
      Content acc = in;
      for (const auto& a : t->args) {
        const Content arg_out = visit_visibility(a, place, Content{}, vis);
        acc.insert(arg_out.begin(), arg_out.end());
      }
      see(place, acc);
      return acc;
    }
    case TermKind::kPipe: {
      Content mid = visit_visibility(t->left, place, std::move(in), vis);
      return visit_visibility(t->right, place, std::move(mid), vis);
    }
    case TermKind::kBranch: {
      const Content in_l = t->pass_left ? in : Content{};
      const Content in_r = t->pass_right ? in : Content{};
      Content l = visit_visibility(t->left, place, in_l, vis);
      const Content r = visit_visibility(t->right, place, in_r, vis);
      l.insert(r.begin(), r.end());
      return l;
    }
    case TermKind::kGuard:
      return visit_visibility(t->child, place, std::move(in), vis);
    case TermKind::kPathStar: {
      Content l = visit_visibility(t->left, place, std::move(in), vis);
      return visit_visibility(t->right, place, std::move(l), vis);
    }
    case TermKind::kForall:
      return visit_visibility(t->child, place, std::move(in), vis);
  }
  return in;
}

}  // namespace

std::map<std::string, std::set<std::string>> evidence_visibility(
    const TermPtr& t, const std::string& root_place) {
  Visibility vis;
  const Content final_content =
      visit_visibility(t, root_place, Content{}, vis);
  vis[root_place].insert(final_content.begin(), final_content.end());
  return vis;
}

namespace {

void collect_atoms(const TermPtr& t, std::vector<std::string>& out) {
  if (!t) return;
  if (t->kind == TermKind::kAtom) out.push_back(t->target);
  for (const auto& a : t->args) collect_atoms(a, out);
  collect_atoms(t->child, out);
  collect_atoms(t->left, out);
  collect_atoms(t->right, out);
}

struct AttestWalk {
  std::vector<AttestSite> sites;
  std::vector<std::string> params;

  [[nodiscard]] bool is_param(const std::string& name) const {
    for (const auto& p : params) {
      if (p == name) return true;
    }
    return false;
  }

  // Walk a term; `nonce_in` says whether the request's initial evidence
  // (carrying the round nonce) flows into this node; the return value says
  // whether the node's outgoing evidence still carries it. `pending` holds
  // indices of attest sites in the current place context not yet covered
  // by a signature; a `!` covers everything accrued so far in its pipeline.
  bool walk(const TermPtr& t, const std::string& place, bool nonce_in,
            std::vector<std::size_t>& pending) {
    if (!t) return nonce_in;
    switch (t->kind) {
      case TermKind::kNil:
      case TermKind::kAtom:
      case TermKind::kMeasure:
      case TermKind::kHash:
        // Measurements accrue onto the incoming evidence; '#' digests the
        // accrued bundle (nonce included), preserving the binding.
        return nonce_in;
      case TermKind::kSign:
        for (const std::size_t i : pending) {
          sites[i].covered_by_sign = true;
        }
        pending.clear();
        return nonce_in;
      case TermKind::kFunc: {
        if (t->func == "attest") {
          AttestSite site;
          site.node = t.get();
          site.place = place;
          site.initial_evidence_reaches = nonce_in;
          std::vector<std::string> atoms;
          for (const auto& a : t->args) collect_atoms(a, atoms);
          for (auto& name : atoms) {
            if (is_param(name)) {
              site.bound_params.push_back(std::move(name));
            } else {
              site.targets.push_back(std::move(name));
            }
          }
          pending.push_back(sites.size());
          sites.push_back(std::move(site));
        }
        return nonce_in;
      }
      case TermKind::kPipe: {
        const bool mid = walk(t->left, place, nonce_in, pending);
        return walk(t->right, place, mid, pending);
      }
      case TermKind::kAtPlace: {
        // The attester's own signature must cover the measurement; a later
        // '!' outside @P executes at a different place, so sites left
        // unsigned inside P stay unsigned.
        std::vector<std::size_t> inner;
        const bool out = walk(t->child, t->place, nonce_in, inner);
        return out;
      }
      case TermKind::kBranch: {
        std::vector<std::size_t> lp;
        std::vector<std::size_t> rp;
        const bool lo = walk(t->left, place, nonce_in && t->pass_left, lp);
        const bool ro = walk(t->right, place, nonce_in && t->pass_right, rp);
        // A '!' after the branch (same place) signs the joined evidence.
        pending.insert(pending.end(), lp.begin(), lp.end());
        pending.insert(pending.end(), rp.begin(), rp.end());
        return lo || ro;
      }
      case TermKind::kGuard:
        return walk(t->child, place, nonce_in, pending);
      case TermKind::kPathStar: {
        // The per-hop phrase chains evidence hop to hop; the first
        // iteration receives the incoming evidence.
        const bool mid = walk(t->left, place, nonce_in, pending);
        return walk(t->right, place, mid, pending);
      }
      case TermKind::kForall:
        return walk(t->child, place, nonce_in, pending);
    }
    return nonce_in;
  }
};

}  // namespace

std::vector<AttestSite> find_attest_sites(
    const TermPtr& t, const std::string& root_place,
    const std::vector<std::string>& params) {
  AttestWalk w;
  w.params = params;
  std::vector<std::size_t> pending;
  w.walk(t, root_place, /*nonce_in=*/true, pending);
  return w.sites;
}

}  // namespace pera::copland
