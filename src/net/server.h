// Epoll appraiser server: real-socket evidence transport at connection
// scale.
//
// Architecture (one process):
//
//   listen fd ── reactor 0 ──┐                      ┌─ appraiser worker 0
//                reactor 1 ──┼── per-conn frames ──▶├─ appraiser worker 1
//                reactor k ──┘   (SPSC rings)       └─ ...
//        ▲                                               │ record hook
//        └────────── verdict completions (inbox) ◀───────┘
//
//  * N single-threaded level-triggered epoll reactors. Reactor 0 owns
//    the listen socket and deals new connections round-robin; handing a
//    connection to another reactor goes through that reactor's
//    mutex-protected inbox plus an eventfd wake. Each connection lives
//    on exactly one reactor for its whole life, so per-conn state is
//    single-threaded.
//  * Per-connection ServerSession (sans-I/O) does the frame decoding and
//    RA handshake; the reactor only moves bytes. Decoded evidence rounds
//    are handed to the shared ParallelAppraiser (reactor index =
//    producer index, so the hand-off rides the existing SPSC rings), and
//    the appraiser's streaming record hook routes each verdict back to
//    the owning reactor's inbox, where the certificate is signed and
//    queued on the originating session — or on the relying-party session
//    whose relayed challenge produced the evidence.
//  * Writes are buffered per connection (deque of byte chunks, flushed
//    with writev). A connection whose buffered output exceeds
//    write_buffer_limit has EPOLLIN paused until the peer drains it
//    below write_buffer_resume — slow readers stall themselves, not the
//    server.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/nonce.h"
#include "crypto/signer.h"
#include "net/session.h"
#include "net/socket.h"
#include "pipeline/appraiser.h"

namespace pera::net {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; see AppraiserServer::port()
  std::size_t reactors = 1;
  std::size_t appraiser_workers = 1;
  std::size_t verify_burst = 16;
  std::size_t ring_capacity = 4096;
  std::size_t max_sessions = 1 << 15;
  /// Pause reads above this many buffered outbound bytes per connection…
  std::size_t write_buffer_limit = 1 << 20;
  /// …resume below this.
  std::size_t write_buffer_resume = 256 * 1024;
  std::string appraiser_name = "appraiser";
  std::uint64_t nonce_seed = 0xC0C0'0001;

  /// Evidence verification: derived device keys shared with the fleet
  /// (PeraPipeline::shard_keys(evidence_root_key, evidence_key_label, n)).
  crypto::Digest evidence_root_key{};
  std::string evidence_key_label = "pera.net.device";
  std::size_t evidence_max_shards = 16;
  crypto::SignatureScheme scheme = crypto::SignatureScheme::kHmacDeviceKey;
  unsigned xmss_height = 8;

  /// Handshake: per-place quote keys derive from quote_root_key
  /// (derive_quote_key); a quote is good when its signature verifies
  /// under its place's derived key AND its measurement equals
  /// golden_measurement AND (when known_places is non-empty) its place is
  /// listed.
  crypto::Digest quote_root_key{};
  crypto::Digest golden_measurement{};
  std::vector<std::string> known_places;

  /// Appraiser identity key: signs result certificates and (mutual mode)
  /// counter-quotes. Shared with clients the same way the sim shares the
  /// appraiser's KeyStore entry.
  crypto::Digest cert_key{};
  /// Measurement the appraiser claims in counter-quotes.
  crypto::Digest appraiser_measurement{};
};

/// Aggregate counters, readable from any thread while the server runs.
struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t rounds_appraised = 0;
  std::uint64_t results_sent = 0;
  std::uint64_t challenges_relayed = 0;
  std::uint64_t challenges_unrouted = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t read_pauses = 0;
};

class AppraiserServer {
 public:
  explicit AppraiserServer(ServerConfig config);
  ~AppraiserServer();

  AppraiserServer(const AppraiserServer&) = delete;
  AppraiserServer& operator=(const AppraiserServer&) = delete;

  /// Bind, provision the appraiser workers, spawn the reactors. Throws
  /// std::runtime_error when the listen socket cannot be created.
  void start();

  /// Close everything and join all threads. Idempotent.
  void stop();

  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] ServerStats stats() const;

  /// Block until `n` total evidence rounds have been appraised, with a
  /// wall-clock timeout. True when reached.
  bool wait_for_rounds(std::uint64_t n, int timeout_ms) const;

 private:
  struct Conn;
  struct Reactor;
  struct Inbound;

  void run_reactor(std::size_t idx);
  void accept_ready(Reactor& r);
  void adopt_conn(Reactor& r, int fd);
  void drain_inbox(Reactor& r);
  void conn_readable(Reactor& r, Conn& c);
  void conn_writable(Reactor& r, Conn& c);
  void after_progress(Reactor& r, Conn& c);
  void flush_writes(Reactor& r, Conn& c);
  void update_interest(Reactor& r, Conn& c);
  void close_conn(Reactor& r, std::uint64_t token);
  void post(std::size_t reactor_idx, Inbound&& item);
  void on_appraised(const pipeline::EvidenceItem& item,
                    pipeline::AppraisedRecord&& rec);
  [[nodiscard]] RejectReason check_quote(const Quote& q) const;

  static constexpr std::uint64_t kListenToken = ~0ULL;
  static constexpr std::uint64_t kWakeToken = ~0ULL - 1;
  static constexpr unsigned kTokenReactorShift = 48;

  ServerConfig config_;
  ServerSessionConfig session_config_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unique_ptr<pipeline::ParallelAppraiser> appraiser_;
  Fd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;

  // Server-global handshake state (any reactor may touch these).
  mutable std::mutex hello_mu_;
  crypto::NonceRegistry hello_nonces_;
  std::unique_ptr<crypto::Signer> counter_quote_signer_;

  // place -> switch session token, for challenge relay.
  mutable std::mutex place_mu_;
  std::map<std::string, std::uint64_t> place_index_;

  // challenge nonce -> relying-party session token, for result routing.
  mutable std::mutex route_mu_;
  std::map<crypto::Digest, std::uint64_t> relay_routes_;

  std::atomic<std::uint64_t> open_sessions_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rounds_appraised_{0};
  std::atomic<std::uint64_t> results_sent_{0};
  std::atomic<std::uint64_t> relayed_{0};
  std::atomic<std::uint64_t> unrouted_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> read_pauses_{0};
};

}  // namespace pera::net
