#include "net/backend.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <tuple>
#include <utility>

#include "obs/obs.h"

namespace pera::net {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int remaining_ms(std::int64_t deadline_ns) {
  const std::int64_t left = deadline_ns - wall_ns();
  if (left <= 0) return 0;
  return static_cast<int>(left / 1'000'000) + 1;
}

}  // namespace

SocketBackend::SocketBackend(Config config)
    : config_(std::move(config)), nonces_(config_.nonce_seed) {
  read_buf_.resize(64 * 1024);
}

SocketBackend::~SocketBackend() { stop(); }

void SocketBackend::set_result_sink(
    std::function<void(const ra::Certificate&)> sink) {
  sink_ = std::move(sink);
}

bool SocketBackend::connect() {
  const std::int64_t deadline =
      wall_ns() + std::int64_t(config_.connect_timeout_ms) * 1'000'000;
  fd_ = connect_loopback_blocking(config_.port, config_.connect_timeout_ms);
  if (!fd_.valid()) {
    error_ = "connect failed";
    return false;
  }
  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    error_ = "eventfd failed";
    return false;
  }

  ClientSessionConfig sc;
  sc.place = config_.place;
  sc.role = SessionRole::kRelyingParty;
  sc.want_mutual = config_.mutual;
  if (config_.mutual) {
    sc.verify_counter_quote = [this](const Quote& q) {
      const crypto::HmacVerifier v(config_.cert_key);
      return q.verify(v) && q.measurement == config_.appraiser_golden;
    };
  }
  session_ = std::make_unique<ClientSession>(std::move(sc), nonces_.issue());
  session_->start();
  if (!handshake(deadline)) {
    if (error_.empty()) error_ = session_->error_text();
    return false;
  }
  established_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { run_loop(); });
  PERA_OBS_COUNT("net.backend.connected");
  return true;
}

bool SocketBackend::handshake(std::int64_t deadline_ns) {
  while (!session_->established()) {
    if (session_->failed()) return false;
    if (!flush_blocking(deadline_ns)) return false;
    pollfd p{fd_.get(), POLLIN, 0};
    const int pr = ::poll(&p, 1, remaining_ms(deadline_ns));
    if (pr <= 0) {
      error_ = "handshake timeout";
      return false;
    }
    const IoResult res = read_some(fd_.get(), read_buf_.data(),
                                   read_buf_.size());
    if (res.status == IoStatus::kWouldBlock) continue;
    if (res.status != IoStatus::kOk) {
      error_ = "connection closed during handshake";
      return false;
    }
    if (!session_->on_bytes(crypto::BytesView{read_buf_.data(), res.bytes})) {
      return false;
    }
  }
  return flush_blocking(deadline_ns);
}

bool SocketBackend::flush_blocking(std::int64_t deadline_ns) {
  crypto::Bytes& out = session_->outbox();
  std::size_t head = 0;
  while (head < out.size()) {
    const IoSlice slice{out.data() + head, out.size() - head};
    const IoResult res = write_vec(fd_.get(), &slice, 1);
    if (res.status == IoStatus::kOk) {
      head += res.bytes;
      continue;
    }
    if (res.status != IoStatus::kWouldBlock) {
      error_ = "write failed";
      return false;
    }
    pollfd p{fd_.get(), POLLOUT, 0};
    if (::poll(&p, 1, remaining_ms(deadline_ns)) <= 0) {
      error_ = "write timeout";
      return false;
    }
  }
  out.clear();
  return true;
}

void SocketBackend::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void SocketBackend::wake() {
  if (!wake_fd_.valid()) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void SocketBackend::stop() {
  if (running_.exchange(false)) {
    wake();
    if (loop_.joinable()) loop_.join();
  } else if (loop_.joinable()) {
    loop_.join();
  }
  if (session_ && fd_.valid() && session_->established() && !conn_dead_) {
    session_->send_bye();
    (void)flush_blocking(wall_ns() + 100'000'000);
  }
  established_.store(false, std::memory_order_release);
  fd_.reset();
}

void SocketBackend::send_challenge(const std::string& place,
                                   const core::Challenge& ch) {
  if (conn_dead_ || !session_ || !session_->established()) return;
  session_->send_challenge(place, ch);
  try_flush();
  PERA_OBS_COUNT("net.backend.challenges_sent");
}

void SocketBackend::schedule_in(netsim::SimTime delay,
                                std::function<void()> fn) {
  Timer t;
  t.at = wall_ns() + std::max<netsim::SimTime>(delay, 0);
  t.seq = next_timer_seq_++;
  t.fn = std::move(fn);
  timers_.push_back(std::move(t));
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) {
                   return std::tie(a.at, a.seq) > std::tie(b.at, b.seq);
                 });
}

netsim::SimTime SocketBackend::now() { return wall_ns(); }

void SocketBackend::try_flush() {
  if (conn_dead_ || !session_) return;
  crypto::Bytes& out = session_->outbox();
  std::size_t head = 0;
  while (head < out.size()) {
    const IoSlice slice{out.data() + head, out.size() - head};
    const IoResult res = write_vec(fd_.get(), &slice, 1);
    if (res.status == IoStatus::kOk) {
      head += res.bytes;
      continue;
    }
    if (res.status == IoStatus::kWouldBlock) break;  // retry next loop pass
    conn_dead_ = true;
    established_.store(false, std::memory_order_release);
    PERA_OBS_COUNT("net.backend.conn_lost");
    break;
  }
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(head));
}

void SocketBackend::run_loop() {
  const auto timer_cmp = [](const Timer& a, const Timer& b) {
    return std::tie(a.at, a.seq) > std::tie(b.at, b.seq);
  };
  while (running_.load(std::memory_order_acquire)) {
    // Next timer bounds the poll; cap idle waits so stop() is prompt.
    int timeout_ms = 200;
    if (!timers_.empty()) {
      const std::int64_t left = timers_.front().at - wall_ns();
      timeout_ms = left <= 0
                       ? 0
                       : std::min<std::int64_t>(left / 1'000'000 + 1, 200);
    }
    pollfd fds[2];
    fds[0] = {wake_fd_.get(), POLLIN, 0};
    nfds_t n = 1;
    if (!conn_dead_) {
      short events = POLLIN;
      if (!session_->outbox().empty()) events |= POLLOUT;
      fds[1] = {fd_.get(), events, 0};
      n = 2;
    }
    (void)::poll(fds, n, timeout_ms);

    if ((fds[0].revents & POLLIN) != 0) {
      std::uint64_t drain = 0;
      while (::read(wake_fd_.get(), &drain, sizeof(drain)) > 0) {
      }
    }

    // Posted work first: begin_round calls queue challenges the same
    // pass can flush below.
    std::vector<std::function<void()>> tasks;
    {
      const std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
    }
    for (auto& t : tasks) t();

    // Due timers (retry/backoff from the transport).
    const std::int64_t now_ts = wall_ns();
    while (!timers_.empty() && timers_.front().at <= now_ts) {
      std::pop_heap(timers_.begin(), timers_.end(), timer_cmp);
      Timer t = std::move(timers_.back());
      timers_.pop_back();
      t.fn();
    }

    if (!conn_dead_ && n == 2 &&
        (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      for (;;) {
        const IoResult res =
            read_some(fd_.get(), read_buf_.data(), read_buf_.size());
        if (res.status == IoStatus::kWouldBlock) break;
        if (res.status != IoStatus::kOk) {
          conn_dead_ = true;
          established_.store(false, std::memory_order_release);
          PERA_OBS_COUNT("net.backend.conn_lost");
          break;
        }
        if (!session_->on_bytes(
                crypto::BytesView{read_buf_.data(), res.bytes})) {
          conn_dead_ = true;
          established_.store(false, std::memory_order_release);
          break;
        }
        if (res.bytes < read_buf_.size()) break;
      }
      if (sink_) {
        for (ra::Certificate& cert : session_->take_results()) {
          sink_(cert);
          PERA_OBS_COUNT("net.backend.results");
        }
      } else {
        (void)session_->take_results();
      }
    }

    try_flush();
  }
  // Timers die with the loop; in-flight rounds simply never complete,
  // which only happens at shutdown.
  timers_.clear();
}

}  // namespace pera::net
