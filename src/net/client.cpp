#include "net/client.h"

#include <poll.h>
#include <sys/epoll.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "copland/evidence.h"
#include "obs/obs.h"

namespace pera::net {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int remaining_ms(std::int64_t deadline_ns) {
  const std::int64_t left = deadline_ns - now_ns();
  if (left <= 0) return 0;
  return static_cast<int>(left / 1'000'000) + 1;
}

}  // namespace

crypto::Bytes make_signed_evidence(const std::string& place,
                                   const crypto::Digest& measurement,
                                   const crypto::Nonce& nonce,
                                   crypto::Signer& signer) {
  const copland::EvidencePtr content = copland::Evidence::seq(
      copland::Evidence::measurement("net_attest", place, "Program",
                                     measurement, "program measurement"),
      copland::Evidence::nonce_ev(nonce));
  const crypto::Signature sig = signer.sign(copland::digest(content));
  return copland::encode(copland::Evidence::signature(place, content, sig));
}

// --- SwitchClient -----------------------------------------------------------

SwitchClient::SwitchClient(ClientIdentity identity)
    : identity_(std::move(identity)),
      quote_signer_(std::make_unique<crypto::HmacSigner>(
          derive_quote_key(identity_.quote_root_key, identity_.place))),
      device_signer_(
          std::make_unique<crypto::HmacSigner>(identity_.device_key)),
      nonces_(identity_.nonce_seed) {}

SwitchClient::~SwitchClient() { close(); }

const std::string& SwitchClient::error_text() const {
  if (session_ && !session_->error_text().empty()) {
    return session_->error_text();
  }
  return error_;
}

bool SwitchClient::connect(std::uint16_t port, int timeout_ms) {
  const std::int64_t deadline = now_ns() + std::int64_t(timeout_ms) * 1'000'000;
  fd_ = connect_loopback_blocking(port, timeout_ms);
  if (!fd_.valid()) {
    error_ = "connect failed";
    return false;
  }

  ClientSessionConfig config;
  config.place = identity_.place;
  config.role = SessionRole::kSwitch;
  config.want_mutual = identity_.mutual;
  config.make_quote = [this](const crypto::Nonce& nonce) {
    return Quote::make(identity_.place, nonce, identity_.measurement,
                       *quote_signer_);
  };
  config.verify_counter_quote = [this](const Quote& q) {
    const crypto::HmacVerifier v(identity_.cert_key);
    return q.verify(v) && q.measurement == identity_.appraiser_golden;
  };
  config.answer_challenge = [this](const core::Challenge& ch) {
    return make_signed_evidence(identity_.place, identity_.measurement,
                                ch.nonce, *device_signer_);
  };
  session_ = std::make_unique<ClientSession>(std::move(config),
                                             nonces_.issue());
  session_->start();
  if (!flush(remaining_ms(deadline))) return false;
  while (!session_->established()) {
    if (session_->failed() || remaining_ms(deadline) == 0) return false;
    if (!pump(remaining_ms(deadline))) return false;
  }
  return true;
}

bool SwitchClient::flush(int timeout_ms) {
  const std::int64_t deadline = now_ns() + std::int64_t(timeout_ms) * 1'000'000;
  crypto::Bytes& out = session_->outbox();
  std::size_t head = 0;
  while (head < out.size()) {
    const IoSlice slice{out.data() + head, out.size() - head};
    const IoResult res = write_vec(fd_.get(), &slice, 1);
    if (res.status == IoStatus::kOk) {
      head += res.bytes;
      continue;
    }
    if (res.status != IoStatus::kWouldBlock) {
      error_ = "write failed";
      return false;
    }
    pollfd p{fd_.get(), POLLOUT, 0};
    const int pr = ::poll(&p, 1, remaining_ms(deadline));
    if (pr <= 0) {
      error_ = "write timeout";
      return false;
    }
  }
  out.clear();
  return true;
}

bool SwitchClient::pump(int timeout_ms) {
  if (!flush(timeout_ms)) return false;
  pollfd p{fd_.get(), POLLIN, 0};
  const int pr = ::poll(&p, 1, timeout_ms);
  if (pr <= 0) return true;  // nothing arrived; caller re-checks deadline
  std::uint8_t buf[16 * 1024];
  const IoResult res = read_some(fd_.get(), buf, sizeof(buf));
  if (res.status == IoStatus::kWouldBlock) return true;
  if (res.status != IoStatus::kOk) {
    error_ = "connection closed";
    return false;
  }
  if (!session_->on_bytes(crypto::BytesView{buf, res.bytes})) return false;
  return flush(timeout_ms);
}

std::optional<ra::Certificate> SwitchClient::round(int timeout_ms) {
  if (!established()) return std::nullopt;
  const std::int64_t deadline = now_ns() + std::int64_t(timeout_ms) * 1'000'000;
  const crypto::Nonce nonce = nonces_.issue();
  const crypto::Bytes evidence = make_signed_evidence(
      identity_.place, identity_.measurement, nonce, *device_signer_);
  session_->send_evidence(nonce,
                          crypto::BytesView{evidence.data(), evidence.size()});
  if (!flush(remaining_ms(deadline))) return std::nullopt;
  for (;;) {
    for (ra::Certificate& cert : session_->take_results()) {
      if (cert.nonce.value == nonce.value) return cert;
    }
    if (remaining_ms(deadline) == 0) return std::nullopt;
    if (!pump(remaining_ms(deadline))) return std::nullopt;
  }
}

std::size_t SwitchClient::serve(int deadline_ms,
                                const std::atomic<bool>* stop) {
  if (!established()) return 0;
  const std::int64_t deadline = now_ns() +
                                std::int64_t(deadline_ms) * 1'000'000;
  const std::uint64_t before = session_->challenges_answered();
  while (remaining_ms(deadline) > 0) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) break;
    const int slice = std::min(remaining_ms(deadline), 50);
    if (!pump(slice)) break;
    // Results stay queued on the session — relayed rounds' certificates go
    // to the relying party, so anything here is the caller's to collect.
  }
  return session_->challenges_answered() - before;
}

void SwitchClient::close() {
  if (session_ && fd_.valid() && session_->established()) {
    session_->send_bye();
    (void)flush(100);
  }
  fd_.reset();
}

// --- SwitchFleet ------------------------------------------------------------

struct SwitchFleet::FleetConn {
  Fd fd;
  std::size_t idx = 0;
  std::string place;
  std::unique_ptr<crypto::Signer> quote_signer;
  crypto::Signer* device_signer = nullptr;
  std::unique_ptr<ClientSession> session;
  crypto::Bytes outq;
  std::size_t out_head = 0;
  crypto::Bytes evidence;  // pre-signed; reused every round (flow idiom)
  std::deque<std::int64_t> inflight;  // send timestamps, FIFO per conn
  std::uint32_t interest = 0;
  bool connected = false;
  bool dead = false;
};

SwitchFleet::SwitchFleet(Config config) : config_(std::move(config)) {
  if (config_.depth == 0) config_.depth = 1;
  if (config_.device_keys.empty()) config_.device_keys.push_back({});
  epoll_ = Fd(::epoll_create1(0));
  for (const crypto::Digest& key : config_.device_keys) {
    signers_.push_back(std::make_unique<crypto::HmacSigner>(key));
  }
  read_buf_.resize(64 * 1024);
}

SwitchFleet::~SwitchFleet() { shutdown(); }

std::size_t SwitchFleet::established_count() const {
  std::size_t n = 0;
  for (const auto& c : conns_) {
    if (c && !c->dead && c->session && c->session->established()) ++n;
  }
  return n;
}

void SwitchFleet::update_interest(FleetConn& c) {
  std::uint32_t want = EPOLLIN;
  if (!c.connected || c.out_head < c.outq.size()) want |= EPOLLOUT;
  if (want == c.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = c.idx;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) == 0) {
    c.interest = want;
  }
}

void SwitchFleet::drop(FleetConn& c) {
  if (c.dead) return;
  c.dead = true;
  c.fd.reset();  // epoll deregisters on close
  ++run_stats_.session_failures;
}

void SwitchFleet::pump_writes(FleetConn& c) {
  // Stage the session's queued frames, then write as much as the socket
  // takes.
  crypto::Bytes& outbox = c.session->outbox();
  if (!outbox.empty()) {
    if (c.out_head == c.outq.size()) {
      c.outq.clear();
      c.out_head = 0;
    }
    c.outq.insert(c.outq.end(), outbox.begin(), outbox.end());
    outbox.clear();
  }
  while (c.out_head < c.outq.size()) {
    const IoSlice slice{c.outq.data() + c.out_head,
                        c.outq.size() - c.out_head};
    const IoResult res = write_vec(c.fd.get(), &slice, 1);
    if (res.status == IoStatus::kWouldBlock) break;
    if (res.status != IoStatus::kOk) {
      drop(c);
      return;
    }
    c.out_head += res.bytes;
  }
  if (c.out_head == c.outq.size()) {
    c.outq.clear();
    c.out_head = 0;
  }
  update_interest(c);
}

bool SwitchFleet::read_into(FleetConn& c) {
  for (;;) {
    const IoResult res =
        read_some(c.fd.get(), read_buf_.data(), read_buf_.size());
    if (res.status == IoStatus::kWouldBlock) return true;
    if (res.status != IoStatus::kOk) {
      drop(c);
      return false;
    }
    if (!c.session->on_bytes(crypto::BytesView{read_buf_.data(), res.bytes})) {
      drop(c);
      return false;
    }
    if (res.bytes < read_buf_.size()) return true;
  }
}

std::size_t SwitchFleet::establish(int timeout_ms) {
  const std::int64_t deadline = now_ns() + std::int64_t(timeout_ms) * 1'000'000;
  ensure_fd_limit(config_.connections + 256);

  conns_.reserve(config_.connections);
  std::size_t launched = 0;
  std::size_t established = 0;
  std::size_t failed = 0;

  auto launch_next = [&] {
    if (launched >= config_.connections) return false;
    const std::size_t i = launched++;
    auto conn = std::make_unique<FleetConn>();
    conn->idx = i;
    conn->place = config_.place_prefix + std::to_string(i);
    conn->quote_signer = std::make_unique<crypto::HmacSigner>(
        derive_quote_key(config_.quote_root_key, conn->place));
    conn->device_signer = signers_[i % signers_.size()].get();
    try {
      conn->fd = connect_loopback(config_.port);
    } catch (const std::exception&) {
      ++failed;
      return true;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = i;
    conn->interest = EPOLLIN | EPOLLOUT;
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, conn->fd.get(), &ev);
    if (conns_.size() <= i) conns_.resize(i + 1);
    conns_[i] = std::move(conn);
    return true;
  };

  for (std::size_t i = 0; i < config_.connect_burst; ++i) {
    if (!launch_next()) break;
  }

  constexpr int kMaxEvents = 512;
  epoll_event events[kMaxEvents];
  while (established + failed < config_.connections) {
    const int wait = remaining_ms(deadline);
    if (wait == 0) break;
    const int n = ::epoll_wait(epoll_.get(), events, kMaxEvents,
                               std::min(wait, 100));
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const std::size_t idx = events[i].data.u64;
      if (idx >= conns_.size() || !conns_[idx] || conns_[idx]->dead) continue;
      FleetConn& c = *conns_[idx];
      const bool was_established = c.session && c.session->established();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 && !c.connected) {
        drop(c);
        ++failed;
        launch_next();
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !c.connected) {
        if (!connect_finished(c.fd.get())) {
          drop(c);
          ++failed;
          launch_next();
          continue;
        }
        c.connected = true;
        set_nodelay(c.fd.get());
        ClientSessionConfig sc;
        sc.place = c.place;
        sc.role = SessionRole::kSwitch;
        sc.want_mutual = config_.mutual;
        crypto::Signer* qs = c.quote_signer.get();
        const crypto::Digest meas = config_.measurement;
        const std::string place = c.place;
        sc.make_quote = [qs, meas, place](const crypto::Nonce& nonce) {
          return Quote::make(place, nonce, meas, *qs);
        };
        const crypto::Digest cert_key = config_.cert_key;
        const crypto::Digest golden = config_.appraiser_golden;
        sc.verify_counter_quote = [cert_key, golden](const Quote& q) {
          const crypto::HmacVerifier v(cert_key);
          return q.verify(v) && q.measurement == golden;
        };
        crypto::Nonce session_nonce;
        // Unique per (fleet run, conn): low bytes carry the index.
        std::memcpy(session_nonce.value.v.data(), &idx, sizeof(idx));
        session_nonce.value.v[8] = 0x5A;
        const std::uint64_t salt = next_nonce_++;
        std::memcpy(session_nonce.value.v.data() + 9, &salt, sizeof(salt));
        c.session = std::make_unique<ClientSession>(std::move(sc),
                                                    session_nonce);
        c.session->start();
        c.evidence = make_signed_evidence(c.place, config_.measurement,
                                          session_nonce, *c.device_signer);
        pump_writes(c);
        if (c.dead) {
          ++failed;
          launch_next();
        }
        continue;
      }
      if (!c.connected) continue;
      if ((events[i].events & EPOLLOUT) != 0) pump_writes(c);
      if (c.dead || !c.session) continue;
      if ((events[i].events & EPOLLIN) != 0) {
        if (!read_into(c)) {
          ++failed;
          launch_next();
          continue;
        }
        pump_writes(c);
      }
      if (!was_established && c.session->established()) {
        ++established;
        launch_next();
      } else if (c.session->failed()) {
        drop(c);
        ++failed;
        launch_next();
      }
    }
  }
  return established;
}

void SwitchFleet::send_round(FleetConn& c) {
  crypto::Nonce nonce;
  const std::uint64_t seq = next_nonce_++;
  std::memcpy(nonce.value.v.data(), &seq, sizeof(seq));
  nonce.value.v[15] = 0xE1;
  const std::uint64_t idx = c.idx;
  std::memcpy(nonce.value.v.data() + 16, &idx, sizeof(idx));
  c.inflight.push_back(now_ns());
  c.session->send_evidence(
      nonce, crypto::BytesView{c.evidence.data(), c.evidence.size()});
}

SwitchFleet::RunStats SwitchFleet::run_rounds(std::uint64_t total_rounds,
                                              int timeout_ms) {
  const std::int64_t deadline = now_ns() + std::int64_t(timeout_ms) * 1'000'000;
  const std::int64_t t0 = now_ns();
  run_stats_ = RunStats{};
  run_stats_.established = established_count();
  run_stats_.latency_us.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(total_rounds, 1 << 22)));

  std::uint64_t sent = 0;
  // Prime every established session up to the pipeline depth.
  for (auto& cp : conns_) {
    if (!cp || cp->dead || !cp->session || !cp->session->established()) {
      continue;
    }
    for (std::size_t d = 0; d < config_.depth && sent < total_rounds; ++d) {
      send_round(*cp);
      ++sent;
    }
    pump_writes(*cp);
  }

  constexpr int kMaxEvents = 512;
  epoll_event events[kMaxEvents];
  while (run_stats_.rounds_completed < total_rounds) {
    const int wait = remaining_ms(deadline);
    if (wait == 0) break;
    const int n = ::epoll_wait(epoll_.get(), events, kMaxEvents,
                               std::min(wait, 100));
    if (n < 0 && errno != EINTR) break;
    if (n == 0 && established_count() == 0) break;
    for (int i = 0; i < n; ++i) {
      const std::size_t idx = events[i].data.u64;
      if (idx >= conns_.size() || !conns_[idx] || conns_[idx]->dead) continue;
      FleetConn& c = *conns_[idx];
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        drop(c);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) pump_writes(c);
      if (c.dead) continue;
      if ((events[i].events & EPOLLIN) != 0) {
        if (!read_into(c)) continue;
        const std::int64_t t_now = now_ns();
        for (ra::Certificate& cert : c.session->take_results()) {
          if (!c.inflight.empty()) {
            const std::int64_t sent_at = c.inflight.front();
            c.inflight.pop_front();
            run_stats_.latency_us.push_back(
                static_cast<float>(t_now - sent_at) / 1000.0F);
          }
          ++run_stats_.rounds_completed;
          if (!cert.verdict) ++run_stats_.verdict_failures;
          if (sent < total_rounds) {
            send_round(c);
            ++sent;
          }
        }
        pump_writes(c);
      }
    }
  }
  run_stats_.wall_ns = now_ns() - t0;
  run_stats_.established = established_count();
  return run_stats_;
}

void SwitchFleet::shutdown() {
  for (auto& cp : conns_) {
    if (!cp || cp->dead || !cp->session) continue;
    if (cp->session->established()) {
      cp->session->send_bye();
      pump_writes(*cp);
    }
    cp->fd.reset();
    cp->dead = true;
  }
  conns_.clear();
}

}  // namespace pera::net
