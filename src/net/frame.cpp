#include "net/frame.h"

#include <cstring>

#include "obs/obs.h"

namespace pera::net {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kEvidence: return "evidence";
    case FrameType::kResult: return "result";
    case FrameType::kChallenge: return "challenge";
    case FrameType::kBye: return "bye";
  }
  return "unknown";
}

bool known_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kBye);
}

void append_frame(crypto::Bytes& out, FrameType type,
                  crypto::BytesView payload) {
  crypto::append_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
  out.push_back(static_cast<std::uint8_t>(type));
  crypto::append(out, payload);
}

crypto::Bytes encode_frame(FrameType type, crypto::BytesView payload) {
  crypto::Bytes out;
  out.reserve(kFrameOverhead + payload.size());
  append_frame(out, type, payload);
  return out;
}

void FrameDecoder::poison(std::string why) {
  error_ = std::move(why);
  ready_.clear();
  buf_.clear();
  head_ = 0;
  PERA_OBS_COUNT("net.frame.poisoned");
}

bool FrameDecoder::feed(crypto::BytesView data) {
  if (error()) return false;
  crypto::append(buf_, data);
  for (;;) {
    const std::size_t avail = buf_.size() - head_;
    if (avail < 4) break;
    const std::uint32_t len = crypto::read_u32(
        crypto::BytesView{buf_.data() + head_, avail}, 0);
    if (len == 0) {
      poison("zero-length frame");
      return false;
    }
    if (static_cast<std::size_t>(len) > max_payload_ + 1) {
      poison("frame exceeds max payload");
      return false;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) break;  // torn: wait
    const std::uint8_t type = buf_[head_ + 4];
    if (!known_frame_type(type)) {
      poison("unknown frame type");
      return false;
    }
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(head_ + 5),
                     buf_.begin() + static_cast<std::ptrdiff_t>(head_ + 4 + len));
    ready_.push_back(std::move(f));
    ++frames_decoded_;
    head_ += 4 + len;
  }
  // Compact once the consumed prefix dominates, so the buffer never
  // creeps past ~one frame of stale bytes (O(1) amortised per byte).
  if (head_ > 0 && (head_ >= buf_.size() || head_ > (buf_.size() >> 1))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return true;
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace pera::net
