// Switch-side socket clients.
//
//  * SwitchClient — one blocking connection: connect, RA handshake,
//    evidence rounds, challenge answering. Used by tools, tests and the
//    SocketBackend's per-place attester loops.
//  * SwitchFleet — an epoll load generator driving N concurrent
//    SwitchClient-equivalent sessions from one thread: a connection
//    storm to establish the fleet, then closed-loop evidence rounds with
//    a configurable pipeline depth per connection. This is what the
//    connection-scaling soak bench runs against the server.
//
// Both drive the same sans-I/O ClientSession the tests exercise.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/nonce.h"
#include "crypto/signer.h"
#include "net/session.h"
#include "net/socket.h"

namespace pera::net {

/// Who this switch claims to be and the keys that back the claim.
struct ClientIdentity {
  std::string place = "switch0";
  /// Quote-signing root shared with the server (derive_quote_key).
  crypto::Digest quote_root_key{};
  /// The measurement the quote claims. Admission requires it to equal
  /// the server's golden value.
  crypto::Digest measurement{};
  /// Evidence-signing device key (one of the derived shard keys the
  /// server's VerifierSet was provisioned with).
  crypto::Digest device_key{};
  bool mutual = false;
  /// Appraiser identity key (mutual mode: verifies the counter-quote;
  /// also verifies result certificates).
  crypto::Digest cert_key{};
  /// Expected appraiser measurement in the counter-quote (mutual mode).
  crypto::Digest appraiser_golden{};
  std::uint64_t nonce_seed = 0xFACE'0001;
};

/// Canonical switch evidence for one round: a signed (measurement ∥
/// nonce) sequence — the same shape the sim's attester produces, signed
/// with the device key so the server's VerifierSet resolves it by key
/// id.
[[nodiscard]] crypto::Bytes make_signed_evidence(
    const std::string& place, const crypto::Digest& measurement,
    const crypto::Nonce& nonce, crypto::Signer& signer);

/// One blocking switch connection.
class SwitchClient {
 public:
  explicit SwitchClient(ClientIdentity identity);
  ~SwitchClient();

  SwitchClient(const SwitchClient&) = delete;
  SwitchClient& operator=(const SwitchClient&) = delete;

  /// Connect and run the RA handshake. False on connect failure,
  /// rejection, or timeout; see reject_reason()/error_text().
  bool connect(std::uint16_t port, int timeout_ms);

  /// One evidence round: fresh nonce, signed evidence, wait for the
  /// matching certificate.
  std::optional<ra::Certificate> round(int timeout_ms);

  /// Serve relayed challenges (and collect stray results) until
  /// `deadline_ms` elapses or `stop` goes true. Each relayed challenge
  /// is answered with evidence bound to the challenge nonce. Returns
  /// challenges answered.
  std::size_t serve(int deadline_ms, const std::atomic<bool>* stop = nullptr);

  /// Graceful bye + close.
  void close();

  [[nodiscard]] bool established() const {
    return session_ && session_->established();
  }
  [[nodiscard]] RejectReason reject_reason() const {
    return session_ ? session_->reject_reason() : RejectReason::kNone;
  }
  [[nodiscard]] const std::string& error_text() const;
  [[nodiscard]] ClientSession* session() { return session_.get(); }

 private:
  bool flush(int timeout_ms);
  bool pump(int timeout_ms);  // flush + read once; false on close/error

  ClientIdentity identity_;
  std::unique_ptr<crypto::Signer> quote_signer_;
  std::unique_ptr<crypto::Signer> device_signer_;
  crypto::NonceRegistry nonces_;
  Fd fd_;
  std::unique_ptr<ClientSession> session_;
  std::string error_;
};

/// Connection-scaling load generator: N sessions, one epoll, one thread.
class SwitchFleet {
 public:
  struct Config {
    std::uint16_t port = 0;
    std::size_t connections = 64;
    /// Evidence rounds in flight per connection during run_rounds.
    std::size_t depth = 1;
    /// Places are "<place_prefix><i>"; device keys cycle through
    /// `device_keys` (derived shard keys, shared with the server).
    std::string place_prefix = "sw";
    std::vector<crypto::Digest> device_keys;
    crypto::Digest quote_root_key{};
    crypto::Digest measurement{};
    bool mutual = false;
    crypto::Digest cert_key{};
    crypto::Digest appraiser_golden{};
    /// Accept()s outstanding at once during the connect storm.
    std::size_t connect_burst = 256;
  };

  struct RunStats {
    std::size_t established = 0;
    std::uint64_t rounds_completed = 0;
    std::uint64_t verdict_failures = 0;
    std::uint64_t session_failures = 0;
    std::int64_t wall_ns = 0;
    /// Per-round latency samples, microseconds (all rounds).
    std::vector<float> latency_us;
  };

  explicit SwitchFleet(Config config);
  ~SwitchFleet();

  SwitchFleet(const SwitchFleet&) = delete;
  SwitchFleet& operator=(const SwitchFleet&) = delete;

  /// Connect + handshake every session. Returns sessions established.
  std::size_t establish(int timeout_ms);

  /// Closed-loop evidence rounds across all established sessions until
  /// `total_rounds` certificates arrive (or the deadline hits).
  RunStats run_rounds(std::uint64_t total_rounds, int timeout_ms);

  /// Sessions currently established.
  [[nodiscard]] std::size_t established_count() const;

  /// Send bye on every session and close.
  void shutdown();

 private:
  struct FleetConn;

  void pump_writes(FleetConn& c);
  void update_interest(FleetConn& c);
  bool read_into(FleetConn& c);
  void send_round(FleetConn& c);
  void drop(FleetConn& c);

  Config config_;
  Fd epoll_;
  std::vector<std::unique_ptr<FleetConn>> conns_;
  std::vector<std::unique_ptr<crypto::Signer>> signers_;  // per device key
  std::vector<std::uint8_t> read_buf_;
  std::uint64_t next_nonce_ = 1;
  RunStats run_stats_;
};

}  // namespace pera::net
