// Length-prefixed framing for the real-socket evidence transport.
//
// TCP delivers a byte stream, not messages: one read() may return half a
// frame, three frames, or a frame and a half. Every protocol message
// therefore rides inside a frame
//
//   u32 BE  length   (of everything after this word: type byte + payload)
//   u8      type     (FrameType)
//   bytes   payload  (length - 1 bytes)
//
// and FrameDecoder reassembles frames from arbitrary byte arrivals —
// torn reads, coalesced frames, single-byte drips — emitting identical
// frame sequences regardless of how the stream was split (the torn-read
// differential test in test_net.cpp pins this down for every split
// point). The decoder is the first thing untrusted bytes touch, so it is
// strict: a zero length, an unknown type or a length beyond
// kMaxFramePayload poisons the stream permanently (the connection must
// be dropped) rather than resynchronising on attacker-controlled input.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "crypto/bytes.h"

namespace pera::net {

enum class FrameType : std::uint8_t {
  kHello = 1,      // first frame of a session: place + nonce + quote
  kHelloAck = 2,   // appraiser's admit/reject (+ counter-quote in mutual)
  kEvidence = 3,   // core::EvidenceMsg — one attestation round's evidence
  kResult = 4,     // ra::Certificate — the appraiser's signed verdict
  kChallenge = 5,  // place-addressed core::Challenge (relying-party path)
  kBye = 6,        // graceful close (empty payload)
};

[[nodiscard]] const char* to_string(FrameType t);
[[nodiscard]] bool known_frame_type(std::uint8_t t);

/// Hard ceiling on one frame's payload. Evidence for a full-detail round
/// is a few KiB; 1 MiB leaves two orders of magnitude of headroom while
/// capping what one malicious peer can make the decoder buffer.
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

/// Bytes of framing around a payload (length word + type byte).
inline constexpr std::size_t kFrameOverhead = 5;

struct Frame {
  FrameType type = FrameType::kBye;
  crypto::Bytes payload;
};

/// Append one encoded frame to `out` (the write-side primitive — callers
/// batch several frames into one buffer and writev them together).
void append_frame(crypto::Bytes& out, FrameType type,
                  crypto::BytesView payload);

[[nodiscard]] crypto::Bytes encode_frame(FrameType type,
                                         crypto::BytesView payload);

/// Incremental frame reassembly. feed() accepts whatever the socket
/// produced; next() pops completed frames in order. After an error the
/// decoder stays poisoned: feed() returns false and next() returns
/// nothing.
class FrameDecoder {
 public:
  /// Buffering cap: a peer that sends an (otherwise valid) length prefix
  /// must deliver the frame within this much buffered data; the default
  /// fits the largest legal frame exactly.
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Returns false when the stream is (or just became) poisoned.
  bool feed(crypto::BytesView data);

  /// Pop the next completed frame, if any.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error_text() const { return error_; }

  /// Bytes buffered but not yet emitted as frames (bounded by one frame
  /// plus one read chunk; the compaction keeps it from creeping).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - head_; }

  [[nodiscard]] std::uint64_t frames_decoded() const {
    return frames_decoded_;
  }

 private:
  void poison(std::string why);

  std::size_t max_payload_;
  crypto::Bytes buf_;
  std::size_t head_ = 0;  // consumed prefix of buf_ (compacted lazily)
  std::deque<Frame> ready_;
  std::string error_;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace pera::net
