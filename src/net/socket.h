// Thin POSIX socket layer under the reactor: RAII fd ownership,
// nonblocking loopback listen/connect, and the read/writev wrappers the
// event loop uses. No protocol knowledge lives here.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "crypto/bytes.h"

namespace pera::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Make a TCP listen socket on 127.0.0.1:`port` (0 = ephemeral),
/// nonblocking, SO_REUSEADDR, backlog deep enough for connection storms.
/// Throws std::runtime_error on failure.
[[nodiscard]] Fd listen_loopback(std::uint16_t port, int backlog = 4096);

/// Port a listen socket is bound to.
[[nodiscard]] std::uint16_t local_port(int fd);

/// Begin a nonblocking connect to 127.0.0.1:`port`. The socket is
/// created nonblocking with TCP_NODELAY; the connect may still be in
/// progress when this returns (poll for writability, then check
/// SO_ERROR via connect_finished). Throws std::runtime_error on
/// immediate failure.
[[nodiscard]] Fd connect_loopback(std::uint16_t port);

/// After a nonblocking connect became writable: true when the connect
/// succeeded, false when it failed.
[[nodiscard]] bool connect_finished(int fd);

/// Blocking connect with a timeout (milliseconds). Returns an invalid Fd
/// on failure or timeout.
[[nodiscard]] Fd connect_loopback_blocking(std::uint16_t port, int timeout_ms);

/// Set O_NONBLOCK (true on success).
bool set_nonblocking(int fd);

/// Disable Nagle (best effort).
void set_nodelay(int fd);

enum class IoStatus : std::uint8_t {
  kOk,        // made progress
  kWouldBlock,
  kClosed,    // orderly EOF (reads only)
  kError,
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// Read once into `buf` (up to buf_len). kOk means bytes > 0.
[[nodiscard]] IoResult read_some(int fd, std::uint8_t* buf,
                                 std::size_t buf_len);

/// writev the byte ranges in `iov` (built by the caller from its write
/// queue); partial writes return kOk with the short count.
struct IoSlice {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};
[[nodiscard]] IoResult write_vec(int fd, const IoSlice* iov, std::size_t n);

/// Best-effort bump of RLIMIT_NOFILE to at least `want` descriptors
/// (capped at the hard limit). Returns the resulting soft limit.
std::uint64_t ensure_fd_limit(std::uint64_t want);

}  // namespace pera::net
