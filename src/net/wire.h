// Handshake messages for RA-bound session establishment (COCOON's RA-TLS
// pattern, transliterated to this repo's crypto substrate).
//
// RA-TLS embeds the attestation quote in the certificate presented during
// the TLS handshake, so proving *code identity* and establishing the
// session are one act. Here the switch's very first frame is a Hello
// carrying a fresh session nonce and a Quote — a signed claim binding
//
//   place ∥ session nonce ∥ measurement
//
// under the switch's device key. The appraiser verifies the signature,
// checks the measurement against its golden value and the nonce against a
// replay registry *before* the session exists; evidence frames are only
// accepted on admitted sessions. In mutual mode the HelloAck carries the
// appraiser's counter-quote over the *client's* nonce, so the switch gets
// a fresh proof of the appraiser's identity in the same round trip.
//
// Per-round messages deliberately reuse the existing sim wire format:
// kEvidence frames carry core::EvidenceMsg bytes and kResult frames carry
// ra::Certificate bytes — the sim and socket transports speak the same
// language above the framing layer.
#pragma once

#include <cstdint>
#include <string>

#include "core/wire.h"
#include "crypto/nonce.h"
#include "crypto/signer.h"

namespace pera::net {

/// Why a Hello was refused (carried in the HelloAck so the client can
/// tell an identity failure from a capacity problem).
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kBadQuote = 1,       // signature or measurement check failed
  kUnknownPlace = 2,   // no verifier/golden provisioned for the place
  kReplayedNonce = 3,  // session nonce seen before
  kMalformed = 4,      // undecodable hello/quote
  kServerFull = 5,     // session table at capacity
  kRoleRefused = 6,    // e.g. relying-party sessions disabled
};

[[nodiscard]] const char* to_string(RejectReason r);

/// What a session is for. Switches attest and stream evidence; relying
/// parties drive challenges against switches through the appraiser.
enum class SessionRole : std::uint8_t {
  kSwitch = 1,
  kRelyingParty = 2,
};

/// A signed attestation quote: the claim "I am `place`, my identity
/// measurement is `measurement`, and I say so freshly for `nonce`".
struct Quote {
  std::string place;
  crypto::Nonce nonce{};
  crypto::Digest measurement{};
  crypto::Signature sig;

  /// The digest the quote's signature covers.
  [[nodiscard]] crypto::Digest signing_payload() const;

  /// Build and sign a quote in one step.
  [[nodiscard]] static Quote make(std::string place, const crypto::Nonce& nonce,
                                  const crypto::Digest& measurement,
                                  crypto::Signer& signer);

  /// Verify the signature only (measurement/golden policy is the
  /// caller's).
  [[nodiscard]] bool verify(const crypto::Verifier& v) const;

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static Quote deserialize(crypto::BytesView data);
};

/// First frame of every session (FrameType::kHello).
struct HelloMsg {
  std::uint8_t version = 1;
  SessionRole role = SessionRole::kSwitch;
  bool want_mutual = false;
  std::string place;
  crypto::Nonce session_nonce{};
  crypto::Bytes quote;  // Quote::serialize(); may be empty for RP sessions

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static HelloMsg deserialize(crypto::BytesView data);
};

/// The appraiser's answer (FrameType::kHelloAck).
struct HelloAckMsg {
  std::uint8_t version = 1;
  bool admitted = false;
  RejectReason reject = RejectReason::kNone;
  crypto::Nonce server_nonce{};
  crypto::Bytes quote;  // appraiser counter-quote (mutual mode), else empty

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static HelloAckMsg deserialize(crypto::BytesView data);
};

/// A challenge addressed to a place, relayed by the appraiser server from
/// a relying-party session to that place's switch session
/// (FrameType::kChallenge, both directions).
struct ChallengeFrame {
  std::string place;
  core::Challenge challenge;

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static ChallengeFrame deserialize(crypto::BytesView data);
};

/// Session identity both ends can derive after the handshake:
/// SHA-256(place ∥ client nonce ∥ server nonce).
[[nodiscard]] crypto::Digest session_id(const std::string& place,
                                        const crypto::Nonce& client_nonce,
                                        const crypto::Nonce& server_nonce);

/// Per-place quote-signing key, derived from a shared provisioning root
/// the same way on both ends (the net analogue of the pipeline's
/// shard-key derivation).
[[nodiscard]] crypto::Digest derive_quote_key(const crypto::Digest& root,
                                              const std::string& place);

}  // namespace pera::net
