#include "net/wire.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace pera::net {

using crypto::Bytes;
using crypto::BytesView;

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kBadQuote: return "bad_quote";
    case RejectReason::kUnknownPlace: return "unknown_place";
    case RejectReason::kReplayedNonce: return "replayed_nonce";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kServerFull: return "server_full";
    case RejectReason::kRoleRefused: return "role_refused";
  }
  return "unknown";
}

namespace {

void append_string(Bytes& out, const std::string& s) {
  crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
  crypto::append(out, crypto::as_bytes(s));
}

std::string read_string(BytesView data, std::size_t& off, const char* what) {
  const std::uint32_t len = crypto::read_u32(data, off);
  off += 4;
  if (off + len > data.size()) {
    throw std::invalid_argument(std::string(what) + ": truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + off), len);
  off += len;
  return s;
}

crypto::Digest read_digest(BytesView data, std::size_t& off,
                           const char* what) {
  if (off + 32 > data.size()) {
    throw std::invalid_argument(std::string(what) + ": truncated digest");
  }
  crypto::Digest d;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + 32), d.v.begin());
  off += 32;
  return d;
}

Bytes read_blob(BytesView data, std::size_t& off, const char* what) {
  const std::uint32_t len = crypto::read_u32(data, off);
  off += 4;
  if (off + len > data.size()) {
    throw std::invalid_argument(std::string(what) + ": truncated blob");
  }
  Bytes b(data.begin() + static_cast<std::ptrdiff_t>(off),
          data.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return b;
}

}  // namespace

crypto::Digest Quote::signing_payload() const {
  crypto::Sha256 h;
  h.update("pera.net.quote.v1");
  Bytes t;
  append_string(t, place);
  h.update(BytesView{t.data(), t.size()});
  h.update(nonce.value);
  h.update(measurement);
  return h.finish();
}

Quote Quote::make(std::string place, const crypto::Nonce& nonce,
                  const crypto::Digest& measurement, crypto::Signer& signer) {
  Quote q;
  q.place = std::move(place);
  q.nonce = nonce;
  q.measurement = measurement;
  q.sig = signer.sign(q.signing_payload());
  return q;
}

bool Quote::verify(const crypto::Verifier& v) const {
  return crypto::verify_any(v, signing_payload(), sig);
}

Bytes Quote::serialize() const {
  Bytes out;
  append_string(out, place);
  crypto::append(out, nonce.value);
  crypto::append(out, measurement);
  const Bytes sig_bytes = sig.serialize();
  crypto::append_u32(out, static_cast<std::uint32_t>(sig_bytes.size()));
  crypto::append(out, BytesView{sig_bytes.data(), sig_bytes.size()});
  return out;
}

Quote Quote::deserialize(BytesView data) {
  Quote q;
  std::size_t off = 0;
  q.place = read_string(data, off, "Quote");
  q.nonce.value = read_digest(data, off, "Quote");
  q.measurement = read_digest(data, off, "Quote");
  const Bytes sig_bytes = read_blob(data, off, "Quote");
  if (off != data.size()) {
    throw std::invalid_argument("Quote: trailing bytes");
  }
  q.sig = crypto::Signature::deserialize(
      BytesView{sig_bytes.data(), sig_bytes.size()});
  return q;
}

Bytes HelloMsg::serialize() const {
  Bytes out;
  out.push_back(version);
  out.push_back(static_cast<std::uint8_t>(role));
  out.push_back(want_mutual ? 1 : 0);
  append_string(out, place);
  crypto::append(out, session_nonce.value);
  crypto::append_u32(out, static_cast<std::uint32_t>(quote.size()));
  crypto::append(out, BytesView{quote.data(), quote.size()});
  return out;
}

HelloMsg HelloMsg::deserialize(BytesView data) {
  if (data.size() < 3) throw std::invalid_argument("HelloMsg: too short");
  HelloMsg m;
  m.version = data[0];
  const std::uint8_t role = data[1];
  if (role != static_cast<std::uint8_t>(SessionRole::kSwitch) &&
      role != static_cast<std::uint8_t>(SessionRole::kRelyingParty)) {
    throw std::invalid_argument("HelloMsg: unknown role");
  }
  m.role = static_cast<SessionRole>(role);
  m.want_mutual = data[2] != 0;
  std::size_t off = 3;
  m.place = read_string(data, off, "HelloMsg");
  m.session_nonce.value = read_digest(data, off, "HelloMsg");
  m.quote = read_blob(data, off, "HelloMsg");
  if (off != data.size()) {
    throw std::invalid_argument("HelloMsg: trailing bytes");
  }
  return m;
}

Bytes HelloAckMsg::serialize() const {
  Bytes out;
  out.push_back(version);
  out.push_back(admitted ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(reject));
  crypto::append(out, server_nonce.value);
  crypto::append_u32(out, static_cast<std::uint32_t>(quote.size()));
  crypto::append(out, BytesView{quote.data(), quote.size()});
  return out;
}

HelloAckMsg HelloAckMsg::deserialize(BytesView data) {
  if (data.size() < 3 + 32 + 4) {
    throw std::invalid_argument("HelloAckMsg: too short");
  }
  HelloAckMsg m;
  m.version = data[0];
  m.admitted = data[1] != 0;
  if (data[2] > static_cast<std::uint8_t>(RejectReason::kRoleRefused)) {
    throw std::invalid_argument("HelloAckMsg: unknown reject reason");
  }
  m.reject = static_cast<RejectReason>(data[2]);
  std::size_t off = 3;
  m.server_nonce.value = read_digest(data, off, "HelloAckMsg");
  m.quote = read_blob(data, off, "HelloAckMsg");
  if (off != data.size()) {
    throw std::invalid_argument("HelloAckMsg: trailing bytes");
  }
  return m;
}

Bytes ChallengeFrame::serialize() const {
  Bytes out;
  append_string(out, place);
  const Bytes ch = challenge.serialize();
  crypto::append_u32(out, static_cast<std::uint32_t>(ch.size()));
  crypto::append(out, BytesView{ch.data(), ch.size()});
  return out;
}

ChallengeFrame ChallengeFrame::deserialize(BytesView data) {
  ChallengeFrame f;
  std::size_t off = 0;
  f.place = read_string(data, off, "ChallengeFrame");
  const Bytes ch = read_blob(data, off, "ChallengeFrame");
  if (off != data.size()) {
    throw std::invalid_argument("ChallengeFrame: trailing bytes");
  }
  f.challenge =
      core::Challenge::deserialize(BytesView{ch.data(), ch.size()});
  return f;
}

crypto::Digest derive_quote_key(const crypto::Digest& root,
                                const std::string& place) {
  crypto::Sha256 h;
  h.update("pera.net.quotekey.v1");
  h.update(root);
  h.update(place);
  return h.finish();
}

crypto::Digest session_id(const std::string& place,
                          const crypto::Nonce& client_nonce,
                          const crypto::Nonce& server_nonce) {
  crypto::Sha256 h;
  h.update("pera.net.session.v1");
  h.update(place);
  h.update(client_nonce.value);
  h.update(server_nonce.value);
  return h.finish();
}

}  // namespace pera::net
