#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace pera::net {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Fd listen_loopback(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  if (!set_nonblocking(fd.get())) throw_errno("fcntl O_NONBLOCK");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  if (!set_nonblocking(fd.get())) throw_errno("fcntl O_NONBLOCK");
  set_nodelay(fd.get());
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    throw_errno("connect");
  }
  return fd;
}

bool connect_finished(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

Fd connect_loopback_blocking(std::uint16_t port, int timeout_ms) {
  Fd fd;
  try {
    fd = connect_loopback(port);
  } catch (const std::exception&) {
    return {};
  }
  pollfd p{fd.get(), POLLOUT, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc <= 0 || !connect_finished(fd.get())) return {};
  return fd;
}

IoResult read_some(int fd, std::uint8_t* buf, std::size_t buf_len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, buf_len);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult write_vec(int fd, const IoSlice* iov, std::size_t n) {
  constexpr std::size_t kMaxIov = 64;
  iovec vec[kMaxIov];
  const std::size_t count = n < kMaxIov ? n : kMaxIov;
  for (std::size_t i = 0; i < count; ++i) {
    vec[i].iov_base = const_cast<std::uint8_t*>(iov[i].data);
    vec[i].iov_len = iov[i].len;
  }
  for (;;) {
    const ssize_t w = ::writev(fd, vec, static_cast<int>(count));
    if (w >= 0) return {IoStatus::kOk, static_cast<std::size_t>(w)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

std::uint64_t ensure_fd_limit(std::uint64_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= want) return lim.rlim_cur;
  rlimit raised = lim;
  raised.rlim_cur = want < lim.rlim_max ? want : lim.rlim_max;
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  return lim.rlim_cur;
}

}  // namespace pera::net
