// Socket delivery backend for ctrl::EvidenceTransport.
//
// SocketBackend holds one relying-party session to the appraiser server
// and a loop thread. Challenges become ChallengeFrames the server relays
// to the named switch; the switch's evidence is appraised and the signed
// certificate is routed back down this session, where the loop thread
// hands it to the result sink (normally EvidenceTransport::on_result).
// Retry timers run on the same loop thread against the wall clock, so an
// EvidenceTransport driven through post() is single-threaded end to end —
// the same round logic the simulator runs, over real sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ctrl/transport.h"
#include "net/session.h"
#include "net/socket.h"

namespace pera::net {

class SocketBackend final : public ctrl::TransportBackend {
 public:
  struct Config {
    std::uint16_t port = 0;
    /// The relying party's claimed place (server-side session label).
    std::string place = "relying_party";
    int connect_timeout_ms = 2000;
    /// Mutual mode: demand and verify the appraiser's counter-quote.
    bool mutual = false;
    crypto::Digest cert_key{};
    crypto::Digest appraiser_golden{};
    std::uint64_t nonce_seed = 0xBACC'0001;
  };

  explicit SocketBackend(Config config);
  ~SocketBackend() override;

  SocketBackend(const SocketBackend&) = delete;
  SocketBackend& operator=(const SocketBackend&) = delete;

  /// Certificates arriving on the session are handed to `sink` on the
  /// loop thread. Set before connect().
  void set_result_sink(std::function<void(const ra::Certificate&)> sink);

  /// Connect and run the RP handshake on the calling thread, then start
  /// the loop thread. False on connect failure or rejection.
  bool connect();

  /// Run `fn` on the loop thread. Drive every EvidenceTransport call
  /// (begin_round, stats reads racing timers) through here: timers and
  /// result delivery run on the loop thread, so routing the rest through
  /// post() keeps the transport single-threaded.
  void post(std::function<void()> fn);

  /// Stop the loop thread and close the session. Idempotent.
  void stop();

  [[nodiscard]] bool established() const {
    return established_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& error_text() const { return error_; }

  // TransportBackend — loop thread only (or pre-loop, via post()).
  void send_challenge(const std::string& place,
                      const core::Challenge& ch) override;
  void schedule_in(netsim::SimTime delay, std::function<void()> fn) override;
  [[nodiscard]] netsim::SimTime now() override;

 private:
  struct Timer {
    std::int64_t at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among equal deadlines
    std::function<void()> fn;
  };

  bool handshake(std::int64_t deadline_ns);
  bool flush_blocking(std::int64_t deadline_ns);
  void run_loop();
  void try_flush();
  void wake();

  Config config_;
  crypto::NonceRegistry nonces_;
  std::function<void(const ra::Certificate&)> sink_;
  Fd fd_;
  Fd wake_fd_;
  std::unique_ptr<ClientSession> session_;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> established_{false};
  bool conn_dead_ = false;
  std::string error_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  // Loop-thread-only timer min-heap (by at, then seq).
  std::vector<Timer> timers_;
  std::uint64_t next_timer_seq_ = 0;

  std::vector<std::uint8_t> read_buf_;
};

}  // namespace pera::net
