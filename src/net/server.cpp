#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "copland/evidence.h"
#include "obs/obs.h"

namespace pera::net {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Work posted across threads into a reactor: adopted connections (from
/// the accepting reactor), signed-result requests (from appraiser
/// workers), relayed challenges (from another reactor's RP session).
struct AppraiserServer::Inbound {
  enum class Kind : std::uint8_t { kNewConn, kResult, kChallenge, kStop };
  Kind kind = Kind::kStop;
  int fd = -1;                 // kNewConn
  std::uint64_t token = 0;     // kResult / kChallenge destination
  crypto::Nonce nonce{};       // kResult
  crypto::Digest evidence_digest{};
  bool verdict = false;
  ChallengeFrame challenge;    // kChallenge
};

struct AppraiserServer::Conn {
  explicit Conn(const ServerSessionConfig* config) : session(config) {}

  Fd fd;
  std::uint64_t token = 0;
  ServerSession session;
  std::deque<crypto::Bytes> outq;
  std::size_t out_head = 0;   // consumed prefix of outq.front()
  std::size_t out_bytes = 0;  // total buffered (minus out_head)
  std::uint64_t next_seq = 0;
  std::uint32_t interest = 0;
  bool reads_paused = false;
  bool closing = false;        // close once outq drains
  bool place_registered = false;
  bool reject_counted = false;
  bool counted_open = false;
};

struct AppraiserServer::Reactor {
  std::size_t idx = 0;
  Fd epoll;
  Fd wake;
  std::thread thread;
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn = 0;
  std::uint64_t rr_next = 0;  // reactor 0 only: round-robin dealing
  std::unique_ptr<crypto::Signer> cert_signer;
  std::mutex inbox_mu;
  std::vector<Inbound> inbox;
  std::vector<std::uint8_t> read_buf;
};

AppraiserServer::AppraiserServer(ServerConfig config)
    : config_(std::move(config)), hello_nonces_(config_.nonce_seed) {
  if (config_.reactors == 0) config_.reactors = 1;
  if (config_.reactors > 255) config_.reactors = 255;
  if (config_.appraiser_workers == 0) config_.appraiser_workers = 1;
  if (config_.write_buffer_resume > config_.write_buffer_limit) {
    config_.write_buffer_resume = config_.write_buffer_limit / 2;
  }
}

AppraiserServer::~AppraiserServer() { stop(); }

RejectReason AppraiserServer::check_quote(const Quote& q) const {
  if (!config_.known_places.empty()) {
    bool known = false;
    for (const std::string& p : config_.known_places) {
      if (p == q.place) {
        known = true;
        break;
      }
    }
    if (!known) return RejectReason::kUnknownPlace;
  }
  const crypto::HmacVerifier v(derive_quote_key(config_.quote_root_key,
                                                q.place));
  if (!q.verify(v)) return RejectReason::kBadQuote;
  if (q.measurement != config_.golden_measurement) {
    return RejectReason::kBadQuote;
  }
  return RejectReason::kNone;
}

void AppraiserServer::start() {
  if (started_) return;
  started_ = true;

  listen_fd_ = listen_loopback(config_.port);
  port_ = local_port(listen_fd_.get());

  counter_quote_signer_ =
      std::make_unique<crypto::HmacSigner>(config_.cert_key);

  session_config_.check_quote = [this](const Quote& q) {
    return check_quote(q);
  };
  session_config_.admit_nonce = [this](const crypto::Nonce& n) {
    const std::lock_guard<std::mutex> lock(hello_mu_);
    return hello_nonces_.observe(n);
  };
  session_config_.make_server_nonce = [this] {
    const std::lock_guard<std::mutex> lock(hello_mu_);
    return hello_nonces_.issue();
  };
  session_config_.counter_quote = [this](const crypto::Nonce& client_nonce) {
    const std::lock_guard<std::mutex> lock(hello_mu_);
    return Quote::make(config_.appraiser_name, client_nonce,
                       config_.appraiser_measurement, *counter_quote_signer_);
  };

  pipeline::AppraiserOptions opts;
  opts.workers = config_.appraiser_workers;
  opts.queue_capacity = config_.ring_capacity;
  opts.scheme = config_.scheme;
  opts.xmss_height = config_.xmss_height;
  opts.verify_burst = config_.verify_burst;
  opts.record_hook = [this](const pipeline::EvidenceItem& item,
                            pipeline::AppraisedRecord&& rec) {
    on_appraised(item, std::move(rec));
  };
  appraiser_ = std::make_unique<pipeline::ParallelAppraiser>(
      config_.evidence_root_key, config_.evidence_key_label,
      config_.evidence_max_shards, opts);
  appraiser_->start(config_.reactors);

  running_.store(true, std::memory_order_release);
  reactors_.reserve(config_.reactors);
  for (std::size_t i = 0; i < config_.reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->idx = i;
    r->epoll = Fd(::epoll_create1(0));
    if (!r->epoll.valid()) throw std::runtime_error("epoll_create1 failed");
    r->wake = Fd(::eventfd(0, EFD_NONBLOCK));
    if (!r->wake.valid()) throw std::runtime_error("eventfd failed");
    r->cert_signer = std::make_unique<crypto::HmacSigner>(config_.cert_key);
    r->read_buf.resize(64 * 1024);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    ::epoll_ctl(r->epoll.get(), EPOLL_CTL_ADD, r->wake.get(), &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenToken;
      ::epoll_ctl(r->epoll.get(), EPOLL_CTL_ADD, listen_fd_.get(), &lev);
    }
    reactors_.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < config_.reactors; ++i) {
    reactors_[i]->thread = std::thread([this, i] { run_reactor(i); });
  }
}

void AppraiserServer::stop() {
  if (!started_) return;
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    for (std::size_t i = 0; i < reactors_.size(); ++i) {
      Inbound item;
      item.kind = Inbound::Kind::kStop;
      post(i, std::move(item));
    }
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  if (appraiser_) appraiser_->finish();
  reactors_.clear();
  listen_fd_.reset();
  started_ = false;
}

void AppraiserServer::post(std::size_t reactor_idx, Inbound&& item) {
  if (reactor_idx >= reactors_.size()) return;
  Reactor& r = *reactors_[reactor_idx];
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mu);
    r.inbox.push_back(std::move(item));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(r.wake.get(), &one, sizeof(one));
}

void AppraiserServer::on_appraised(const pipeline::EvidenceItem& item,
                                   pipeline::AppraisedRecord&& rec) {
  rounds_appraised_.fetch_add(1, std::memory_order_relaxed);
  PERA_OBS_COUNT("net.server.rounds");

  Inbound out;
  out.kind = Inbound::Kind::kResult;
  out.nonce = item.nonce;
  out.verdict = rec.decoded && rec.sig_ok;
  if (rec.content) out.evidence_digest = copland::digest(rec.content);

  // A round born from a relayed challenge goes back to the relying
  // party; everything else answers the originating switch session.
  std::uint64_t dest = item.flow;
  {
    const std::lock_guard<std::mutex> lock(route_mu_);
    const auto it = relay_routes_.find(item.nonce.value);
    if (it != relay_routes_.end()) {
      dest = it->second;
      relay_routes_.erase(it);
    }
  }
  out.token = dest;
  post(dest >> kTokenReactorShift, std::move(out));
}

void AppraiserServer::run_reactor(std::size_t idx) {
  Reactor& r = *reactors_[idx];
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];

  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(r.epoll.get(), events, kMaxEvents, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kListenToken) {
        accept_ready(r);
        continue;
      }
      if (token == kWakeToken) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rd =
            ::read(r.wake.get(), &drained, sizeof(drained));
        drain_inbox(r);
        continue;
      }
      const auto it = r.conns.find(token);
      if (it == r.conns.end()) continue;
      Conn& c = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(r, token);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) conn_writable(r, c);
      // conn_writable can close on write error — re-check liveness.
      if (r.conns.find(token) == r.conns.end()) continue;
      if ((events[i].events & EPOLLIN) != 0) conn_readable(r, c);
    }
  }
  // Orderly teardown of everything this reactor owns, including any
  // connection hand-offs still parked in the inbox.
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mu);
    for (const Inbound& item : r.inbox) {
      if (item.kind == Inbound::Kind::kNewConn && item.fd >= 0) {
        ::close(item.fd);
      }
    }
    r.inbox.clear();
  }
  r.conns.clear();
}

void AppraiserServer::accept_ready(Reactor& r) {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; epoll will re-arm
    }
    if (open_sessions_.load(std::memory_order_relaxed) >=
        config_.max_sessions) {
      ::close(fd);
      PERA_OBS_COUNT("net.server.accept_overflow");
      continue;
    }
    const std::size_t target = r.rr_next++ % config_.reactors;
    if (target == r.idx) {
      adopt_conn(r, fd);
    } else {
      Inbound item;
      item.kind = Inbound::Kind::kNewConn;
      item.fd = fd;
      post(target, std::move(item));
    }
  }
}

void AppraiserServer::adopt_conn(Reactor& r, int fd) {
  set_nodelay(fd);
  auto conn = std::make_unique<Conn>(&session_config_);
  conn->fd = Fd(fd);
  conn->token = (static_cast<std::uint64_t>(r.idx) << kTokenReactorShift) |
                ++r.next_conn;
  conn->interest = EPOLLIN;
  conn->counted_open = true;
  open_sessions_.fetch_add(1, std::memory_order_relaxed);
  PERA_OBS_GAUGE("net.server.open",
                 open_sessions_.load(std::memory_order_relaxed));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = conn->token;
  if (::epoll_ctl(r.epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
    return;  // conn (and fd) die here
  }
  r.conns.emplace(conn->token, std::move(conn));
}

void AppraiserServer::drain_inbox(Reactor& r) {
  std::vector<Inbound> items;
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mu);
    items.swap(r.inbox);
  }
  for (Inbound& item : items) {
    switch (item.kind) {
      case Inbound::Kind::kStop:
        break;  // running_ already cleared; the loop exits on next poll
      case Inbound::Kind::kNewConn:
        adopt_conn(r, item.fd);
        break;
      case Inbound::Kind::kResult: {
        const auto it = r.conns.find(item.token);
        if (it == r.conns.end()) break;  // session left before its verdict
        ra::Certificate cert;
        cert.appraiser = config_.appraiser_name;
        cert.nonce = item.nonce;
        cert.evidence_digest = item.evidence_digest;
        cert.verdict = item.verdict;
        cert.issued_at = wall_ns();
        cert.sig = r.cert_signer->sign(cert.signing_payload());
        it->second->session.queue_result(cert);
        results_sent_.fetch_add(1, std::memory_order_relaxed);
        PERA_OBS_COUNT("net.server.results");
        after_progress(r, *it->second);
        break;
      }
      case Inbound::Kind::kChallenge: {
        const auto it = r.conns.find(item.token);
        if (it == r.conns.end()) break;
        it->second->session.queue_challenge(item.challenge);
        after_progress(r, *it->second);
        break;
      }
    }
  }
}

void AppraiserServer::conn_readable(Reactor& r, Conn& c) {
  if (c.reads_paused || c.closing) return;
  const std::uint64_t token = c.token;
  for (;;) {
    const IoResult res =
        read_some(c.fd.get(), r.read_buf.data(), r.read_buf.size());
    if (res.status == IoStatus::kWouldBlock) break;
    if (res.status == IoStatus::kClosed || res.status == IoStatus::kError) {
      close_conn(r, token);
      return;
    }
    bytes_in_.fetch_add(res.bytes, std::memory_order_relaxed);
    const bool ok = c.session.on_bytes(
        crypto::BytesView{r.read_buf.data(), res.bytes});
    if (!ok) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      c.closing = true;  // flush whatever the session queued (reject ack)
      break;
    }
    if (c.session.wants_close()) {
      c.closing = true;
      break;
    }
    if (res.bytes < r.read_buf.size()) break;  // drained the socket
  }
  after_progress(r, c);
}

void AppraiserServer::after_progress(Reactor& r, Conn& c) {
  // 1. Session state side effects.
  if (c.session.established() &&
      c.session.role() == SessionRole::kSwitch && !c.place_registered) {
    c.place_registered = true;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(place_mu_);
    place_index_[c.session.place()] = c.token;
  } else if (c.session.established() &&
             c.session.role() == SessionRole::kRelyingParty &&
             !c.place_registered) {
    c.place_registered = true;  // counted, not indexed
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (c.session.state() == ServerSession::State::kRejected &&
      !c.reject_counted) {
    c.reject_counted = true;
    rejected_.fetch_add(1, std::memory_order_relaxed);
    c.closing = true;
  }
  if (c.session.wants_close()) c.closing = true;

  // 2. Evidence rounds -> appraiser rings.
  for (EvidenceRound& round : c.session.take_evidence()) {
    pipeline::EvidenceItem item;
    item.flow = c.token;
    item.seq = c.next_seq++;
    item.shard = 0;
    item.nonce = round.nonce;
    item.evidence = std::move(round.evidence);
    appraiser_->accept(static_cast<std::uint32_t>(r.idx), std::move(item));
  }

  // 3. Challenge relays from relying-party sessions.
  for (RelayRequest& relay : c.session.take_relays()) {
    std::uint64_t switch_token = 0;
    {
      const std::lock_guard<std::mutex> lock(place_mu_);
      const auto it = place_index_.find(relay.place);
      if (it != place_index_.end()) switch_token = it->second;
    }
    if (switch_token == 0) {
      unrouted_.fetch_add(1, std::memory_order_relaxed);
      PERA_OBS_COUNT("net.server.challenge_unrouted");
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(route_mu_);
      relay_routes_[relay.challenge.nonce.value] = c.token;
    }
    relayed_.fetch_add(1, std::memory_order_relaxed);
    PERA_OBS_COUNT("net.server.challenge_relayed");
    Inbound item;
    item.kind = Inbound::Kind::kChallenge;
    item.token = switch_token;
    item.challenge.place = relay.place;
    item.challenge.challenge = relay.challenge;
    post(switch_token >> kTokenReactorShift, std::move(item));
  }

  // 4. Move queued frames to the write queue and flush what we can.
  crypto::Bytes& outbox = c.session.outbox();
  if (!outbox.empty()) {
    c.out_bytes += outbox.size();
    c.outq.push_back(std::move(outbox));
    outbox.clear();
  }
  flush_writes(r, c);
}

void AppraiserServer::flush_writes(Reactor& r, Conn& c) {
  const std::uint64_t token = c.token;
  while (!c.outq.empty()) {
    constexpr std::size_t kMaxSlices = 64;
    IoSlice slices[kMaxSlices];
    std::size_t n = 0;
    for (const crypto::Bytes& chunk : c.outq) {
      if (n == kMaxSlices) break;
      const std::size_t off = (n == 0) ? c.out_head : 0;
      slices[n].data = chunk.data() + off;
      slices[n].len = chunk.size() - off;
      ++n;
    }
    const IoResult res = write_vec(c.fd.get(), slices, n);
    if (res.status == IoStatus::kWouldBlock) break;
    if (res.status != IoStatus::kOk) {
      close_conn(r, token);
      return;
    }
    bytes_out_.fetch_add(res.bytes, std::memory_order_relaxed);
    c.out_bytes -= res.bytes;
    std::size_t consumed = res.bytes;
    while (consumed > 0 && !c.outq.empty()) {
      crypto::Bytes& front = c.outq.front();
      const std::size_t left = front.size() - c.out_head;
      if (consumed >= left) {
        consumed -= left;
        c.out_head = 0;
        c.outq.pop_front();
      } else {
        c.out_head += consumed;
        consumed = 0;
      }
    }
  }
  if (c.outq.empty() && c.closing) {
    close_conn(r, token);
    return;
  }
  // Backpressure: a peer that stops reading gets its own reads paused
  // until it drains what we already owe it.
  if (!c.reads_paused && c.out_bytes > config_.write_buffer_limit) {
    c.reads_paused = true;
    read_pauses_.fetch_add(1, std::memory_order_relaxed);
    PERA_OBS_COUNT("net.server.read_pause");
  } else if (c.reads_paused && c.out_bytes < config_.write_buffer_resume) {
    c.reads_paused = false;
  }
  update_interest(r, c);
}

void AppraiserServer::conn_writable(Reactor& r, Conn& c) {
  flush_writes(r, c);
}

void AppraiserServer::update_interest(Reactor& r, Conn& c) {
  std::uint32_t want = 0;
  if (!c.reads_paused && !c.closing) want |= EPOLLIN;
  if (!c.outq.empty()) want |= EPOLLOUT;
  if (want == c.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = c.token;
  if (::epoll_ctl(r.epoll.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) == 0) {
    c.interest = want;
  }
}

void AppraiserServer::close_conn(Reactor& r, std::uint64_t token) {
  const auto it = r.conns.find(token);
  if (it == r.conns.end()) return;
  Conn& c = *it->second;
  if (c.place_registered && c.session.role() == SessionRole::kSwitch) {
    const std::lock_guard<std::mutex> lock(place_mu_);
    const auto pit = place_index_.find(c.session.place());
    if (pit != place_index_.end() && pit->second == token) {
      place_index_.erase(pit);
    }
  }
  if (c.counted_open) {
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
    PERA_OBS_GAUGE("net.server.open",
                   open_sessions_.load(std::memory_order_relaxed));
  }
  r.conns.erase(it);  // closes the fd; epoll deregisters automatically
}

ServerStats AppraiserServer::stats() const {
  ServerStats s;
  s.sessions_accepted = accepted_.load(std::memory_order_relaxed);
  s.sessions_rejected = rejected_.load(std::memory_order_relaxed);
  s.sessions_open = open_sessions_.load(std::memory_order_relaxed);
  s.rounds_appraised = rounds_appraised_.load(std::memory_order_relaxed);
  s.results_sent = results_sent_.load(std::memory_order_relaxed);
  s.challenges_relayed = relayed_.load(std::memory_order_relaxed);
  s.challenges_unrouted = unrouted_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.read_pauses = read_pauses_.load(std::memory_order_relaxed);
  return s;
}

bool AppraiserServer::wait_for_rounds(std::uint64_t n, int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (rounds_appraised_.load(std::memory_order_acquire) < n) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

}  // namespace pera::net
