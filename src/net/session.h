// Sans-I/O protocol state machines for both ends of an RA session.
//
// All protocol logic — handshake admission, frame dispatch, evidence
// extraction, result matching — lives here, decoupled from sockets:
// callers push whatever bytes arrived (`on_bytes`), drain whatever must
// be written (`outbox`), and collect decoded protocol events. The epoll
// reactor (server.cpp), the blocking client, the load-generating fleet
// and the byte-split differential test all drive the *same* state
// machines, so "the protocol behaves identically however the stream is
// torn" is a property of one class, tested directly.
//
// Neither class touches threads or clocks; each instance is owned by
// exactly one driver thread.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"
#include "ra/certificate.h"

namespace pera::net {

/// One decoded evidence round arriving at the server.
struct EvidenceRound {
  crypto::Nonce nonce{};
  crypto::Bytes evidence;
};

/// A challenge a relying-party session asked the server to relay.
struct RelayRequest {
  std::string place;
  core::Challenge challenge;
};

/// How the server decides admission. All hooks are synchronous and run on
/// the session's driver thread.
struct ServerSessionConfig {
  /// Verify a switch quote end-to-end (signature, golden measurement,
  /// place known). Returns kNone to admit. Required.
  std::function<RejectReason(const Quote&)> check_quote;
  /// First-observation check for the hello's session nonce; false =
  /// replay. The server shares one registry across reactors. Required.
  std::function<bool(const crypto::Nonce&)> admit_nonce;
  /// Fresh server-side nonce for the ack. Required.
  std::function<crypto::Nonce()> make_server_nonce;
  /// Counter-quote over the client's nonce (mutual mode). Only called
  /// when a hello asks for mutual attestation and this hook is set;
  /// otherwise mutual requests are answered without a quote.
  std::function<Quote(const crypto::Nonce& client_nonce)> counter_quote;
  bool admit_relying_parties = true;
};

/// Server-side session: bytes in, frames out, evidence rounds surfaced
/// for appraisal.
class ServerSession {
 public:
  enum class State : std::uint8_t {
    kAwaitHello,
    kEstablished,
    kRejected,  // ack queued; close after flushing
    kClosed,    // bye received or protocol error
  };

  explicit ServerSession(const ServerSessionConfig* config)
      : config_(config) {}

  /// Feed received bytes. Returns false on protocol error (the caller
  /// should flush the outbox, then drop the connection).
  bool on_bytes(crypto::BytesView data);

  /// Frames queued for the peer. The driver writes and clears this.
  [[nodiscard]] crypto::Bytes& outbox() { return outbox_; }

  /// Queue a signed result for the peer.
  void queue_result(const ra::Certificate& cert);

  /// Relay a challenge to this (switch) session.
  void queue_challenge(const ChallengeFrame& ch);

  /// Evidence rounds decoded since the last take (established sessions
  /// only). Appended in arrival order.
  [[nodiscard]] std::vector<EvidenceRound> take_evidence();

  /// Challenge relays requested since the last take (RP sessions only).
  [[nodiscard]] std::vector<RelayRequest> take_relays();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  [[nodiscard]] bool wants_close() const {
    return state_ == State::kRejected || state_ == State::kClosed;
  }
  [[nodiscard]] bool peer_said_bye() const { return peer_bye_; }
  [[nodiscard]] const std::string& place() const { return place_; }
  [[nodiscard]] SessionRole role() const { return role_; }
  [[nodiscard]] RejectReason reject_reason() const { return reject_; }
  [[nodiscard]] const crypto::Digest& id() const { return id_; }
  [[nodiscard]] std::uint64_t rounds_received() const { return rounds_; }
  [[nodiscard]] const std::string& error_text() const { return error_; }

 private:
  bool handle(Frame&& frame);
  bool handle_hello(const Frame& frame);
  bool fail(std::string why);

  const ServerSessionConfig* config_;
  FrameDecoder decoder_;
  State state_ = State::kAwaitHello;
  SessionRole role_ = SessionRole::kSwitch;
  RejectReason reject_ = RejectReason::kNone;
  std::string place_;
  crypto::Digest id_{};
  crypto::Bytes outbox_;
  std::vector<EvidenceRound> evidence_;
  std::vector<RelayRequest> relays_;
  std::uint64_t rounds_ = 0;
  bool peer_bye_ = false;
  std::string error_;
};

/// Client-side configuration: who we claim to be and how to prove it.
struct ClientSessionConfig {
  std::string place;
  SessionRole role = SessionRole::kSwitch;
  bool want_mutual = false;
  /// The hello quote bound to `nonce` (switch role). Required for
  /// switches; ignored for relying parties.
  std::function<Quote(const crypto::Nonce& nonce)> make_quote;
  /// Verify the appraiser's counter-quote (mutual mode): it must bind
  /// our session nonce. False = handshake fails locally. Required when
  /// want_mutual is set.
  std::function<bool(const Quote&)> verify_counter_quote;
  /// Challenge handler (switch role): produce evidence bytes for the
  /// challenged detail, bound to the challenge nonce. When unset,
  /// challenges are ignored.
  std::function<crypto::Bytes(const core::Challenge&)> answer_challenge;
};

/// Client-side session: drives the handshake, sends evidence rounds,
/// collects results.
class ClientSession {
 public:
  enum class State : std::uint8_t {
    kIdle,
    kAwaitAck,
    kEstablished,
    kRejected,  // server refused us
    kFailed,    // protocol error or counter-quote verification failure
    kClosed,
  };

  ClientSession(ClientSessionConfig config, crypto::Nonce session_nonce);

  /// Queue the hello. Call once, before feeding any bytes.
  void start();

  /// Feed received bytes; false on protocol/handshake failure.
  bool on_bytes(crypto::BytesView data);

  [[nodiscard]] crypto::Bytes& outbox() { return outbox_; }

  /// Queue one evidence round (established sessions).
  void send_evidence(const crypto::Nonce& nonce, crypto::BytesView evidence);

  /// Queue a challenge relay request (relying-party sessions).
  void send_challenge(const std::string& place,
                      const core::Challenge& challenge);

  /// Queue a graceful bye.
  void send_bye();

  /// Results received since the last take, in arrival order.
  [[nodiscard]] std::vector<ra::Certificate> take_results();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  [[nodiscard]] bool failed() const {
    return state_ == State::kRejected || state_ == State::kFailed;
  }
  [[nodiscard]] RejectReason reject_reason() const { return reject_; }
  [[nodiscard]] const crypto::Nonce& session_nonce() const { return nonce_; }
  [[nodiscard]] const crypto::Digest& id() const { return id_; }
  [[nodiscard]] std::uint64_t results_received() const { return results_n_; }
  [[nodiscard]] std::uint64_t challenges_answered() const {
    return challenges_answered_;
  }
  [[nodiscard]] const std::string& error_text() const { return error_; }

 private:
  bool handle(Frame&& frame);
  bool fail(std::string why);

  ClientSessionConfig config_;
  crypto::Nonce nonce_;
  FrameDecoder decoder_;
  State state_ = State::kIdle;
  RejectReason reject_ = RejectReason::kNone;
  crypto::Digest id_{};
  crypto::Bytes outbox_;
  std::vector<ra::Certificate> results_;
  std::uint64_t results_n_ = 0;
  std::uint64_t challenges_answered_ = 0;
  std::string error_;
};

}  // namespace pera::net
