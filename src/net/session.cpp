#include "net/session.h"

#include <utility>

#include "obs/obs.h"

namespace pera::net {

// --- ServerSession ----------------------------------------------------------

bool ServerSession::fail(std::string why) {
  error_ = std::move(why);
  state_ = State::kClosed;
  PERA_OBS_COUNT("net.session.protocol_error");
  return false;
}

bool ServerSession::on_bytes(crypto::BytesView data) {
  if (state_ == State::kClosed) return false;
  if (!decoder_.feed(data)) {
    return fail("frame decode: " + decoder_.error_text());
  }
  while (auto f = decoder_.next()) {
    if (!handle(std::move(*f))) return false;
    if (state_ == State::kRejected || state_ == State::kClosed) break;
  }
  return true;
}

bool ServerSession::handle_hello(const Frame& frame) {
  HelloMsg hello;
  try {
    hello = HelloMsg::deserialize(
        crypto::BytesView{frame.payload.data(), frame.payload.size()});
  } catch (const std::exception& e) {
    reject_ = RejectReason::kMalformed;
    return fail(std::string("hello: ") + e.what());
  }

  HelloAckMsg ack;
  ack.server_nonce = config_->make_server_nonce();
  RejectReason reject = RejectReason::kNone;

  if (hello.role == SessionRole::kRelyingParty &&
      !config_->admit_relying_parties) {
    reject = RejectReason::kRoleRefused;
  } else if (!config_->admit_nonce(hello.session_nonce)) {
    reject = RejectReason::kReplayedNonce;
  } else if (hello.role == SessionRole::kSwitch) {
    Quote quote;
    try {
      quote = Quote::deserialize(
          crypto::BytesView{hello.quote.data(), hello.quote.size()});
    } catch (const std::exception&) {
      reject = RejectReason::kMalformed;
    }
    if (reject == RejectReason::kNone) {
      // The quote must bind exactly this hello: same place, same nonce.
      if (quote.place != hello.place ||
          quote.nonce.value != hello.session_nonce.value) {
        reject = RejectReason::kBadQuote;
      } else {
        reject = config_->check_quote(quote);
      }
    }
  }

  if (reject != RejectReason::kNone) {
    ack.admitted = false;
    ack.reject = reject;
    reject_ = reject;
    state_ = State::kRejected;
    PERA_OBS_COUNT("net.session.rejected");
    PERA_OBS_COUNT(std::string("net.session.reject.") + to_string(reject));
  } else {
    ack.admitted = true;
    if (hello.want_mutual && config_->counter_quote) {
      ack.quote =
          config_->counter_quote(hello.session_nonce).serialize();
    }
    role_ = hello.role;
    place_ = hello.place;
    id_ = session_id(hello.place, hello.session_nonce, ack.server_nonce);
    state_ = State::kEstablished;
    PERA_OBS_COUNT("net.session.accepted");
  }
  const crypto::Bytes ack_bytes = ack.serialize();
  append_frame(outbox_, FrameType::kHelloAck,
               crypto::BytesView{ack_bytes.data(), ack_bytes.size()});
  return true;
}

bool ServerSession::handle(Frame&& frame) {
  if (state_ == State::kAwaitHello) {
    if (frame.type != FrameType::kHello) {
      return fail("expected hello, got " + std::string(to_string(frame.type)));
    }
    return handle_hello(frame);
  }
  // Established: evidence / challenge / bye.
  switch (frame.type) {
    case FrameType::kEvidence: {
      if (role_ != SessionRole::kSwitch) {
        return fail("evidence on a relying-party session");
      }
      core::EvidenceMsg msg;
      try {
        msg = core::EvidenceMsg::deserialize(
            crypto::BytesView{frame.payload.data(), frame.payload.size()});
      } catch (const std::exception& e) {
        return fail(std::string("evidence: ") + e.what());
      }
      EvidenceRound round;
      round.nonce = msg.nonce;
      round.evidence = std::move(msg.evidence);
      evidence_.push_back(std::move(round));
      ++rounds_;
      PERA_OBS_COUNT("net.evidence.rounds");
      return true;
    }
    case FrameType::kChallenge: {
      if (role_ != SessionRole::kRelyingParty) {
        return fail("challenge from a switch session");
      }
      ChallengeFrame ch;
      try {
        ch = ChallengeFrame::deserialize(
            crypto::BytesView{frame.payload.data(), frame.payload.size()});
      } catch (const std::exception& e) {
        return fail(std::string("challenge: ") + e.what());
      }
      relays_.push_back({std::move(ch.place), ch.challenge});
      PERA_OBS_COUNT("net.challenge.requested");
      return true;
    }
    case FrameType::kBye:
      peer_bye_ = true;
      state_ = State::kClosed;
      return true;
    default:
      return fail("unexpected frame " + std::string(to_string(frame.type)));
  }
}

void ServerSession::queue_result(const ra::Certificate& cert) {
  const crypto::Bytes bytes = cert.serialize();
  append_frame(outbox_, FrameType::kResult,
               crypto::BytesView{bytes.data(), bytes.size()});
}

void ServerSession::queue_challenge(const ChallengeFrame& ch) {
  const crypto::Bytes bytes = ch.serialize();
  append_frame(outbox_, FrameType::kChallenge,
               crypto::BytesView{bytes.data(), bytes.size()});
}

std::vector<EvidenceRound> ServerSession::take_evidence() {
  return std::exchange(evidence_, {});
}

std::vector<RelayRequest> ServerSession::take_relays() {
  return std::exchange(relays_, {});
}

// --- ClientSession ----------------------------------------------------------

ClientSession::ClientSession(ClientSessionConfig config,
                             crypto::Nonce session_nonce)
    : config_(std::move(config)), nonce_(session_nonce) {}

bool ClientSession::fail(std::string why) {
  error_ = std::move(why);
  state_ = State::kFailed;
  PERA_OBS_COUNT("net.client.protocol_error");
  return false;
}

void ClientSession::start() {
  if (state_ != State::kIdle) return;
  HelloMsg hello;
  hello.role = config_.role;
  hello.want_mutual = config_.want_mutual;
  hello.place = config_.place;
  hello.session_nonce = nonce_;
  if (config_.role == SessionRole::kSwitch && config_.make_quote) {
    hello.quote = config_.make_quote(nonce_).serialize();
  }
  const crypto::Bytes bytes = hello.serialize();
  append_frame(outbox_, FrameType::kHello,
               crypto::BytesView{bytes.data(), bytes.size()});
  state_ = State::kAwaitAck;
}

bool ClientSession::on_bytes(crypto::BytesView data) {
  if (state_ == State::kClosed || failed()) return false;
  if (!decoder_.feed(data)) {
    return fail("frame decode: " + decoder_.error_text());
  }
  while (auto f = decoder_.next()) {
    if (!handle(std::move(*f))) return false;
  }
  return true;
}

bool ClientSession::handle(Frame&& frame) {
  if (state_ == State::kAwaitAck) {
    if (frame.type != FrameType::kHelloAck) {
      return fail("expected hello_ack, got " +
                  std::string(to_string(frame.type)));
    }
    HelloAckMsg ack;
    try {
      ack = HelloAckMsg::deserialize(
          crypto::BytesView{frame.payload.data(), frame.payload.size()});
    } catch (const std::exception& e) {
      return fail(std::string("hello_ack: ") + e.what());
    }
    if (!ack.admitted) {
      reject_ = ack.reject;
      state_ = State::kRejected;
      error_ = std::string("rejected: ") + to_string(ack.reject);
      return false;
    }
    if (config_.want_mutual) {
      if (!config_.verify_counter_quote) {
        return fail("mutual mode without a counter-quote verifier");
      }
      Quote quote;
      try {
        quote = Quote::deserialize(
            crypto::BytesView{ack.quote.data(), ack.quote.size()});
      } catch (const std::exception& e) {
        return fail(std::string("counter-quote: ") + e.what());
      }
      // Freshness: the appraiser's quote must bind *our* nonce.
      if (quote.nonce.value != nonce_.value ||
          !config_.verify_counter_quote(quote)) {
        return fail("counter-quote verification failed");
      }
    }
    id_ = session_id(config_.place, nonce_, ack.server_nonce);
    state_ = State::kEstablished;
    return true;
  }
  switch (frame.type) {
    case FrameType::kResult: {
      ra::Certificate cert;
      try {
        cert = ra::Certificate::deserialize(
            crypto::BytesView{frame.payload.data(), frame.payload.size()});
      } catch (const std::exception& e) {
        return fail(std::string("result: ") + e.what());
      }
      results_.push_back(std::move(cert));
      ++results_n_;
      return true;
    }
    case FrameType::kChallenge: {
      ChallengeFrame ch;
      try {
        ch = ChallengeFrame::deserialize(
            crypto::BytesView{frame.payload.data(), frame.payload.size()});
      } catch (const std::exception& e) {
        return fail(std::string("challenge: ") + e.what());
      }
      if (config_.answer_challenge) {
        const crypto::Bytes evidence = config_.answer_challenge(ch.challenge);
        send_evidence(ch.challenge.nonce,
                      crypto::BytesView{evidence.data(), evidence.size()});
        ++challenges_answered_;
      }
      return true;
    }
    case FrameType::kBye:
      state_ = State::kClosed;
      return true;
    default:
      return fail("unexpected frame " + std::string(to_string(frame.type)));
  }
}

void ClientSession::send_evidence(const crypto::Nonce& nonce,
                                  crypto::BytesView evidence) {
  core::EvidenceMsg msg;
  msg.nonce = nonce;
  msg.evidence.assign(evidence.begin(), evidence.end());
  const crypto::Bytes bytes = msg.serialize();
  append_frame(outbox_, FrameType::kEvidence,
               crypto::BytesView{bytes.data(), bytes.size()});
}

void ClientSession::send_challenge(const std::string& place,
                                   const core::Challenge& challenge) {
  ChallengeFrame f;
  f.place = place;
  f.challenge = challenge;
  const crypto::Bytes bytes = f.serialize();
  append_frame(outbox_, FrameType::kChallenge,
               crypto::BytesView{bytes.data(), bytes.size()});
}

void ClientSession::send_bye() {
  append_frame(outbox_, FrameType::kBye, {});
}

std::vector<ra::Certificate> ClientSession::take_results() {
  return std::exchange(results_, {});
}

}  // namespace pera::net
