// The three RA principals of Fig. 1, built on the Copland evidence model:
//
//   RelyingParty --Claim/Challenge--> Attester --Evidence--> Appraiser
//   RelyingParty <------------------- Result (Certificate) --/
//
// These classes are transport-agnostic: the core module moves their
// messages over netsim; tests call them directly.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "copland/evidence.h"
#include "copland/testbed.h"
#include "crypto/keystore.h"
#include "crypto/nonce.h"
#include "ra/appraisal_policy.h"
#include "ra/certificate.h"
#include "ra/endorsement.h"

namespace pera::ra {

using copland::EvidencePtr;

/// A claim the attester can back with a measurement: a named target plus
/// the function that measures it *now* (hooked to live switch state).
struct ClaimSource {
  std::string target;                          // "Hardware", "Program", ...
  std::function<crypto::Digest()> measure;     // live measurement
  std::string claim_text;
};

/// Produces evidence about its platform (Fig. 1 "Attester").
class Attester {
 public:
  /// `signer` must outlive the attester.
  Attester(std::string name, crypto::Signer& signer)
      : name_(std::move(name)), signer_(&signer) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Register a measurable target.
  void add_claim_source(ClaimSource source);
  [[nodiscard]] std::vector<std::string> targets() const;

  /// Produce evidence for the named targets (all registered targets when
  /// `targets` is empty), bound to `nonce` if given, hashed first when
  /// `hash_before_sign` (the `# -> !` of expression (3)), and signed.
  /// Throws std::invalid_argument for unknown targets.
  [[nodiscard]] EvidencePtr attest(
      const std::vector<std::string>& targets = {},
      const std::optional<crypto::Nonce>& nonce = std::nullopt,
      bool hash_before_sign = false);

  /// Number of attestations produced.
  [[nodiscard]] std::uint64_t attest_count() const { return attest_count_; }

 private:
  std::string name_;
  crypto::Signer* signer_;
  std::vector<ClaimSource> sources_;
  std::uint64_t attest_count_ = 0;
};

/// The appraiser's verdict (Fig. 1 "Attestation Result" ➃).
struct AttestationResult {
  bool ok = false;
  copland::AppraisalResult detail;
  std::optional<Certificate> certificate;
};

/// Verifies evidence and issues certificates (Fig. 1 "Appraiser").
class Appraiser {
 public:
  Appraiser(std::string name, crypto::KeyStore& keys)
      : name_(std::move(name)), keys_(&keys), nonces_(0xA99A) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Provision a golden value for (place, target).
  void set_golden(const std::string& place, const std::string& target,
                  const crypto::Digest& value);
  [[nodiscard]] const std::map<copland::ComponentId, crypto::Digest>& goldens()
      const {
    return goldens_;
  }

  /// Provision a golden value from a signed endorsement (the RATS
  /// Reference Value Provider path). The endorser's key must verify under
  /// the key store; product-wide endorsements (empty place) are pinned to
  /// `pin_place`. Returns false (and installs nothing) on a bad
  /// signature or unknown endorser.
  bool accept_endorsement(const Endorsement& endorsement,
                          const std::string& pin_place = "");

  /// Require evidence to additionally satisfy a declarative policy
  /// (required targets per place, vetted-version allow-lists, ...). The
  /// policy's findings are folded into the appraisal verdict — this is
  /// what defeats challenge-downgrade attacks: evidence that omits a
  /// required measurement fails even if everything present is genuine.
  void set_policy(AppraisalPolicy policy) { policy_ = std::move(policy); }
  [[nodiscard]] const std::optional<AppraisalPolicy>& policy() const {
    return policy_;
  }

  /// Appraise evidence. When `expected_nonce` is set, the evidence must
  /// contain that nonce; with `enforce_freshness`, replays of the nonce
  /// are also rejected (disable for per-flow evidence where one nonce
  /// deliberately covers many packets — that is what enables caching).
  /// When `certify` is true and the appraiser's place has a signer, a
  /// Certificate is issued and stored under the nonce (expressions
  /// (3)/(4) "certify -> store").
  [[nodiscard]] AttestationResult appraise(
      const EvidencePtr& evidence,
      const std::optional<crypto::Nonce>& expected_nonce = std::nullopt,
      bool certify = true, std::int64_t now = 0,
      bool enforce_freshness = true);

  /// Retrieve a stored certificate by nonce (expression (3) RP2 path).
  [[nodiscard]] std::optional<Certificate> retrieve(
      const crypto::Nonce& n) const;

  /// UC4: the audit trail. Certificates issued in [from, to] (simulated
  /// time, inclusive), newest last.
  [[nodiscard]] std::vector<Certificate> certificates_between(
      std::int64_t from, std::int64_t to) const;

  /// UC4: failed attestations in the store — the documentation a
  /// court-order application would cite.
  [[nodiscard]] std::vector<Certificate> failed_certificates() const;

  [[nodiscard]] std::size_t stored_count() const { return cert_store_.size(); }

  [[nodiscard]] std::uint64_t appraisal_count() const {
    return appraisal_count_;
  }

  /// Replayed nonces rejected by freshness enforcement — duplicate
  /// out-of-band evidence is rejected exactly once per replay.
  [[nodiscard]] std::uint64_t replays_rejected() const {
    return replays_rejected_;
  }

 private:
  std::string name_;
  crypto::KeyStore* keys_;
  crypto::NonceRegistry nonces_;
  std::map<copland::ComponentId, crypto::Digest> goldens_;
  std::map<crypto::Digest, Certificate> cert_store_;
  std::optional<AppraisalPolicy> policy_;
  std::uint64_t appraisal_count_ = 0;
  std::uint64_t replays_rejected_ = 0;
};

/// Requests attestations and consumes results (Fig. 1 "Relying Party").
class RelyingParty {
 public:
  RelyingParty(std::string name, std::uint64_t seed)
      : name_(std::move(name)), nonces_(seed) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Issue a fresh challenge nonce.
  [[nodiscard]] crypto::Nonce challenge() { return nonces_.issue(); }

  /// Accept a certificate: the nonce must be one we issued and unused, and
  /// the signature must verify against the appraiser's key.
  [[nodiscard]] bool accept(const Certificate& cert,
                            const crypto::Verifier& appraiser_key);

  [[nodiscard]] std::size_t accepted_count() const { return accepted_; }

 private:
  std::string name_;
  crypto::NonceRegistry nonces_;
  std::size_t accepted_ = 0;
};

}  // namespace pera::ra
