// Endorsements — the RATS architecture's Reference Value Provider role.
//
// In a real deployment the appraiser does not conjure golden values: a
// vendor (or the operator's build pipeline) signs statements like
// "firewall v5 for PERA-1000 hashes to X". The appraiser verifies the
// endorser's signature before admitting the value into its golden set,
// closing the provisioning half of the §3 trust chain.
#pragma once

#include <string>

#include "crypto/signer.h"

namespace pera::ra {

/// A signed reference value: (place?, target, value) with provenance.
/// `place` may be empty for product-wide endorsements ("any PERA-1000
/// running firewall v5"); the appraiser pins them per place on install.
struct Endorsement {
  std::string endorser;     // vendor / build-pipeline identity
  std::string place;        // "" = applies to any place
  std::string target;       // "Program", "Hardware", ...
  std::string description;  // "firewall v5, build 2209"
  crypto::Digest value{};
  crypto::Signature sig;

  /// The digest the endorser signs.
  [[nodiscard]] crypto::Digest signing_payload() const;

  /// Create and sign an endorsement.
  [[nodiscard]] static Endorsement make(std::string endorser,
                                        std::string place, std::string target,
                                        std::string description,
                                        const crypto::Digest& value,
                                        crypto::Signer& signer);

  /// Verify the endorser's signature.
  [[nodiscard]] bool verify(const crypto::Verifier& v) const;

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static Endorsement deserialize(crypto::BytesView data);
};

}  // namespace pera::ra
