#include "ra/certificate.h"

#include <stdexcept>

namespace pera::ra {

crypto::Digest Certificate::signing_payload() const {
  crypto::Sha256 h;
  h.update("pera.ra.certificate.v1");
  h.update(appraiser);
  h.update(nonce.value);
  h.update(evidence_digest);
  const std::uint8_t v = verdict ? 1 : 0;
  h.update(crypto::BytesView{&v, 1});
  crypto::Bytes t;
  crypto::append_u64(t, static_cast<std::uint64_t>(issued_at));
  h.update(crypto::BytesView{t.data(), t.size()});
  return h.finish();
}

crypto::Bytes Certificate::serialize() const {
  crypto::Bytes out;
  crypto::append_u32(out, static_cast<std::uint32_t>(appraiser.size()));
  crypto::append(out, crypto::as_bytes(appraiser));
  crypto::append(out, nonce.value);
  crypto::append(out, evidence_digest);
  out.push_back(verdict ? 1 : 0);
  crypto::append_u64(out, static_cast<std::uint64_t>(issued_at));
  const crypto::Bytes sig_bytes = sig.serialize();
  crypto::append_u32(out, static_cast<std::uint32_t>(sig_bytes.size()));
  crypto::append(out, crypto::BytesView{sig_bytes.data(), sig_bytes.size()});
  return out;
}

Certificate Certificate::deserialize(crypto::BytesView data) {
  Certificate c;
  std::size_t off = 0;
  const std::uint32_t name_len = crypto::read_u32(data, off);
  off += 4;
  if (off + name_len > data.size()) {
    throw std::invalid_argument("Certificate::deserialize: truncated name");
  }
  c.appraiser.assign(reinterpret_cast<const char*>(data.data() + off),
                     name_len);
  off += name_len;
  if (off + 64 + 1 + 8 > data.size()) {
    throw std::invalid_argument("Certificate::deserialize: truncated body");
  }
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + 32),
            c.nonce.value.v.begin());
  off += 32;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + 32),
            c.evidence_digest.v.begin());
  off += 32;
  c.verdict = data[off++] != 0;
  c.issued_at = static_cast<std::int64_t>(crypto::read_u64(data, off));
  off += 8;
  const std::uint32_t sig_len = crypto::read_u32(data, off);
  off += 4;
  if (off + sig_len != data.size()) {
    throw std::invalid_argument("Certificate::deserialize: bad sig length");
  }
  c.sig = crypto::Signature::deserialize(data.subspan(off, sig_len));
  return c;
}

bool Certificate::verify(const crypto::Verifier& v) const {
  return v.verify(signing_payload(), sig);
}

}  // namespace pera::ra
