#include "ra/redaction.h"

namespace pera::ra {

using copland::Evidence;
using copland::EvidenceKind;
using copland::EvidencePtr;

std::string PseudonymTable::pseudonym(const std::string& user,
                                      const std::string& real) {
  crypto::Hmac h(crypto::BytesView{key_.v.data(), key_.v.size()});
  h.update(user);
  h.update(std::string_view{"\x00", 1});
  h.update(real);
  const std::string p = "pseu-" + h.finish().hex().substr(0, 12);
  reverse_[p] = real;
  return p;
}

std::optional<std::string> PseudonymTable::lift(
    const std::string& pseudonym) const {
  const auto it = reverse_.find(pseudonym);
  if (it == reverse_.end()) return std::nullopt;
  return it->second;
}

namespace {

EvidencePtr redact_rec(const EvidencePtr& e, const std::string& user,
                       PseudonymTable& table, const RedactionPolicy& policy) {
  if (!e) return e;
  const auto place_of = [&](const std::string& p) {
    return policy.pseudonymize_places && !p.empty() ? table.pseudonym(user, p)
                                                    : p;
  };
  const auto target_of = [&](const std::string& t) {
    return policy.pseudonymize_targets && !t.empty() ? table.pseudonym(user, t)
                                                     : t;
  };

  switch (e->kind) {
    case EvidenceKind::kEmpty:
    case EvidenceKind::kNonce:
      return e;
    case EvidenceKind::kMeasurement: {
      crypto::Digest value = e->value;
      if (policy.collapse_measurement_values) {
        crypto::Sha256 h;
        h.update("pera.redact.value");
        h.update(value);
        value = h.finish();
      }
      return Evidence::measurement(target_of(e->asp), place_of(e->place),
                                   target_of(e->target), value,
                                   policy.drop_claims ? "" : e->claim);
    }
    case EvidenceKind::kSignature:
      // Keep the signature bytes (they attest the original), but rename
      // the signer for the reader. Verifiability moves to the operator's
      // outer signature added by redact_and_resign.
      return Evidence::signature(place_of(e->place),
                                 redact_rec(e->child, user, table, policy),
                                 e->sig);
    case EvidenceKind::kHashed:
      return Evidence::hashed(place_of(e->place), e->hash_value);
    case EvidenceKind::kSeq:
      return Evidence::seq(redact_rec(e->left, user, table, policy),
                           redact_rec(e->right, user, table, policy));
    case EvidenceKind::kPar:
      return Evidence::par(redact_rec(e->left, user, table, policy),
                           redact_rec(e->right, user, table, policy));
    case EvidenceKind::kFuncOut:
      return Evidence::func_out(e->func, place_of(e->place),
                                redact_rec(e->child, user, table, policy),
                                e->output);
  }
  return e;
}

}  // namespace

EvidencePtr redact(const EvidencePtr& e, const std::string& user,
                   PseudonymTable& table, const RedactionPolicy& policy) {
  return redact_rec(e, user, table, policy);
}

EvidencePtr redact_and_resign(const EvidencePtr& e, const std::string& user,
                              PseudonymTable& table,
                              const RedactionPolicy& policy,
                              const std::string& operator_name,
                              crypto::Signer& operator_signer) {
  EvidencePtr redacted = redact(e, user, table, policy);
  crypto::Signature sig = operator_signer.sign(copland::digest(redacted));
  return Evidence::signature(operator_name, std::move(redacted),
                             std::move(sig));
}

}  // namespace pera::ra
