// Appraisal policies: what an appraiser demands beyond raw golden-value
// matching. Deployments pin allowed program versions per place, require
// specific targets to be present, insist on signatures and freshness
// windows — the operational knobs behind UC1's "unvetted or unwanted
// dataplane programs".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "copland/evidence.h"
#include "crypto/keystore.h"

namespace pera::ra {

/// Requirements for one attesting place.
struct PlaceRequirements {
  /// Targets that must appear as measurements from this place.
  std::vector<std::string> required_targets;
  /// Per-target allow-lists of acceptable digests (e.g. the two vetted
  /// firewall builds). Empty set = any value (presence only).
  std::map<std::string, std::set<crypto::Digest>> allowed_values;
  /// The place's evidence must be signed.
  bool require_signature = true;
};

struct PolicyFinding {
  std::string place;
  std::string detail;
};

struct PolicyVerdict {
  bool ok = true;
  std::vector<PolicyFinding> findings;

  void fail(std::string place, std::string detail) {
    ok = false;
    findings.push_back({std::move(place), std::move(detail)});
  }
};

/// Declarative appraisal policy over composite evidence.
class AppraisalPolicy {
 public:
  /// Require `target` from `place`; optionally restrict acceptable values.
  void require(const std::string& place, const std::string& target,
               std::vector<crypto::Digest> allowed = {});

  /// Allow an additional digest for an already-required target (e.g. a
  /// second vetted build).
  void also_allow(const std::string& place, const std::string& target,
                  const crypto::Digest& value);

  /// Drop the signature requirement for a place (e.g. legacy elements).
  void waive_signature(const std::string& place);

  /// Max age of the evidence relative to `now` (simulated time units);
  /// enforced only when evaluate() is given issued_at. 0 = no limit.
  void set_max_age(std::int64_t max_age) { max_age_ = max_age; }

  [[nodiscard]] std::size_t place_count() const { return places_.size(); }

  /// Evaluate evidence against the policy. Signature validity itself is
  /// the appraiser's job (copland::appraise); this layer checks coverage:
  /// every required (place, target) present, values allow-listed, signed
  /// places signed, evidence fresh.
  [[nodiscard]] PolicyVerdict evaluate(
      const copland::EvidencePtr& evidence,
      std::optional<std::int64_t> evidence_age = std::nullopt) const;

 private:
  std::map<std::string, PlaceRequirements> places_;
  std::int64_t max_age_ = 0;
};

}  // namespace pera::ra
