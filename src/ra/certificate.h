// Attestation Results (RATS terminology) issued by an appraiser after
// verifying evidence — the ➃ arrows of Fig. 1 and Fig. 2.
#pragma once

#include <string>

#include "crypto/nonce.h"
#include "crypto/signer.h"

namespace pera::ra {

/// A signed attestation result. The appraiser binds:
/// verdict + evidence digest + nonce + appraiser identity.
struct Certificate {
  std::string appraiser;
  crypto::Nonce nonce{};          // all-zero when no nonce was used
  crypto::Digest evidence_digest{};
  bool verdict = false;
  std::int64_t issued_at = 0;     // SimTime
  crypto::Signature sig;

  /// The digest the appraiser signs.
  [[nodiscard]] crypto::Digest signing_payload() const;

  [[nodiscard]] crypto::Bytes serialize() const;
  [[nodiscard]] static Certificate deserialize(crypto::BytesView data);

  /// Verify the appraiser's signature with its verifier.
  [[nodiscard]] bool verify(const crypto::Verifier& v) const;
};

}  // namespace pera::ra
