#include "ra/roles.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace pera::ra {

using copland::Evidence;

void Attester::add_claim_source(ClaimSource source) {
  sources_.push_back(std::move(source));
}

std::vector<std::string> Attester::targets() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& s : sources_) out.push_back(s.target);
  return out;
}

EvidencePtr Attester::attest(const std::vector<std::string>& targets,
                             const std::optional<crypto::Nonce>& nonce,
                             bool hash_before_sign) {
  ++attest_count_;
  EvidencePtr acc = Evidence::empty();
  if (nonce) acc = Evidence::extend(acc, Evidence::nonce_ev(*nonce));

  const auto measure_one = [&](const ClaimSource& s) {
    acc = Evidence::extend(
        acc, Evidence::measurement(name_, name_, s.target, s.measure(),
                                   s.claim_text));
  };

  if (targets.empty()) {
    for (const auto& s : sources_) measure_one(s);
  } else {
    for (const auto& t : targets) {
      const auto it = std::find_if(
          sources_.begin(), sources_.end(),
          [&](const ClaimSource& s) { return s.target == t; });
      if (it == sources_.end()) {
        throw std::invalid_argument("attester " + name_ +
                                    ": unknown claim target '" + t + "'");
      }
      measure_one(*it);
    }
  }

  if (hash_before_sign) {
    acc = Evidence::hashed(name_, copland::digest(acc));
  }
  crypto::Signature sig = signer_->sign(copland::digest(acc));
  PERA_OBS_COUNT("ra.attest.count");
  PERA_OBS_EVENT(obs::SpanKind::kSign, name_);
  return Evidence::signature(name_, acc, std::move(sig));
}

void Appraiser::set_golden(const std::string& place, const std::string& target,
                           const crypto::Digest& value) {
  goldens_[copland::ComponentId{place, target}] = value;
}

bool Appraiser::accept_endorsement(const Endorsement& endorsement,
                                   const std::string& pin_place) {
  const crypto::Verifier* v = keys_->verifier_for(endorsement.endorser);
  if (v == nullptr || !endorsement.verify(*v)) return false;
  const std::string& place =
      endorsement.place.empty() ? pin_place : endorsement.place;
  if (place.empty()) return false;  // nowhere to pin a product-wide value
  set_golden(place, endorsement.target, endorsement.value);
  return true;
}

AttestationResult Appraiser::appraise(
    const EvidencePtr& evidence,
    const std::optional<crypto::Nonce>& expected_nonce, bool certify,
    std::int64_t now, bool enforce_freshness) {
  ++appraisal_count_;
  obs::ScopedSpan span(obs::SpanKind::kAppraise, name_);
  AttestationResult result;
  result.detail =
      copland::appraise(evidence, goldens_, *keys_, expected_nonce);

  // Nonce replay detection: the same nonce may only be appraised once.
  if (enforce_freshness && expected_nonce && result.detail.ok) {
    if (!nonces_.observe(*expected_nonce)) {
      ++replays_rejected_;
      PERA_OBS_COUNT("ra.appraise.replay");
      result.detail.add({copland::AppraisalFinding::Kind::kStaleNonce, name_,
                         "nonce " + expected_nonce->value.short_hex() +
                             " already appraised"});
    }
  }

  // Declarative coverage policy: required targets / vetted versions.
  if (policy_) {
    const PolicyVerdict pv = policy_->evaluate(evidence);
    if (!pv.ok) {
      for (const auto& f : pv.findings) {
        result.detail.add({copland::AppraisalFinding::Kind::kBadMeasurement,
                           f.place, "policy: " + f.detail});
      }
    }
  }
  result.ok = result.detail.ok;
  span.set_value(result.ok ? 1 : 0);
  PERA_OBS_COUNT(result.ok ? "ra.appraise.ok" : "ra.appraise.fail");

  if (certify) {
    crypto::Signer* signer = keys_->signer_for(name_);
    if (signer != nullptr) {
      Certificate cert;
      cert.appraiser = name_;
      if (expected_nonce) cert.nonce = *expected_nonce;
      cert.evidence_digest = copland::digest(evidence);
      cert.verdict = result.ok;
      cert.issued_at = now;
      cert.sig = signer->sign(cert.signing_payload());
      cert_store_[cert.nonce.value] = cert;
      result.certificate = std::move(cert);
      PERA_OBS_COUNT("ra.certificates.issued");
    }
  }
  return result;
}

std::optional<Certificate> Appraiser::retrieve(const crypto::Nonce& n) const {
  const auto it = cert_store_.find(n.value);
  if (it == cert_store_.end()) return std::nullopt;
  return it->second;
}

std::vector<Certificate> Appraiser::certificates_between(
    std::int64_t from, std::int64_t to) const {
  std::vector<Certificate> out;
  for (const auto& [nonce, cert] : cert_store_) {
    if (cert.issued_at >= from && cert.issued_at <= to) out.push_back(cert);
  }
  std::sort(out.begin(), out.end(),
            [](const Certificate& a, const Certificate& b) {
              return a.issued_at < b.issued_at;
            });
  return out;
}

std::vector<Certificate> Appraiser::failed_certificates() const {
  std::vector<Certificate> out;
  for (const auto& [nonce, cert] : cert_store_) {
    if (!cert.verdict) out.push_back(cert);
  }
  return out;
}

bool RelyingParty::accept(const Certificate& cert,
                          const crypto::Verifier& appraiser_key) {
  PERA_OBS_EVENT(obs::SpanKind::kVerify, name_);
  if (!cert.verify(appraiser_key)) return false;
  const bool fresh_nonce = cert.nonce.value.is_zero()
                               ? true
                               : nonces_.issued(cert.nonce) &&
                                     nonces_.observe(cert.nonce);
  if (!fresh_nonce) return false;
  if (!cert.verdict) return false;
  ++accepted_;
  PERA_OBS_COUNT("ra.rp.accepted");
  return true;
}

}  // namespace pera::ra
