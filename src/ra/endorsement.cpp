#include "ra/endorsement.h"

#include <stdexcept>

namespace pera::ra {

crypto::Digest Endorsement::signing_payload() const {
  crypto::Sha256 h;
  h.update("pera.ra.endorsement.v1");
  h.update(endorser);
  h.update(std::string_view{"\x00", 1});
  h.update(place);
  h.update(std::string_view{"\x00", 1});
  h.update(target);
  h.update(std::string_view{"\x00", 1});
  h.update(description);
  h.update(value);
  return h.finish();
}

Endorsement Endorsement::make(std::string endorser, std::string place,
                              std::string target, std::string description,
                              const crypto::Digest& value,
                              crypto::Signer& signer) {
  Endorsement e;
  e.endorser = std::move(endorser);
  e.place = std::move(place);
  e.target = std::move(target);
  e.description = std::move(description);
  e.value = value;
  e.sig = signer.sign(e.signing_payload());
  return e;
}

bool Endorsement::verify(const crypto::Verifier& v) const {
  return v.verify(signing_payload(), sig);
}

namespace {
void put_str(crypto::Bytes& out, const std::string& s) {
  crypto::append_u32(out, static_cast<std::uint32_t>(s.size()));
  crypto::append(out, crypto::as_bytes(s));
}

std::string get_str(crypto::BytesView data, std::size_t& off) {
  const std::uint32_t len = crypto::read_u32(data, off);
  off += 4;
  if (off + len > data.size()) {
    throw std::invalid_argument("Endorsement: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data.data() + off), len);
  off += len;
  return s;
}
}  // namespace

crypto::Bytes Endorsement::serialize() const {
  crypto::Bytes out;
  put_str(out, endorser);
  put_str(out, place);
  put_str(out, target);
  put_str(out, description);
  crypto::append(out, value);
  const crypto::Bytes sig_bytes = sig.serialize();
  crypto::append_u32(out, static_cast<std::uint32_t>(sig_bytes.size()));
  crypto::append(out, crypto::BytesView{sig_bytes.data(), sig_bytes.size()});
  return out;
}

Endorsement Endorsement::deserialize(crypto::BytesView data) {
  Endorsement e;
  std::size_t off = 0;
  e.endorser = get_str(data, off);
  e.place = get_str(data, off);
  e.target = get_str(data, off);
  e.description = get_str(data, off);
  if (off + 32 > data.size()) {
    throw std::invalid_argument("Endorsement: truncated value");
  }
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + 32),
            e.value.v.begin());
  off += 32;
  const std::uint32_t sig_len = crypto::read_u32(data, off);
  off += 4;
  if (off + sig_len != data.size()) {
    throw std::invalid_argument("Endorsement: bad signature length");
  }
  e.sig = crypto::Signature::deserialize(data.subspan(off, sig_len));
  return e;
}

}  // namespace pera::ra
