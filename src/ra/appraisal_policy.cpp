#include "ra/appraisal_policy.h"

#include <algorithm>

namespace pera::ra {

using copland::Evidence;
using copland::EvidenceKind;
using copland::EvidencePtr;

void AppraisalPolicy::require(const std::string& place,
                              const std::string& target,
                              std::vector<crypto::Digest> allowed) {
  PlaceRequirements& req = places_[place];
  if (std::find(req.required_targets.begin(), req.required_targets.end(),
                target) == req.required_targets.end()) {
    req.required_targets.push_back(target);
  }
  for (const auto& d : allowed) req.allowed_values[target].insert(d);
}

void AppraisalPolicy::also_allow(const std::string& place,
                                 const std::string& target,
                                 const crypto::Digest& value) {
  places_[place].allowed_values[target].insert(value);
}

void AppraisalPolicy::waive_signature(const std::string& place) {
  places_[place].require_signature = false;
}

namespace {

struct Observations {
  // (place, target) -> observed values.
  std::map<std::pair<std::string, std::string>, std::vector<crypto::Digest>>
      measurements;
  std::set<std::string> signed_places;

  void collect(const EvidencePtr& e, bool under_signature,
               const std::string& signer) {
    if (!e) return;
    switch (e->kind) {
      case EvidenceKind::kMeasurement:
        measurements[{e->place, e->target}].push_back(e->value);
        if (under_signature) signed_places.insert(e->place);
        return;
      case EvidenceKind::kSignature:
        signed_places.insert(e->place);
        collect(e->child, true, e->place);
        return;
      default:
        collect(e->child, under_signature, signer);
        collect(e->left, under_signature, signer);
        collect(e->right, under_signature, signer);
        return;
    }
  }
};

}  // namespace

PolicyVerdict AppraisalPolicy::evaluate(
    const EvidencePtr& evidence,
    std::optional<std::int64_t> evidence_age) const {
  PolicyVerdict verdict;

  if (max_age_ > 0 && evidence_age && *evidence_age > max_age_) {
    verdict.fail("", "evidence is stale: age " +
                         std::to_string(*evidence_age) + " > max " +
                         std::to_string(max_age_));
  }

  Observations obs;
  obs.collect(evidence, false, "");

  for (const auto& [place, req] : places_) {
    for (const auto& target : req.required_targets) {
      const auto it = obs.measurements.find({place, target});
      if (it == obs.measurements.end()) {
        verdict.fail(place, "missing required measurement of " + target);
        continue;
      }
      const auto allowed_it = req.allowed_values.find(target);
      if (allowed_it != req.allowed_values.end() &&
          !allowed_it->second.empty()) {
        for (const auto& v : it->second) {
          if (!allowed_it->second.contains(v)) {
            verdict.fail(place, target + " has un-vetted value " +
                                    v.short_hex());
          }
        }
      }
    }
    if (req.require_signature && !obs.signed_places.contains(place)) {
      verdict.fail(place, "evidence from this place is not signed");
    }
  }
  return verdict;
}

}  // namespace pera::ra
