// Evidence redaction and pseudonymization.
//
// UC1's footnotes: switches get per-user pseudonyms instead of serial
// numbers, programs get pseudonyms liftable "by an auditor's request or
// court order". UC5's last application: path evidence is redacted before
// being handed to a compliance officer.
//
// Pseudonyms are HMAC(operator_key, user || real_name) so they are
// deterministic per (user, name), unlinkable across users, and reversible
// only by the operator (who keeps the mapping).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "copland/evidence.h"
#include "crypto/hmac.h"

namespace pera::ra {

class PseudonymTable {
 public:
  explicit PseudonymTable(crypto::Digest operator_key)
      : key_(operator_key) {}

  /// Pseudonym for `real` as seen by `user` ("pseu-" + 12 hex chars).
  [[nodiscard]] std::string pseudonym(const std::string& user,
                                      const std::string& real);

  /// Lift a pseudonym back to the real name (operator/auditor only).
  /// Returns nullopt for unknown pseudonyms.
  [[nodiscard]] std::optional<std::string> lift(
      const std::string& pseudonym) const;

  [[nodiscard]] std::size_t size() const { return reverse_.size(); }

 private:
  crypto::Digest key_;
  std::map<std::string, std::string> reverse_;  // pseudonym -> real
};

/// Options controlling what redact() removes or renames.
struct RedactionPolicy {
  bool pseudonymize_places = true;    // switch serial numbers (footnote 1)
  bool pseudonymize_targets = false;  // program names (footnote 2)
  bool drop_claims = false;           // strip human-readable claim text
  bool collapse_measurement_values = false;  // value -> hash(value), hiding
                                             // which exact program ran while
                                             // keeping linkability
};

/// Produce a redacted copy of evidence for `user`.
/// NOTE: signatures over redacted subtrees no longer verify against the
/// original content — the intended flow (UC5) is that the *operator*
/// re-signs redacted evidence, which redact_and_resign does.
[[nodiscard]] copland::EvidencePtr redact(const copland::EvidencePtr& e,
                                          const std::string& user,
                                          PseudonymTable& table,
                                          const RedactionPolicy& policy);

/// Redact, then wrap in a fresh operator signature vouching for the
/// faithful redaction (the "trusted redaction" of UC5).
[[nodiscard]] copland::EvidencePtr redact_and_resign(
    const copland::EvidencePtr& e, const std::string& user,
    PseudonymTable& table, const RedactionPolicy& policy,
    const std::string& operator_name, crypto::Signer& operator_signer);

}  // namespace pera::ra
