// UC4 — Evidence as documentation (both sub-cases).
//
// (A) A scanner policy (Table 1's AP2) fingerprints malware C2 traffic on
//     a PERA switch; the signed detections are stored at the appraiser as
//     an audit trail suitable for, e.g., a court-order application.
// (B) The takedown action itself is documented the same way, and the
//     stored evidence is redacted (pseudonymized) before being handed to
//     an external party — only the operator can lift the pseudonyms.
#include <cstdio>

#include "core/deployment.h"
#include "ra/redaction.h"

using namespace pera;

int main() {
  std::printf("== UC4: attestation evidence as an audit trail ==\n\n");
  core::Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();

  // The C2 fingerprint: flows to dport 31337 (the malware's beacon port).
  for (const char* name : {"s1", "s2"}) {
    dep.switch_node(name).pera().set_guard(
        "P", [](const dataplane::ParsedPacket& pkt) {
          return pkt.has("tcp") && pkt.get("tcp.dport") == 31337;
        });
  }

  // AP2, deployed over every hop.
  const nac::CompiledPolicy scanner_policy = nac::compile(std::string(
      "*scanner<P> : forall hop : @hop [P |> attest(Packet) -> !] *=> "
      "@Appraiser [appraise -> store]"));

  // (A) Mixed traffic: benign HTTPS plus the malware beacon.
  dataplane::PacketSpec https;
  https.dport = 443;
  const core::FlowReport benign =
      dep.send_flow("client", "server", scanner_policy, 20, true, 0, https);
  dataplane::PacketSpec beacon = https;
  beacon.dport = 31337;
  const core::FlowReport c2 =
      dep.send_flow("client", "server", scanner_policy, 5, true, 0, beacon);

  std::printf("benign packets scanned : %zu, detections: %llu\n",
              benign.packets_sent,
              static_cast<unsigned long long>(benign.attestations));
  std::printf("beacon packets scanned : %zu, detections: %llu "
              "(2 hops x 5 packets)\n\n",
              c2.packets_sent, static_cast<unsigned long long>(c2.attestations));

  // The appraiser's store now documents the findings.
  std::printf("audit records appraised and stored: %zu\n",
              c2.certificates);

  // (B) Document the takedown and redact for the external reviewer.
  auto& s1 = dep.switch_node("s1").pera();
  const crypto::Nonce takedown_nonce{crypto::sha256("court-order-2209")};
  const copland::EvidencePtr takedown = s1.attest_challenge(
      nac::EvidenceDetail::kProgram | nac::EvidenceDetail::kTables,
      takedown_nonce, /*hash_before_sign=*/false);
  std::printf("\ntakedown evidence (%zu B):\n%s",
              copland::wire_size(takedown),
              copland::describe(takedown).c_str());

  ra::PseudonymTable pseudonyms(crypto::sha256("operator secret"));
  crypto::Signer& op = dep.keys().provision_hmac("operator");
  ra::RedactionPolicy policy;
  policy.pseudonymize_places = true;
  policy.drop_claims = true;
  const copland::EvidencePtr redacted = ra::redact_and_resign(
      takedown, "regulator", pseudonyms, policy, "operator", op);

  std::printf("\nredacted copy for the regulator:\n%s",
              copland::describe(redacted).c_str());
  const auto* first = copland::measurements_of(redacted)[0];
  std::printf("\nthe operator can lift '%s' back to '%s' under court order\n",
              first->place.c_str(),
              pseudonyms.lift(first->place).value_or("?").c_str());

  const bool ok = benign.attestations == 0 && c2.attestations == 10 &&
                  pseudonyms.lift(first->place) == "s1";
  return ok ? 0 : 1;
}
