// UC2 + UC3 — Path evidence as an authentication factor and as an
// authorization tag.
//
// A user connecting from home without a password can present verified
// path evidence as a weak second factor (UC2). The same evidence drives
// authorization: while under DDoS, the server drops flows that cannot
// show they crossed the expected appliances in order (UC3, the FlowTags
// posture).
#include <cstdio>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "core/path_verifier.h"

using namespace pera;

namespace {

copland::EvidencePtr gather_path_evidence(core::Deployment& dep,
                                          const std::vector<std::string>& path,
                                          const crypto::Nonce& nonce) {
  copland::EvidencePtr acc = copland::Evidence::empty();
  for (const auto& hop : path) {
    auto& sw = dep.switch_node(hop).pera();
    acc = copland::Evidence::extend(
        acc, sw.attest_challenge(
                 nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram,
                 nonce, /*hash_before_sign=*/false));
  }
  return acc;
}

}  // namespace

int main() {
  std::printf("== UC2/UC3: path evidence for authentication and "
              "authorization ==\n\n");
  core::Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  const core::PathVerifier verifier(dep.appraiser().appraiser().goldens(),
                                    dep.keys());
  const std::vector<std::string> home_path = {"s1", "s2", "s3"};

  // --- UC2: the user forgot their password -------------------------------------
  std::printf("UC2: user connects from a new device, no password.\n");
  const crypto::Nonce n1{crypto::sha256("login attempt 81")};
  const copland::EvidencePtr evidence = gather_path_evidence(dep, home_path, n1);
  const core::PathVerdict verdict = verifier.verify(evidence);
  std::printf("  path attested as : ");
  for (const auto& p : verdict.places()) std::printf("%s ", p.c_str());
  std::printf("\n  signatures ok    : %s\n",
              verdict.all_signatures_ok ? "yes" : "no");
  std::printf("  programs match   : %s\n",
              verdict.all_measurements_ok ? "yes" : "no");
  const bool second_factor =
      core::PathVerifier::matches_expected_path(verdict, home_path);
  std::printf("  grant limited access (path == home path): %s\n\n",
              second_factor ? "yes" : "no");

  // An attacker connecting from elsewhere cannot produce this evidence:
  // a path missing s2 fails the exact-path check.
  const copland::EvidencePtr spoofed = gather_path_evidence(
      dep, {"s1", "s3"}, crypto::Nonce{crypto::sha256("login attempt 82")});
  const bool spoof_passes = core::PathVerifier::matches_expected_path(
      verifier.verify(spoofed), home_path);
  std::printf("  spoofed short path accepted: %s (expected: no)\n\n",
              spoof_passes ? "yes" : "no");

  // --- UC3: DDoS posture ---------------------------------------------------------
  std::printf("UC3: server under attack drops traffic without evidence of\n"
              "     crossing the firewall chain s1 -> s2 in order.\n");
  const bool legit_ok = core::PathVerifier::crosses_in_order(
      verdict, {"s1", "s2"});
  std::printf("  legitimate flow authorized : %s\n", legit_ok ? "yes" : "no");

  // A compromised hop invalidates its own appearance in the path tag.
  (void)adversary::program_swap_attack(dep, "s2");
  const copland::EvidencePtr tainted = gather_path_evidence(
      dep, home_path, crypto::Nonce{crypto::sha256("flow 99")});
  const core::PathVerdict tainted_verdict = verifier.verify(tainted);
  const bool tainted_ok = core::PathVerifier::crosses_in_order(
      tainted_verdict, {"s1", "s2"});
  std::printf("  flow via swapped s2 authorized: %s (expected: no)\n",
              tainted_ok ? "yes" : "no");

  const bool ok = second_factor && !spoof_passes && legit_ok && !tainted_ok;
  std::printf("\n%s\n", ok ? "path evidence gates both login and forwarding."
                           : "UNEXPECTED: scenario did not reproduce");
  return ok ? 0 : 1;
}
