// §5.1 motivation — "the forwarding path is typically chosen outside
// [the peers'] control, and the path might change without warning due to
// routing changes."
//
// This example deploys a wildcard path-attestation policy (Prim1/Prim2)
// over the ISP topology, verifies the Prim3 deployability condition (the
// appraiser is reachable from every attesting element), then fails the
// primary core link mid-flow: traffic reroutes, and the policy keeps
// attesting the *new* path with no reconfiguration — the point of
// abstracting over hops.
#include <cstdio>

#include "core/deployment.h"
#include "core/reachability.h"

using namespace pera;

namespace {

void show_flow(const char* phase, const core::FlowReport& rep) {
  std::printf("%-28s delivered=%zu/%zu attestations=%llu failures=%llu\n",
              phase, rep.packets_delivered, rep.packets_sent,
              static_cast<unsigned long long>(rep.attestations),
              static_cast<unsigned long long>(rep.appraisal_failures));
}

}  // namespace

int main() {
  std::printf("== path abstraction under routing changes ==\n\n");
  core::Deployment dep(netsim::topo::isp());
  dep.provision_goldens();

  const nac::CompiledPolicy policy = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Hardware -~- Program) -> !] *=> "
      "@Appraiser [appraise]"));

  // Prim3: is the policy deployable at all? (reachability over the NetKAT
  // encoding of the topology)
  const core::CollectorReachability reach =
      core::check_collector_reachable(dep.network().topology(), policy);
  std::printf("collector '%s' reachable from %zu/%zu attesting elements\n",
              reach.collector.c_str(), reach.reachable_from.size(),
              reach.reachable_from.size() + reach.unreachable_from.size());
  if (!reach.deployable()) {
    std::printf("policy not deployable, aborting\n");
    return 1;
  }

  const auto path_before = dep.network().topology().names(
      dep.network().topology().shortest_path("client", "pm_phone"));
  std::printf("\ncurrent path: ");
  for (const auto& n : path_before) std::printf("%s ", n.c_str());
  std::printf("\n");
  const core::FlowReport before =
      dep.send_flow("client", "pm_phone", policy, 8, /*in_band=*/true);
  show_flow("before the link failure:", before);

  // The primary core link dies. Nobody tells the relying party.
  dep.network().topology().set_link_state("core1", "core2", false);
  const auto path_after = dep.network().topology().names(
      dep.network().topology().shortest_path("client", "pm_phone"));
  std::printf("\ncore1-core2 failed; new path: ");
  for (const auto& n : path_after) std::printf("%s ", n.c_str());
  std::printf("\n");

  const core::FlowReport after =
      dep.send_flow("client", "pm_phone", policy, 8, /*in_band=*/true);
  show_flow("after rerouting:", after);

  const bool ok = before.appraisal_failures == 0 &&
                  after.appraisal_failures == 0 &&
                  after.packets_delivered == 8 && path_before != path_after;
  std::printf("\n%s\n",
              ok ? "the wildcard policy attested both paths unchanged."
                 : "UNEXPECTED: scenario did not reproduce");
  return ok ? 0 : 1;
}
