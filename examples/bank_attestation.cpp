// UC5 — Cross-referenced attestation: the bank example of §4.2 and AP1.
//
// Host-side Copland attestation (av measures bmon, bmon scans the browser
// extensions) is composed with network path attestation into one policy:
// Table 1's AP1. The example also replays the Ramsdell et al. repair
// attack to show why the sequential composition in expression (2) matters.
#include <cstdio>

#include "adversary/attacks.h"
#include "copland/analysis.h"
#include "copland/parser.h"
#include "copland/pretty.h"
#include "copland/semantics.h"
#include "copland/testbed.h"
#include "nac/binder.h"

using namespace pera;

namespace {

constexpr const char* kExpr1 =
    "*bank : @ks [av us bmon] -~- @us [bmon us exts]";
constexpr const char* kAP1 =
    "*bank<n, X> : forall hop, client : "
    "(@hop [Khop |> attest(n, X) -> !] -<+ @Appraiser [appraise -> store(n)]) "
    "*=> @client [Kclient |> @ks [av us bmon -> !] -<- @us [bmon us exts -> !]]";

struct ClientDevice {
  ClientDevice() : keys(2022), platform(keys), nonces(1114) {
    platform.install("ks", "av", "antivirus 9.1, kernel module");
    platform.install("us", "bmon", "browser monitor 4.2");
    platform.install("us", "exts", "adblock, password manager");
    platform.install_default_funcs(nonces);
    keys.provision_hmac("ks");
    keys.provision_hmac("us");
  }

  crypto::KeyStore keys;
  copland::TestbedPlatform platform;
  crypto::NonceRegistry nonces;
};

}  // namespace

int main() {
  std::printf("== UC5: the bank's cross-referenced attestation ==\n\n");

  // --- Part 1: why the naive policy is unsafe -------------------------------
  std::printf("expression (1): %s\n", kExpr1);
  const copland::Request naive = copland::parse_request(kExpr1);
  const auto vulns =
      copland::find_repair_vulnerabilities(naive.body, "bank", {"av"});
  std::printf("static trust analysis: %zu vulnerability(ies)\n",
              vulns.size());
  for (const auto& v : vulns) {
    std::printf("  - %s@%s: %s\n", v.component.c_str(), v.place.c_str(),
                v.detail.c_str());
  }

  // Execute the attack against (1): a compromised device evades detection.
  {
    ClientDevice dev;
    dev.platform.corrupt("us", "exts", "adblock + credential stealer");
    dev.platform.corrupt("us", "bmon", "browser monitor, trojaned");
    adversary::SlowAdversary adv(dev.platform, "us", "bmon");
    copland::Evaluator ev(dev.platform, &adv);
    const auto evidence = ev.eval(naive, copland::Evidence::empty());
    const auto verdict =
        copland::appraise(evidence, dev.platform.goldens(), dev.keys);
    std::printf("repair attack on (1): appraisal says %s "
                "(the bank is deceived)\n\n",
                verdict.ok ? "CLEAN" : "compromised");
  }

  // The fix: sequential composition, as in expression (2) / AP1's tail.
  {
    ClientDevice dev;
    dev.platform.corrupt("us", "exts", "adblock + credential stealer");
    dev.platform.corrupt("us", "bmon", "browser monitor, trojaned");
    adversary::SlowAdversary adv(dev.platform, "us", "bmon");
    copland::Evaluator ev(dev.platform, &adv);
    const copland::Request fixed = copland::parse_request(
        "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]");
    const auto evidence = ev.eval(fixed, copland::Evidence::empty());
    const auto verdict =
        copland::appraise(evidence, dev.platform.goldens(), dev.keys);
    std::printf("same attack on (2):   appraisal says %s\n\n",
                verdict.ok ? "CLEAN (!!)" : "COMPROMISED — detected");
  }

  // --- Part 2: AP1 — the same policy, path-aware ------------------------------
  std::printf("AP1: %s\n\n", kAP1);
  const copland::Request ap1 = copland::parse_request(kAP1);

  // The bank's traffic happens to cross s1 and s2 today; bind the policy
  // to that path (Prim1/Prim2 made concrete).
  ClientDevice dev;
  nac::PathBinding binding;
  binding.hops = {"s1", "s2"};
  binding.bindings = {{"client", "laptop"}};
  for (const auto& hop : binding.hops) {
    dev.platform.install(hop, "n", "nonce echo");
    dev.platform.install(hop, "X", "P4 program + tables on " + hop);
  }
  const copland::TermPtr bound = nac::bind_path(ap1.body, binding);
  std::printf("bound against path [s1 s2], client=laptop:\n  %s\n\n",
              copland::to_string(bound).c_str());

  copland::Evaluator ev(dev.platform);
  const auto evidence = ev.eval(bound, ap1.relying_party,
                                copland::Evidence::empty());
  const auto verdict =
      copland::appraise(evidence, dev.platform.goldens(), dev.keys);
  std::printf("composite host+path evidence: %zu measurements, "
              "%zu signatures, %zu B\n",
              copland::measurements_of(evidence).size(),
              copland::signatures_of(evidence).size(),
              copland::wire_size(evidence));
  std::printf("appraisal of the healthy device + path: %s\n",
              verdict.ok ? "CLEAN" : "compromised");

  return (vulns.size() == 1 && verdict.ok) ? 0 : 1;
}
