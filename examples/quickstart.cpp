// Quickstart: the Fig. 2 out-of-band attestation exchange on a small
// network — one relying party, one PERA switch, one appraiser.
//
//   $ ./quickstart
//
// Walks expression (3) end to end: RP1 challenges the switch with a fresh
// nonce, the switch attests its hardware + program, the appraiser checks
// the evidence against golden values, certifies, stores, and RP1 (and
// later RP2) receive the signed result.
#include <cstdio>

#include "core/deployment.h"

using namespace pera;

int main() {
  std::printf("== PERA quickstart: out-of-band attestation (Fig. 2) ==\n\n");

  // A 3-switch chain: client - s1 - s2 - s3 - server, appraiser off s1.
  core::Deployment dep(netsim::topo::chain(3));

  // Provision the appraiser with golden values for every switch's
  // hardware identity, program digest and table contents.
  dep.provision_goldens();
  std::printf("deployed %zu attesting elements: ",
              dep.attesting_elements().size());
  for (const auto& name : dep.attesting_elements()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  // RP1 (the client) challenges s2 to attest Hardware + Program.
  const core::ChallengeReport rep = dep.run_out_of_band(
      "client", "s2",
      nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram,
      /*rp2=*/"server");

  std::printf("challenge completed : %s\n", rep.completed ? "yes" : "no");
  std::printf("result accepted     : %s\n", rep.accepted ? "yes" : "no");
  std::printf("simulated RTT       : %.1f us\n", netsim::to_us(rep.rtt));
  std::printf("protocol messages   : %llu\n",
              static_cast<unsigned long long>(rep.messages));
  std::printf("bytes on the wire   : %llu\n\n",
              static_cast<unsigned long long>(rep.bytes_on_wire));

  // The same exchange fails the moment the program changes under the RP.
  dep.switch_node("s2").pera().load_program(dataplane::make_router("v2-dev"));
  const core::ChallengeReport drifted = dep.run_out_of_band(
      "client", "s2", nac::mask_of(nac::EvidenceDetail::kProgram));
  std::printf("after an unvetted program update on s2:\n");
  std::printf("result accepted     : %s (expected: no)\n",
              drifted.accepted ? "yes" : "no");

  return rep.accepted && !drifted.accepted ? 0 : 1;
}
