// The §5.2 configuration interface in action: for several workload and
// assurance profiles, print the recommended PERA configuration and the
// predicted per-packet overhead — Fig. 4's design space as a tool.
#include <cstdio>

#include "pera/tuning.h"

using namespace pera;
using ::pera::pera::AssuranceRequirements;
using ::pera::pera::ReattestCadence;
using ::pera::pera::recommend_cadence;
using ::pera::pera::recommend_config;
using ::pera::pera::TuningRecommendation;
using ::pera::pera::WorkloadProfile;

namespace {

void show(const char* scenario, const WorkloadProfile& w,
          const AssuranceRequirements& req) {
  const TuningRecommendation rec = recommend_config(w, req);
  std::printf("%-44s\n  %s\n", scenario, rec.rationale.c_str());

  // The same inertia axis read as time: how often the continuous control
  // plane (src/ctrl) should re-attest each level for this workload.
  const ReattestCadence c = recommend_cadence(w);
  std::printf(
      "  re-attestation cadence: hardware %.1fs, program %.1fs, "
      "tables %.3fs, prog-state %.3fs, packet %.3fs\n\n",
      static_cast<double>(c.hardware) / 1e9,
      static_cast<double>(c.program) / 1e9,
      static_cast<double>(c.tables) / 1e9,
      static_cast<double>(c.prog_state) / 1e9,
      static_cast<double>(c.packet) / 1e9);
}

}  // namespace

int main() {
  std::printf("== PERA tuning advisor (Fig. 4's axes as a tool) ==\n\n");

  {
    // A stable core router: nothing but the program identity matters and
    // it never changes — evidence caches essentially forever.
    WorkloadProfile w;
    w.packets_per_second = 5e6;
    w.table_updates_per_second = 0.001;
    AssuranceRequirements req;
    req.detail = nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram;
    req.max_overhead_ns = 200;
    show("stable core router, program-identity assurance:", w, req);
  }

  {
    // An edge firewall with constant control-plane churn: tables-level
    // evidence expires often; caching helps less.
    WorkloadProfile w;
    w.packets_per_second = 1e6;
    w.table_updates_per_second = 200;
    AssuranceRequirements req;
    req.detail = nac::EvidenceDetail::kProgram | nac::EvidenceDetail::kTables;
    req.max_overhead_ns = 500;
    show("edge firewall under control-plane churn:", w, req);
  }

  {
    // Forensic capture: per-packet evidence demanded. Only sampling can
    // make this affordable; see what the advisor picks.
    WorkloadProfile w;
    w.packets_per_second = 1e6;
    AssuranceRequirements req;
    req.detail = nac::mask_of(nac::EvidenceDetail::kPacket) |
                 nac::mask_of(nac::EvidenceDetail::kProgram);
    req.max_overhead_ns = 300;
    show("forensic per-packet evidence on a budget:", w, req);
  }

  {
    // A compliance regime that insists on literally every packet: the
    // advisor reports honestly when the budget cannot be met.
    WorkloadProfile w;
    w.packets_per_second = 1e6;
    AssuranceRequirements req;
    req.detail = nac::mask_of(nac::EvidenceDetail::kPacket);
    req.max_overhead_ns = 100;
    req.every_packet = true;
    show("every-packet mandate with a 100 ns budget:", w, req);
  }

  {
    // Stateful telemetry program: register writes on most packets make
    // ProgState evidence nearly uncacheable.
    WorkloadProfile w;
    w.packets_per_second = 1e6;
    w.register_writes_per_packet = 0.8;
    AssuranceRequirements req;
    req.detail = nac::mask_of(nac::EvidenceDetail::kProgState);
    req.max_overhead_ns = 400;
    show("stateful telemetry, program-state assurance:", w, req);
  }

  return 0;
}
