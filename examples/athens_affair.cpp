// UC1 — Configuration Assurance: the Athens Affair, replayed.
//
// An ISP-style network carries a government official's traffic. The
// attacker hot-swaps the core switch's router program for a rogue variant
// that forwards identically but covertly marks traffic to a target list.
// Without RA, nothing observable changes; with PERA attestation the swap
// is caught on the next appraisal.
#include <cstdio>

#include "adversary/attacks.h"
#include "core/deployment.h"

using namespace pera;

namespace {

void show(const char* phase, const core::ChallengeReport& rep) {
  std::printf("%-34s completed=%s accepted=%s\n", phase,
              rep.completed ? "yes" : "no ", rep.accepted ? "yes" : "no ");
}

}  // namespace

int main() {
  std::printf("== UC1: the Athens Affair on an ISP topology ==\n\n");
  core::Deployment dep(netsim::topo::isp());
  dep.provision_goldens();

  // Phase 1: routine traffic, routine attestation. All green.
  const auto baseline = dep.run_out_of_band(
      "client", "core2", nac::mask_of(nac::EvidenceDetail::kProgram));
  show("baseline attestation of core2:", baseline);

  // Phase 2: the intrusion. The rogue program claims the same name and
  // version; its forwarding of ordinary traffic is byte-identical.
  const adversary::SwapRecord swap =
      adversary::program_swap_attack(dep, "core2");
  std::printf("\nattacker swapped core2's program\n");
  std::printf("  honest digest : %s...\n", swap.before.short_hex().c_str());
  std::printf("  rogue digest  : %s...\n", swap.after.short_hex().c_str());

  dataplane::PacketSpec spec;
  spec.ip_dst = 0x0a000202;
  const core::FlowReport traffic =
      dep.send_plain_flow("client", "pm_phone", 50, spec);
  std::printf("  plain traffic still flows: %zu/%zu delivered "
              "(the real attack ran unnoticed for months)\n",
              traffic.packets_delivered, traffic.packets_sent);

  // Phase 3: detection. The measurement unit reads the true program
  // digest, the appraiser's golden value disagrees, the verdict flips.
  const auto compromised = dep.run_out_of_band(
      "client", "core2", nac::mask_of(nac::EvidenceDetail::kProgram));
  std::printf("\n");
  show("attestation under compromise:", compromised);

  // Phase 4: the operator reinstalls the vetted image and re-attests.
  adversary::program_restore(dep, "core2");
  const auto restored = dep.run_out_of_band(
      "client", "core2", nac::mask_of(nac::EvidenceDetail::kProgram));
  show("attestation after restore:", restored);

  const bool story_holds = baseline.accepted && !compromised.accepted &&
                           restored.accepted &&
                           traffic.packets_delivered == traffic.packets_sent;
  std::printf("\n%s\n", story_holds
                            ? "RA detected what traffic inspection cannot."
                            : "UNEXPECTED: story did not reproduce");
  return story_holds ? 0 : 1;
}
