// Backend equivalence tests for the SHA-256 engine: FIPS 180-4 / NIST
// CAVP known-answer vectors run against every compiled-in backend, a
// randomized scalar-vs-SIMD differential over message lengths and lane
// counts, WOTS round-trips pinned per backend, and the dispatcher's
// select()/override semantics. The whole point of runtime dispatch is
// that digests are byte-identical no matter which backend resolves —
// these tests are that contract.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_backend.h"
#include "crypto/wots.h"

namespace pera::crypto {
namespace {

// Restores whatever backend was active when the test started, so a
// failing test can't leak a forced backend into the rest of the binary.
class BackendGuard {
 public:
  BackendGuard() : saved_(engine::active().name) {}
  ~BackendGuard() { engine::select(saved_); }

 private:
  std::string saved_;
};

std::vector<std::string> backends() { return engine::available(); }

// --- FIPS 180-4 / CAVP known answers, per backend ---------------------------

struct Kat {
  const char* message;
  std::size_t repeat;  // message repeated this many times
  const char* digest;
};

// The two FIPS 180-4 examples, the empty string, and two one-shot CAVP
// byte-oriented vectors (0xbd and 0xc98c8e55 require binary input, so
// they get their own test below).
constexpr Kat kKats[] = {
    {"", 1, "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc", 1,
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq", 1,
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
     "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
     1, "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
    {"a", 1000000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
};

TEST(Sha256Backends, FipsKnownAnswersPerBackend) {
  BackendGuard guard;
  for (const std::string& name : backends()) {
    ASSERT_TRUE(engine::select(name)) << name;
    for (const Kat& kat : kKats) {
      Sha256 h;
      for (std::size_t r = 0; r < kat.repeat; ++r) h.update(kat.message);
      EXPECT_EQ(to_hex(BytesView{h.finish().v.data(), 32}), kat.digest)
          << "backend=" << name << " msg=" << kat.message;
    }
  }
}

TEST(Sha256Backends, CavpBinaryVectorsPerBackend) {
  BackendGuard guard;
  const Bytes one_byte = {0xbd};
  const Bytes four_bytes = {0xc9, 0x8c, 0x8e, 0x55};
  for (const std::string& name : backends()) {
    ASSERT_TRUE(engine::select(name)) << name;
    EXPECT_EQ(to_hex(BytesView{
                  sha256(BytesView{one_byte.data(), one_byte.size()}).v.data(),
                  32}),
              "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b")
        << "backend=" << name;
    EXPECT_EQ(
        to_hex(BytesView{
            sha256(BytesView{four_bytes.data(), four_bytes.size()}).v.data(),
            32}),
        "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504")
        << "backend=" << name;
  }
}

// --- randomized differential: every backend vs scalar -----------------------

TEST(Sha256Backends, RandomizedDifferentialVsScalar) {
  BackendGuard guard;
  std::mt19937_64 rng(0x5eed5eedULL);
  for (std::size_t len = 0; len <= 256; ++len) {
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());

    ASSERT_TRUE(engine::select("scalar"));
    const Digest ref = sha256(BytesView{msg.data(), msg.size()});

    for (const std::string& name : backends()) {
      if (name == "scalar") continue;
      ASSERT_TRUE(engine::select(name));
      EXPECT_EQ(sha256(BytesView{msg.data(), msg.size()}), ref)
          << "backend=" << name << " len=" << len;
    }
  }
}

TEST(Sha256Backends, CompressMultiMatchesScalarForEveryLaneCount) {
  BackendGuard guard;
  std::mt19937_64 rng(0xfeedULL);
  for (std::size_t lanes = 1; lanes <= engine::kMaxLanes; ++lanes) {
    alignas(32) std::uint8_t blocks[engine::kMaxLanes][64];
    for (std::size_t j = 0; j < lanes; ++j) {
      for (auto& b : blocks[j]) b = static_cast<std::uint8_t>(rng());
    }

    ASSERT_TRUE(engine::select("scalar"));
    std::vector<Digest> ref(lanes);
    sha256_block_multi(blocks, ref.data(), lanes);

    for (const std::string& name : backends()) {
      ASSERT_TRUE(engine::select(name));
      std::vector<Digest> got(lanes);
      sha256_block_multi(blocks, got.data(), lanes);
      for (std::size_t j = 0; j < lanes; ++j) {
        EXPECT_EQ(got[j], ref[j]) << "backend=" << name << " lanes=" << lanes
                                  << " lane=" << j;
      }
    }
  }
}

// --- higher-level primitives are backend-invariant --------------------------

TEST(Sha256Backends, WotsSignVerifyRoundTripPerBackend) {
  BackendGuard guard;
  const Digest seed = sha256("backend-test-seed");
  const Digest msg = sha256("backend-test-message");

  ASSERT_TRUE(engine::select("scalar"));
  const auto sk = wots::keygen_secret(seed, 42);
  const auto pk = wots::derive_public(sk);
  const auto ref_sig = wots::sign(sk, msg);

  for (const std::string& name : backends()) {
    ASSERT_TRUE(engine::select(name)) << name;
    // Key material, signature bytes and the verification result must all
    // be identical to the scalar reference.
    const auto sk2 = wots::keygen_secret(seed, 42);
    EXPECT_EQ(sk2.chains, sk.chains) << "backend=" << name;
    EXPECT_EQ(wots::derive_public(sk2), pk) << "backend=" << name;
    const auto sig = wots::sign(sk2, msg);
    EXPECT_EQ(sig.serialize(), ref_sig.serialize()) << "backend=" << name;
    EXPECT_TRUE(wots::verify(pk, msg, sig)) << "backend=" << name;
    Digest tampered = msg;
    tampered.v[0] ^= 1;
    EXPECT_FALSE(wots::verify(pk, tampered, sig)) << "backend=" << name;
  }
}

TEST(Sha256Backends, DeriveKeysIdenticalAcrossBackends) {
  BackendGuard guard;
  const Digest root = sha256("derive-root");
  const BytesView root_view{root.v.data(), root.v.size()};

  ASSERT_TRUE(engine::select("scalar"));
  const auto ref = derive_keys(root_view, "pera.wots.chain", 67);
  // The batched fast path only fires for labels that fit one padded
  // block; a long label must fall back and still agree.
  const std::string long_label(80, 'x');
  const auto ref_long = derive_keys(root_view, long_label, 5);

  for (const std::string& name : backends()) {
    ASSERT_TRUE(engine::select(name)) << name;
    EXPECT_EQ(derive_keys(root_view, "pera.wots.chain", 67), ref)
        << "backend=" << name;
    EXPECT_EQ(derive_keys(root_view, long_label, 5), ref_long)
        << "backend=" << name;
  }
}

TEST(Sha256Backends, MerkleRootIdenticalAcrossBackends) {
  BackendGuard guard;
  for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 33u}) {
    std::vector<Digest> leaves;
    for (std::size_t i = 0; i < n; ++i) {
      leaves.push_back(sha256("leaf" + std::to_string(i)));
    }
    ASSERT_TRUE(engine::select("scalar"));
    const Digest ref = MerkleTree(leaves).root();
    for (const std::string& name : backends()) {
      ASSERT_TRUE(engine::select(name));
      EXPECT_EQ(MerkleTree(leaves).root(), ref)
          << "backend=" << name << " n=" << n;
    }
  }
}

// --- dispatcher semantics ----------------------------------------------------

TEST(Sha256Backends, SelectSemantics) {
  BackendGuard guard;
  // scalar and auto always resolve.
  EXPECT_TRUE(engine::select("scalar"));
  EXPECT_STREQ(engine::active().name, "scalar");
  EXPECT_TRUE(engine::select("auto"));
  // Unknown names are rejected and leave the active backend unchanged.
  const std::string before = engine::active().name;
  EXPECT_FALSE(engine::select("no-such-backend"));
  EXPECT_EQ(engine::active().name, before);
  // Every advertised backend is selectable and reports its own name.
  for (const std::string& name : backends()) {
    EXPECT_TRUE(engine::select(name));
    EXPECT_EQ(engine::active().name, name);
  }
}

TEST(Sha256Backends, AvailableAlwaysIncludesScalar) {
  const auto names = backends();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  // Advertised SIMD backends must match what the CPU supports.
  for (const std::string& name : names) {
    if (name == "shani") {
      EXPECT_TRUE(engine::cpu_has_shani());
    }
    if (name == "avx2") {
      EXPECT_TRUE(engine::cpu_has_avx2());
    }
  }
}

TEST(Sha256Backends, MultiLaneBackendsAdvertiseLanes) {
  BackendGuard guard;
  for (const std::string& name : backends()) {
    ASSERT_TRUE(engine::select(name));
    EXPECT_GE(engine::active().lanes, 1u);
    EXPECT_LE(engine::active().lanes, engine::kMaxLanes);
    if (name == "avx2") {
      EXPECT_EQ(engine::active().lanes, 8u);
    }
  }
}

}  // namespace
}  // namespace pera::crypto
