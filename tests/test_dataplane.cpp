// Tests for the PISA software switch: header packing, the programmable
// parser, match kinds, actions, registers, program digests and the canned
// programs — including the UC1 "stealth" property: the rogue router
// behaves identically on non-target traffic but has a different digest.
#include <gtest/gtest.h>

#include "dataplane/builder.h"

namespace pera::dataplane {
namespace {

// ParsedPacket borrows HeaderSpec pointers from the program that parsed it
// (see dataplane/packet.h), so packets stored in a local must not come from
// a temporary ParserProgram. Parse through this long-lived instance instead.
const ParserProgram& std_parser() {
  static const ParserProgram p = standard_parser();
  return p;
}

// --- header packing ---------------------------------------------------------

class PackRoundTrip
    : public ::testing::TestWithParam<std::vector<std::uint64_t>> {};

TEST_P(PackRoundTrip, Ipv4Identity) {
  const HeaderSpec spec = stdhdr::ipv4();
  const auto values = GetParam();
  const Bytes packed = pack_header(spec, values);
  EXPECT_EQ(packed.size(), spec.byte_width());
  EXPECT_EQ(unpack_header(spec, BytesView{packed.data(), packed.size()}),
            values);
}

INSTANTIATE_TEST_SUITE_P(
    Values, PackRoundTrip,
    ::testing::Values(
        std::vector<std::uint64_t>{0x45, 0, 100, 64, 6, 0, 0x0a000001,
                                   0x0a000002},
        std::vector<std::uint64_t>{0xff, 0xff, 0xffff, 0xff, 0xff, 0xffff,
                                   0xffffffff, 0xffffffff},
        std::vector<std::uint64_t>{0, 0, 0, 0, 0, 0, 0, 0},
        std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));

TEST(Pack, EthernetRoundTrip) {
  const HeaderSpec eth = stdhdr::ethernet();
  const std::vector<std::uint64_t> v = {0x112233445566, 0xaabbccddeeff,
                                        0x0800};
  const Bytes packed = pack_header(eth, v);
  EXPECT_EQ(packed.size(), 14u);
  EXPECT_EQ(unpack_header(eth, BytesView{packed.data(), packed.size()}), v);
}

TEST(Pack, ValueCountMismatchThrows) {
  EXPECT_THROW((void)pack_header(stdhdr::tcp(), {1, 2}),
               std::invalid_argument);
}

TEST(Pack, ShortBufferThrows) {
  const Bytes b(3, 0);
  EXPECT_THROW((void)unpack_header(stdhdr::tcp(), BytesView{b.data(), b.size()}),
               std::invalid_argument);
}

TEST(FieldRef, ParseAndReject) {
  const FieldRef r = parse_field_ref("ipv4.dst");
  EXPECT_EQ(r.header, "ipv4");
  EXPECT_EQ(r.field, "dst");
  EXPECT_THROW((void)parse_field_ref("nodot"), std::invalid_argument);
  EXPECT_THROW((void)parse_field_ref(".x"), std::invalid_argument);
  EXPECT_THROW((void)parse_field_ref("x."), std::invalid_argument);
}

// --- parser -------------------------------------------------------------------

TEST(Parser, ParsesEthIpv4Tcp) {
  const ParserProgram p = standard_parser();
  const RawPacket raw = make_tcp_packet({});
  const ParsedPacket pkt = p.parse(raw);
  EXPECT_TRUE(pkt.has("eth"));
  EXPECT_TRUE(pkt.has("ipv4"));
  EXPECT_TRUE(pkt.has("tcp"));
  EXPECT_EQ(pkt.get("ipv4.dst"), 0x0a000202u);
  EXPECT_EQ(pkt.get("tcp.dport"), 443u);
  EXPECT_EQ(pkt.payload.size(), 64u);
}

TEST(Parser, NonIpStopsAfterEth) {
  const ParserProgram p = standard_parser();
  const HeaderSpec eth = stdhdr::ethernet();
  RawPacket raw;
  raw.data = pack_header(eth, {1, 2, 0x0806});  // ARP
  raw.data.resize(raw.data.size() + 28, 0);
  const ParsedPacket pkt = p.parse(raw);
  EXPECT_TRUE(pkt.has("eth"));
  EXPECT_FALSE(pkt.has("ipv4"));
  EXPECT_EQ(pkt.payload.size(), 28u);
}

TEST(Parser, TruncatedPacketThrows) {
  const ParserProgram p = standard_parser();
  RawPacket raw;
  raw.data = {1, 2, 3};
  EXPECT_THROW((void)p.parse(raw), std::invalid_argument);
}

TEST(Parser, DeparseRoundTrips) {
  const ParserProgram p = standard_parser();
  const RawPacket raw = make_tcp_packet({});
  const ParsedPacket pkt = p.parse(raw);
  EXPECT_EQ(pkt.deparse(), raw.data);
}

TEST(Parser, EncodeIsStable) {
  EXPECT_EQ(standard_parser().encode(), standard_parser().encode());
}

// --- tables ------------------------------------------------------------------

TEST(Table, ExactMatch) {
  Table t("t", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  TableEntry e;
  e.keys = {KeyMatch::exact(443)};
  e.action = "hit";
  t.add_entry(e);
  const ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  TableEntry* hit = t.lookup(pkt);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, "hit");
  EXPECT_EQ(hit->hit_count, 1u);
}

TEST(Table, ExactMiss) {
  Table t("t", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  TableEntry e;
  e.keys = {KeyMatch::exact(80)};
  e.action = "hit";
  t.add_entry(e);
  const ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  EXPECT_EQ(t.lookup(pkt), nullptr);
}

TEST(Table, LpmPrefersLongestPrefix) {
  Table t("t", {KeySpec{{"ipv4", "dst"}, MatchKind::kLpm, 32}});
  TableEntry wide;
  wide.keys = {KeyMatch::lpm(0x0a000000, 8)};
  wide.action = "wide";
  t.add_entry(wide);
  TableEntry narrow;
  narrow.keys = {KeyMatch::lpm(0x0a000000, 24)};
  narrow.action = "narrow";
  t.add_entry(narrow);
  PacketSpec spec;
  spec.ip_dst = 0x0a000042;
  const ParsedPacket pkt = std_parser().parse(make_tcp_packet(spec));
  TableEntry* hit = t.lookup(pkt);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, "narrow");
}

TEST(Table, LpmRespectsFieldWidth) {
  Table t("t", {KeySpec{{"ipv4", "dst"}, MatchKind::kLpm, 32}});
  TableEntry e;
  e.keys = {KeyMatch::lpm(0x0a000100, 24)};  // 10.0.1.0/24
  e.action = "hit";
  t.add_entry(e);
  PacketSpec in_subnet;
  in_subnet.ip_dst = 0x0a0001fe;
  PacketSpec out_subnet;
  out_subnet.ip_dst = 0x0a0002fe;
  EXPECT_NE(t.lookup(std_parser().parse(make_tcp_packet(in_subnet))),
            nullptr);
  EXPECT_EQ(t.lookup(std_parser().parse(make_tcp_packet(out_subnet))),
            nullptr);
}

TEST(Table, TernaryAndPriority) {
  Table t("t", {KeySpec{{"tcp", "dport"}, MatchKind::kTernary}});
  TableEntry any;
  any.keys = {KeyMatch::wildcard()};
  any.priority = 1;
  any.action = "any";
  t.add_entry(any);
  TableEntry https;
  https.keys = {KeyMatch::ternary(443, 0xffff)};
  https.priority = 10;
  https.action = "https";
  t.add_entry(https);
  const ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  EXPECT_EQ(t.lookup(pkt)->action, "https");
  PacketSpec other;
  other.dport = 8080;
  EXPECT_EQ(t.lookup(std_parser().parse(make_tcp_packet(other)))->action,
            "any");
}

TEST(Table, MetadataKeys) {
  Table t("t", {KeySpec{{"meta", "ingress_port"}, MatchKind::kExact}});
  TableEntry e;
  e.keys = {KeyMatch::exact(4)};
  e.action = "hit";
  t.add_entry(e);
  PacketSpec spec;
  spec.ingress_port = 4;
  EXPECT_NE(t.lookup(std_parser().parse(make_tcp_packet(spec))), nullptr);
  spec.ingress_port = 5;
  EXPECT_EQ(t.lookup(std_parser().parse(make_tcp_packet(spec))), nullptr);
}

TEST(Table, MissingHeaderNeverMatches) {
  Table t("t", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  TableEntry e;
  e.keys = {KeyMatch::exact(443)};
  e.action = "hit";
  t.add_entry(e);
  const HeaderSpec eth = stdhdr::ethernet();
  RawPacket raw;
  raw.data = pack_header(eth, {1, 2, 0x0806});
  const ParsedPacket pkt = std_parser().parse(raw);
  EXPECT_EQ(t.lookup(pkt), nullptr);
}

TEST(Table, EntryKeyCountValidated) {
  Table t("t", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  TableEntry e;
  e.keys = {KeyMatch::exact(1), KeyMatch::exact(2)};
  EXPECT_THROW((void)t.add_entry(e), std::invalid_argument);
}

TEST(Table, ContentDigestTracksEntries) {
  Table t("t", {KeySpec{{"tcp", "dport"}, MatchKind::kExact}});
  const crypto::Digest d0 = t.content_digest();
  TableEntry e;
  e.keys = {KeyMatch::exact(443)};
  e.action = "hit";
  t.add_entry(e);
  const crypto::Digest d1 = t.content_digest();
  EXPECT_NE(d0, d1);
  EXPECT_EQ(t.content_digest(), d1);  // stable
}

// --- actions / registers --------------------------------------------------------

TEST(Action, ForwardSetsEgress) {
  ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  stdaction::forward().execute(pkt, {7}, nullptr);
  EXPECT_EQ(pkt.meta.egress_port, 7u);
}

TEST(Action, DropSetsFlag) {
  ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  stdaction::drop().execute(pkt, {}, nullptr);
  EXPECT_TRUE(pkt.meta.drop);
}

TEST(Action, SetFieldMasksToWidth) {
  ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  stdaction::set_field("ipv4.ttl").execute(pkt, {0x1ff}, nullptr);
  EXPECT_EQ(pkt.get("ipv4.ttl"), 0xffu);  // 8-bit field
}

TEST(Action, MissingParamThrows) {
  ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  EXPECT_THROW(stdaction::forward().execute(pkt, {}, nullptr),
               std::runtime_error);
}

TEST(Action, RegisterOpsNeedRegisterFile) {
  ActionDef a;
  a.name = "regop";
  Op op;
  op.kind = OpKind::kRegWrite;
  op.reg = "r";
  op.a = Operand::imm(0);
  op.b = Operand::imm(5);
  a.ops.push_back(op);
  ParsedPacket pkt = std_parser().parse(make_tcp_packet({}));
  EXPECT_THROW(a.execute(pkt, {}, nullptr), std::runtime_error);
  RegisterFile regs;
  regs.declare("r", 4);
  a.execute(pkt, {}, &regs);
  EXPECT_EQ(regs.read("r", 0), 5u);
}

TEST(Registers, BoundsChecked) {
  RegisterFile regs;
  regs.declare("r", 2);
  EXPECT_THROW((void)regs.read("r", 2), std::out_of_range);
  EXPECT_THROW(regs.write("missing", 0, 1), std::out_of_range);
  EXPECT_EQ(regs.size("r"), 2u);
}

TEST(Registers, StateDigestTracksWrites) {
  RegisterFile regs;
  regs.declare("r", 4);
  const crypto::Digest d0 = regs.state_digest();
  regs.write("r", 1, 42);
  EXPECT_NE(regs.state_digest(), d0);
  EXPECT_EQ(regs.write_count(), 1u);
}

// --- programs and the switch --------------------------------------------------

TEST(Program, DigestStableAndVersionSensitive) {
  EXPECT_EQ(make_router("v1")->program_digest(),
            make_router("v1")->program_digest());
  EXPECT_NE(make_router("v1")->program_digest(),
            make_router("v2")->program_digest());
  EXPECT_NE(make_router("v1")->program_digest(),
            make_firewall("v1")->program_digest());
}

TEST(Program, TableEntriesAffectTablesDigestOnly) {
  auto p1 = make_router();
  auto p2 = make_router();
  TableEntry e;
  e.keys = {KeyMatch::lpm(0xC0A80000, 16)};
  e.action = "forward";
  e.action_params = {3};
  p2->table("route")->add_entry(e);
  EXPECT_EQ(p1->program_digest(), p2->program_digest());
  EXPECT_NE(p1->tables_digest(), p2->tables_digest());
}

TEST(Switch, RouterForwardsBySubnet) {
  PisaSwitch sw(make_router());
  PacketSpec spec;
  spec.ip_dst = 0x0a000305;  // 10.0.3.5 -> port 3
  const auto out = sw.process(make_tcp_packet(spec));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->port, 3u);
  EXPECT_EQ(sw.stats().packets_out, 1u);
}

TEST(Switch, RouterDropsUnknownSubnet) {
  PisaSwitch sw(make_router());
  PacketSpec spec;
  spec.ip_dst = 0xC0A80001;  // 192.168.0.1: no route
  EXPECT_FALSE(sw.process(make_tcp_packet(spec)).has_value());
  EXPECT_EQ(sw.stats().packets_dropped, 1u);
}

TEST(Switch, FirewallBlocksDisallowedPort) {
  PisaSwitch sw(make_firewall());
  PacketSpec ok;
  ok.ip_dst = 0x0a000203;
  ok.dport = 443;
  EXPECT_TRUE(sw.process(make_tcp_packet(ok)).has_value());
  PacketSpec bad = ok;
  bad.dport = 9999;
  bad.ip_src = 0xC0A80001;  // external source
  EXPECT_FALSE(sw.process(make_tcp_packet(bad)).has_value());
}

TEST(Switch, AclDropsDenyListedPorts) {
  PisaSwitch sw(make_acl());
  PacketSpec bad;
  bad.ip_dst = 0x0a000203;
  bad.dport = 6667;  // IRC: deny-listed
  EXPECT_FALSE(sw.process(make_tcp_packet(bad)).has_value());
  PacketSpec ok = bad;
  ok.dport = 443;
  EXPECT_TRUE(sw.process(make_tcp_packet(ok)).has_value());
}

TEST(Switch, ParseErrorCounted) {
  PisaSwitch sw(make_router());
  RawPacket junk;
  junk.data = {1, 2, 3};
  EXPECT_FALSE(sw.process(junk).has_value());
  EXPECT_EQ(sw.stats().parse_errors, 1u);
}

TEST(Switch, LoadProgramRedeclaresRegisters) {
  PisaSwitch sw(make_monitor());
  EXPECT_TRUE(sw.registers().has("port_counts"));
  sw.load_program(make_router());
  EXPECT_FALSE(sw.registers().has("port_counts"));
}

// The UC1 stealth property: the rogue router forwards non-target traffic
// exactly like the honest router (the Athens attack went unnoticed), yet
// its program digest differs — which is precisely what RA detects.
TEST(RogueRouter, StealthOnNonTargetTraffic) {
  PisaSwitch honest(make_router("v1"));
  PisaSwitch rogue(make_rogue_router("v1"));
  for (std::uint64_t dst : {0x0a000101ULL, 0x0a000202ULL, 0x0a000404ULL}) {
    PacketSpec spec;
    spec.ip_dst = static_cast<std::uint32_t>(dst);
    const auto a = honest.process(make_tcp_packet(spec));
    const auto b = rogue.process(make_tcp_packet(spec));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->port, b->port);
    EXPECT_EQ(a->data, b->data);
  }
}

TEST(RogueRouter, MarksTargetTraffic) {
  PisaSwitch rogue(make_rogue_router("v1"));
  PacketSpec spec;
  spec.ip_dst = 0x0a000105;  // on the target list
  const RawPacket raw = make_tcp_packet(spec);
  ParsedPacket pkt = rogue.parse(raw);
  rogue.run_pipeline(pkt);
  EXPECT_EQ(pkt.meta.user1, 1u);  // intercept mark
}

TEST(RogueRouter, DigestBetraysTheSwap) {
  EXPECT_NE(make_router("v1")->program_digest(),
            make_rogue_router("v1")->program_digest());
  // Even claiming the same name+version does not help the attacker.
  EXPECT_EQ(make_rogue_router("v1")->name(), make_router("v1")->name());
  EXPECT_EQ(make_rogue_router("v1")->version(), make_router("v1")->version());
}

TEST(Monitor, CountsViaRegisters) {
  PisaSwitch sw(make_monitor());
  PacketSpec spec;
  spec.dport = 443;
  (void)sw.process(make_tcp_packet(spec));
  EXPECT_GT(sw.registers().write_count(), 0u);
}

}  // namespace
}  // namespace pera::dataplane
