// Tests for the sharded multi-worker PERA pipeline: SPSC ring semantics,
// flow hashing, the seqlock epoch block, shard-count-invariant evidence
// verdicts, queue overflow/backpressure, and the epoch-invalidation race
// (the threaded tests are the TSan targets wired into scripts/check.sh).
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "obs/profiler.h"
#include "pipeline/pipeline.h"
#include "pipeline/reassembler.h"

namespace pera::pipeline {
namespace {

using dataplane::make_router;
using dataplane::make_tcp_packet;
using dataplane::PacketSpec;

crypto::Digest root_key() { return crypto::sha256("pipeline-root-key"); }

ProgramFactory router_factory() {
  return [] { return make_router(); };
}

nac::PolicyHeader make_policy_header(bool out_of_band, bool sign = true) {
  nac::HopInstruction inst;
  inst.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  inst.sign_evidence = sign;
  inst.wildcard = true;
  inst.out_of_band = out_of_band;
  nac::CompiledPolicy pol;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  // sampling_log2 stays 0: per-shard sampler counters would otherwise make
  // attest/skip decisions depend on the shard count.
  return nac::make_header(pol, crypto::Nonce{crypto::sha256("n")}, true);
}

/// A packet stream spread over `flows` distinct 5-tuples, round-robin.
std::vector<dataplane::RawPacket> make_stream(std::size_t packets,
                                              std::size_t flows) {
  std::vector<dataplane::RawPacket> out;
  out.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    PacketSpec spec;
    spec.sport = static_cast<std::uint16_t>(40000 + i % flows);
    spec.ip_src = 0x0a000100 + static_cast<std::uint32_t>(i % flows);
    out.push_back(make_tcp_packet(spec));
  }
  return out;
}

/// Run a full pipeline pass over `stream` and return the appraiser summary.
struct RunResult {
  crypto::Digest summary;
  std::map<std::uint64_t, FlowVerdict> verdicts;
  PipelineReport report;
  std::vector<EvidenceItem> evidence;
};

RunResult run_pipeline(std::size_t shards,
                       const std::vector<dataplane::RawPacket>& stream,
                       const nac::PolicyHeader& hdr,
                       ::pera::pera::PeraConfig pera_cfg = {},
                       nac::CompositionMode mode =
                           nac::CompositionMode::kChained) {
  PipelineOptions opt;
  opt.shards = shards;
  opt.pera = pera_cfg;
  opt.drop_on_full = false;  // lossless: determinism tests need every packet
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  pipe.start();
  for (const dataplane::RawPacket& raw : stream) {
    (void)pipe.submit(raw, &hdr);
  }
  pipe.stop();

  RunResult r;
  r.evidence = pipe.collect_evidence();
  ShardedAppraiser appraiser(root_key(), pipe.options().shard_key_label,
                             /*max_shards=*/8, mode);
  appraiser.ingest(r.evidence);
  r.verdicts = appraiser.appraise();
  r.summary = ShardedAppraiser::summary(r.verdicts);
  r.report = pipe.report();
  return r;
}

// --- SPSC queue -----------------------------------------------------------------

TEST(SpscQueue, FifoOrderAndCapacityRounding) {
  SpscQueue<int> q(3);  // rounds up to 4
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.try_push(4));
  EXPECT_FALSE(q.try_push(5));  // full
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_push(5));  // slot freed
  for (const int want : {2, 3, 4, 5}) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, FailedPushLeavesValueIntact) {
  SpscQueue<std::string> q(1);
  ASSERT_TRUE(q.try_push("a"));
  std::string keep = "survivor";
  EXPECT_FALSE(q.try_push(std::move(keep)));
  EXPECT_EQ(keep, "survivor");  // not moved-from on failure
}

TEST(SpscQueue, ConcurrentProducerConsumerDeliversEverything) {
  constexpr int kItems = 20000;
  SpscQueue<int> q(64);
  std::int64_t sum = 0;
  std::thread consumer([&] {
    int v = 0;
    int got = 0;
    while (got < kItems) {
      if (q.try_pop(v)) {
        sum += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    while (!q.try_push(std::move(i))) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum, static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

// --- flow hashing ---------------------------------------------------------------

TEST(FlowHash, SameTupleSameHashDifferentTupleDiffers) {
  const dataplane::RawPacket a = make_tcp_packet({.sport = 40000});
  const dataplane::RawPacket b = make_tcp_packet({.sport = 40000});
  const dataplane::RawPacket c = make_tcp_packet({.sport = 40001});
  EXPECT_EQ(flow_hash(extract_flow_key(a)), flow_hash(extract_flow_key(b)));
  EXPECT_NE(flow_hash(extract_flow_key(a)), flow_hash(extract_flow_key(c)));
}

TEST(FlowHash, ExtractsTupleFromWire) {
  const FlowKey key = extract_flow_key(make_tcp_packet(
      {.ip_src = 0x0a000101, .ip_dst = 0x0a000202, .sport = 1234,
       .dport = 443}));
  EXPECT_TRUE(key.valid);
  EXPECT_EQ(key.src_ip, 0x0a000101u);
  EXPECT_EQ(key.dst_ip, 0x0a000202u);
  EXPECT_EQ(key.sport, 1234);
  EXPECT_EQ(key.dport, 443);
  EXPECT_EQ(key.proto, 6);
}

TEST(FlowHash, NonIpFramesStillHashDeterministically) {
  dataplane::RawPacket junk;
  junk.data = {0xde, 0xad, 0xbe, 0xef};
  const std::uint64_t h1 = flow_hash(extract_flow_key(junk));
  const std::uint64_t h2 = flow_hash(extract_flow_key(junk));
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, 0u);
  EXPECT_LT(shard_of(junk, 4), 4u);
}

TEST(FlowHash, ShardOfCoversAllShardsAcrossFlows) {
  std::set<std::size_t> seen;
  for (std::uint16_t p = 0; p < 64; ++p) {
    seen.insert(shard_of(make_tcp_packet({.sport =
                             static_cast<std::uint16_t>(40000 + p)}),
                         4));
  }
  EXPECT_EQ(seen.size(), 4u);  // 64 flows should hit all 4 shards
  EXPECT_EQ(shard_of(make_tcp_packet({}), 1), 0u);
}

// --- epoch block ----------------------------------------------------------------

TEST(EpochBlock, VersionIsEvenAndMonotonic) {
  EpochBlock block;
  EXPECT_EQ(block.version(), 0u);
  ControlOp op;
  op.kind = ControlOp::Kind::kLoadProgram;
  op.factory = router_factory();
  block.publish(std::move(op));
  EXPECT_EQ(block.version(), 2u);
  EXPECT_EQ(block.op_count(), 1u);
}

TEST(EpochBlock, OpsSinceReplaysOnlyUnapplied) {
  EpochBlock block;
  for (int i = 0; i < 3; ++i) {
    ControlOp op;
    op.kind = ControlOp::Kind::kUpdateTable;
    op.table = "route";
    block.publish(std::move(op));
  }
  std::vector<ControlOp> ops;
  EXPECT_EQ(block.ops_since(1, ops), block.version());
  EXPECT_EQ(ops.size(), 2u);
}

// --- shard-count invariance (the tentpole property) -----------------------------

TEST(PipelineDeterminism, OutOfBandVerdictsInvariantAcrossShardCounts) {
  const std::vector<dataplane::RawPacket> stream = make_stream(96, 12);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult one = run_pipeline(1, stream, hdr);
  const RunResult two = run_pipeline(2, stream, hdr);
  const RunResult four = run_pipeline(4, stream, hdr);

  EXPECT_EQ(one.verdicts.size(), 12u);
  for (const auto& [flow, v] : one.verdicts) {
    EXPECT_TRUE(v.ok) << "flow " << flow;
    EXPECT_EQ(v.signature_failures, 0u);
  }
  // Bit-identical per-flow transcripts, summarized in one digest.
  EXPECT_EQ(one.summary, two.summary);
  EXPECT_EQ(one.summary, four.summary);
  EXPECT_EQ(one.report.processed(), 96u);
  EXPECT_EQ(four.report.processed(), 96u);
}

TEST(PipelineDeterminism, InBandVerdictsInvariantAcrossShardCounts) {
  const std::vector<dataplane::RawPacket> stream = make_stream(64, 8);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/false);
  const RunResult one = run_pipeline(1, stream, hdr);
  const RunResult four = run_pipeline(4, stream, hdr);
  EXPECT_EQ(one.verdicts.size(), 8u);
  EXPECT_EQ(one.summary, four.summary);
  for (const auto& [flow, v] : four.verdicts) {
    EXPECT_TRUE(v.ok) << "flow " << flow;
  }
}

TEST(PipelineDeterminism, BatchedSigningPreservesVerdicts) {
  // Merkle-batched deferred signing changes the signature scheme, not the
  // signed content — verdict transcripts must match the unbatched run.
  const std::vector<dataplane::RawPacket> stream = make_stream(64, 8);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  ::pera::pera::PeraConfig batched;
  batched.oob_batch_size = 32;
  const RunResult plain = run_pipeline(2, stream, hdr);
  const RunResult merkle = run_pipeline(2, stream, hdr, batched);
  ASSERT_EQ(plain.evidence.size(), merkle.evidence.size());
  EXPECT_EQ(plain.summary, merkle.summary);
}

TEST(PipelineDeterminism, PointwiseAndChainedTranscriptsDiffer) {
  const std::vector<dataplane::RawPacket> stream = make_stream(32, 4);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult chained = run_pipeline(2, stream, hdr, {},
                                         nac::CompositionMode::kChained);
  const RunResult pointwise = run_pipeline(2, stream, hdr, {},
                                           nac::CompositionMode::kPointwise);
  EXPECT_NE(chained.summary, pointwise.summary);
  // ...but both modes agree the evidence verifies.
  for (const auto& [flow, v] : pointwise.verdicts) {
    EXPECT_TRUE(v.ok) << "flow " << flow;
  }
}

TEST(PipelineDeterminism, FlowsNeverSplitAcrossShards) {
  const std::vector<dataplane::RawPacket> stream = make_stream(64, 8);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult r = run_pipeline(4, stream, hdr);
  std::map<std::uint64_t, std::set<std::uint32_t>> shards_by_flow;
  for (const EvidenceItem& item : r.evidence) {
    shards_by_flow[item.flow].insert(item.shard);
  }
  for (const auto& [flow, shards] : shards_by_flow) {
    EXPECT_EQ(shards.size(), 1u) << "flow " << flow << " split";
  }
}

TEST(PipelineDeterminism, TamperedEvidenceFailsAppraisal) {
  const std::vector<dataplane::RawPacket> stream = make_stream(8, 2);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  PipelineOptions opt;
  opt.shards = 2;
  opt.drop_on_full = false;
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  pipe.start();
  for (const dataplane::RawPacket& raw : stream) (void)pipe.submit(raw, &hdr);
  pipe.stop();

  std::vector<EvidenceItem> evidence = pipe.collect_evidence();
  ASSERT_FALSE(evidence.empty());
  evidence.front().evidence.back() ^= 0xff;  // flip a signature byte

  ShardedAppraiser appraiser(root_key(), pipe.options().shard_key_label, 8);
  appraiser.ingest(evidence);
  const auto verdicts = appraiser.appraise();
  std::size_t failures = 0;
  for (const auto& [flow, v] : verdicts) failures += v.signature_failures;
  EXPECT_EQ(failures, 1u);
  EXPECT_TRUE(std::any_of(verdicts.begin(), verdicts.end(),
                          [](const auto& kv) { return !kv.second.ok; }));
}

// --- queue overflow / backpressure ----------------------------------------------

TEST(PipelineBackpressure, DropOnFullCountsDrops) {
  PipelineOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.drop_on_full = true;
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  // Workers not started: the ring fills after 8 packets.
  const dataplane::RawPacket pkt = make_tcp_packet({});
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (pipe.submit(pkt, nullptr)) ++accepted;
  }
  EXPECT_EQ(accepted, 8);
  pipe.start();
  pipe.stop();
  const PipelineReport rep = pipe.report();
  EXPECT_EQ(rep.submitted, 20u);
  EXPECT_EQ(rep.dropped, 12u);
  EXPECT_EQ(rep.processed(), 8u);
}

TEST(PipelineBackpressure, LosslessModeDeliversEverything) {
  PipelineOptions opt;
  opt.shards = 2;
  opt.queue_capacity = 8;  // tiny ring: the dispatcher must wait
  opt.drop_on_full = false;
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  pipe.start();
  const nac::PolicyHeader hdr = make_policy_header(true);
  for (const dataplane::RawPacket& raw : make_stream(400, 16)) {
    EXPECT_TRUE(pipe.submit(raw, &hdr));
  }
  pipe.stop();
  const PipelineReport rep = pipe.report();
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_EQ(rep.processed(), 400u);
}

// --- epoch invalidation ---------------------------------------------------------

TEST(PipelineEpoch, ControlOpsInvalidateShardCaches) {
  // Inline (no threads): one worker, deterministic interleaving.
  EpochBlock epochs;
  ShardWorker worker(0, "sw1", router_factory(),
                     crypto::sha256("k0"), epochs, {}, 16, 100);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const dataplane::RawPacket pkt = make_tcp_packet({});
  const std::uint64_t flow = flow_hash(extract_flow_key(pkt));

  worker.process(PacketJob{pkt, &hdr, flow, 0, 0});
  worker.process(PacketJob{pkt, &hdr, flow, 1, 0});
  EXPECT_EQ(worker.report().cache.hits, 1u);  // warm second packet

  ControlOp op;
  op.kind = ControlOp::Kind::kLoadProgram;
  op.factory = [] { return make_router("v2"); };
  epochs.publish(std::move(op));

  worker.process(PacketJob{pkt, &hdr, flow, 2, 0});
  const ShardReport rep = worker.report();
  EXPECT_EQ(rep.epoch_syncs, 1u);
  EXPECT_EQ(rep.cache.invalidations, 1u);  // program epoch moved
  EXPECT_EQ(rep.processed, 3u);
}

TEST(PipelineEpoch, ConcurrentControlOpsConvergeAcrossShards) {
  // The TSan race target: a control thread swaps programs and writes
  // tables while the dispatcher streams packets. After a final round of
  // packets (every shard must observe the last epoch), all shards agree
  // on the program digest.
  PipelineOptions opt;
  opt.shards = 4;
  opt.drop_on_full = false;
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  pipe.start();
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const std::vector<dataplane::RawPacket> stream = make_stream(256, 32);

  std::thread control([&] {
    for (int i = 0; i < 8; ++i) {
      dataplane::TableEntry e;
      e.keys = {dataplane::KeyMatch::lpm(0xC0A80000 + i, 24)};
      e.action = "forward";
      e.action_params = {2};
      pipe.update_table("route", e);
      if (i % 3 == 2) {
        pipe.load_program([i] {
          return make_router("v" + std::to_string(i));
        });
      }
      std::this_thread::yield();
    }
  });
  for (const dataplane::RawPacket& raw : stream) (void)pipe.submit(raw, &hdr);
  control.join();
  // Final round after the last publish: make_stream(64, 32) revisits the
  // same 32 flows, which cover all four shards.
  for (const dataplane::RawPacket& raw : make_stream(64, 32)) {
    (void)pipe.submit(raw, &hdr);
  }
  pipe.stop();

  EXPECT_EQ(pipe.epochs().version() % 2, 0u);
  std::set<crypto::Digest> program_digests;
  for (std::size_t i = 0; i < pipe.shards(); ++i) {
    program_digests.insert(
        pipe.worker(i).pera_switch().dataplane().program().program_digest());
    EXPECT_GT(pipe.worker(i).report().epoch_syncs, 0u);
  }
  EXPECT_EQ(program_digests.size(), 1u);  // all shards converged

  // Evidence from a stream crossing epochs still verifies shard-by-shard.
  ShardedAppraiser appraiser(root_key(), pipe.options().shard_key_label, 8);
  appraiser.ingest(pipe.collect_evidence());
  for (const auto& [flow, v] : appraiser.appraise()) {
    EXPECT_TRUE(v.ok) << "flow " << flow;
  }
}

// --- parallel appraisal ---------------------------------------------------------

/// Run the pipeline with the in-pipeline ParallelAppraiser streaming
/// evidence concurrently (the threaded TSan target for appraisal).
RunResult run_parallel(std::size_t shards, std::size_t appraisers,
                       const std::vector<dataplane::RawPacket>& stream,
                       const nac::PolicyHeader& hdr,
                       ::pera::pera::PeraConfig pera_cfg = {},
                       nac::CompositionMode mode =
                           nac::CompositionMode::kChained,
                       crypto::SignatureScheme scheme =
                           crypto::SignatureScheme::kHmacDeviceKey) {
  PipelineOptions opt;
  opt.shards = shards;
  opt.pera = pera_cfg;
  opt.drop_on_full = false;
  opt.appraisers = appraisers;
  opt.appraise_mode = mode;
  opt.scheme = scheme;
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  pipe.start();
  for (const dataplane::RawPacket& raw : stream) {
    (void)pipe.submit(raw, &hdr);
  }
  pipe.stop();

  RunResult r;
  r.verdicts = pipe.appraiser()->verdicts();
  r.summary = pipe.appraiser()->summary();
  r.report = pipe.report();
  EXPECT_EQ(pipe.appraiser()->dropped(), 0u);
  return r;
}

TEST(PipelineParallelAppraise, VerdictsBitIdenticalToSerialAcrossShardCounts) {
  // The equivalence property: the same trace pushed through 1/2/4/8
  // shards with concurrent per-shard appraiser workers must produce
  // verdicts bit-identical to the serial ShardedAppraiser reference —
  // same flows, same transcripts, same summary digest.
  const std::vector<dataplane::RawPacket> stream = make_stream(96, 12);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult serial = run_pipeline(1, stream, hdr);
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult par = run_parallel(shards, shards, stream, hdr);
    EXPECT_EQ(par.summary, serial.summary) << shards << " shards";
    ASSERT_EQ(par.verdicts.size(), serial.verdicts.size());
    for (const auto& [flow, v] : serial.verdicts) {
      const auto it = par.verdicts.find(flow);
      ASSERT_NE(it, par.verdicts.end()) << "flow " << flow << " missing";
      EXPECT_EQ(it->second.transcript, v.transcript) << "flow " << flow;
      EXPECT_EQ(it->second.records, v.records);
      EXPECT_EQ(it->second.ok, v.ok);
    }
  }
}

TEST(PipelineParallelAppraise, AppraiserCountDoesNotChangeVerdicts) {
  // Worker count only partitions the flow space; the merged verdict map
  // must not depend on it.
  const std::vector<dataplane::RawPacket> stream = make_stream(64, 16);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult one = run_parallel(4, 1, stream, hdr);
  const RunResult three = run_parallel(4, 3, stream, hdr);
  const RunResult eight = run_parallel(4, 8, stream, hdr);
  EXPECT_EQ(one.summary, three.summary);
  EXPECT_EQ(one.summary, eight.summary);
  EXPECT_EQ(one.verdicts.size(), 16u);
}

TEST(PipelineParallelAppraise, PointwiseModeMatchesSerialToo) {
  const std::vector<dataplane::RawPacket> stream = make_stream(48, 6);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult serial =
      run_pipeline(2, stream, hdr, {}, nac::CompositionMode::kPointwise);
  const RunResult par = run_parallel(4, 2, stream, hdr, {},
                                     nac::CompositionMode::kPointwise);
  EXPECT_EQ(par.summary, serial.summary);
}

TEST(PipelineParallelAppraise, XmssSchemeVerifiesThroughMultiLaneEngine) {
  // kXmss signs shard evidence with WOTS chains (verification walks the
  // chains through the multi-lane SHA-256 engine). Verdicts must still
  // verify and stay shard-count invariant.
  const std::vector<dataplane::RawPacket> stream = make_stream(24, 4);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult two =
      run_parallel(2, 2, stream, hdr, {}, nac::CompositionMode::kChained,
                   crypto::SignatureScheme::kXmss);
  const RunResult four =
      run_parallel(4, 4, stream, hdr, {}, nac::CompositionMode::kChained,
                   crypto::SignatureScheme::kXmss);
  EXPECT_EQ(two.verdicts.size(), 4u);
  for (const auto& [flow, v] : two.verdicts) {
    EXPECT_TRUE(v.ok) << "flow " << flow;
    EXPECT_EQ(v.signature_failures, 0u);
  }
  EXPECT_EQ(two.summary, four.summary);

  // The HMAC run folds the same signed content, so transcripts (which
  // cover content + outcome, not signature bytes) must match it as well.
  const RunResult hmac = run_parallel(2, 2, stream, hdr);
  EXPECT_EQ(two.summary, hmac.summary);
}

// --- end-of-stream drain order --------------------------------------------------

TEST(PipelineDrainOrder, FinalBatchVerdictsSurviveTinyStreams) {
  // Regression: with an evidence batcher configured, the last (partial)
  // batch only surfaces at flush_pending(). The defined drain order —
  // ring dry, then batcher flush, both on the worker thread, then
  // appraiser finish — must deliver those final-batch verdicts at any
  // batch size and packet count, including streams smaller than one
  // batch.
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  for (const std::size_t batch : {1u, 7u}) {
    ::pera::pera::PeraConfig cfg;
    cfg.oob_batch_size = batch;
    for (const std::size_t packets : {1u, 2u, 7u, 13u}) {
      const std::vector<dataplane::RawPacket> stream =
          make_stream(packets, std::min<std::size_t>(packets, 4));
      const RunResult serial = run_pipeline(8, stream, hdr, cfg);
      const RunResult par = run_parallel(8, 8, stream, hdr, cfg);
      std::size_t serial_records = 0;
      for (const auto& [flow, v] : serial.verdicts) {
        serial_records += v.records;
      }
      std::size_t par_records = 0;
      for (const auto& [flow, v] : par.verdicts) par_records += v.records;
      EXPECT_GT(serial_records, 0u)
          << "batch " << batch << " packets " << packets;
      EXPECT_EQ(par_records, serial_records)
          << "batch " << batch << " packets " << packets
          << ": final-batch evidence dropped";
      EXPECT_EQ(par.summary, serial.summary)
          << "batch " << batch << " packets " << packets;
    }
  }
}

// --- buffer pool ----------------------------------------------------------------

TEST(PipelinePool, RecycleRingReusesBuffersUnderBackpressure) {
  // With a tiny ring the dispatcher outpaces the worker, waits, and by
  // then spent buffers are available for capacity reuse.
  PipelineOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 8;
  opt.drop_on_full = false;
  opt.appraisers = 1;
  PeraPipeline pipe("sw1", router_factory(), root_key(), opt);
  pipe.start();
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  for (const dataplane::RawPacket& raw : make_stream(300, 8)) {
    EXPECT_TRUE(pipe.submit(raw, &hdr));
  }
  pipe.stop();
  const PipelineReport rep = pipe.report();
  EXPECT_EQ(rep.processed(), 300u);
  EXPECT_GT(rep.pool_reused, 0u);
  EXPECT_EQ(rep.pool_reused + rep.pool_fresh, 300u);
  EXPECT_EQ(pipe.appraiser()->flows(), 8u);
}

// --- stage profiler -------------------------------------------------------------

TEST(PipelineProfiler, AttributesThreadTimeToStages) {
  namespace prof = obs::profiler;
  prof::set_enabled(true);
  prof::reset();
  {
    const prof::ScopedThread reg("test", prof::Stage::kIdle);
    prof::enter(prof::Stage::kShardWork);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      const prof::ScopedStage verify(prof::Stage::kWotsVerify);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }  // restores kShardWork
    prof::enter(prof::Stage::kMerge);
  }
  const prof::StageTotals t = prof::totals();
  const auto ns_of = [&t](prof::Stage s) {
    return t.wall_ns[static_cast<std::size_t>(s)];
  };
  EXPECT_GE(ns_of(prof::Stage::kShardWork), 2'000'000u);
  EXPECT_GE(ns_of(prof::Stage::kWotsVerify), 1'000'000u);
  EXPECT_GT(t.window_ns, 0u);
  // The invariant the bench gate relies on: a registered thread is always
  // inside exactly one stage, so the stage sums cover its whole window.
  EXPECT_GE(t.accounted_share(), 0.95);
  EXPECT_LE(t.accounted_ns(), t.window_ns + 1'000'000u);  // clock slop

  const std::string json = prof::to_json();
  for (const char* key :
       {"dispatch", "ring_transit", "shard_work", "reassembly",
        "wots_verify", "merge", "idle", "accounted_share"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"role\":\"test\""), std::string::npos);

  prof::reset();
  EXPECT_EQ(prof::totals().window_ns, 0u);
  prof::set_enabled(false);
}

TEST(PipelineProfiler, DisabledProfilerRecordsNothing) {
  namespace prof = obs::profiler;
  prof::set_enabled(false);
  prof::reset();
  {
    const prof::ScopedThread reg("ghost", prof::Stage::kIdle);
    prof::enter(prof::Stage::kShardWork);  // all no-ops while disabled
  }
  EXPECT_EQ(prof::totals().window_ns, 0u);
  EXPECT_EQ(prof::totals().accounted_share(), 1.0);
}

TEST(PipelineProfiler, ResetInvalidatesLiveThreadCursors) {
  namespace prof = obs::profiler;
  prof::set_enabled(true);
  prof::reset();
  prof::thread_begin("stale", prof::Stage::kIdle);
  prof::reset();  // bumps the generation: the cursor must go quiet
  prof::enter(prof::Stage::kShardWork);
  prof::thread_end();
  EXPECT_EQ(prof::totals().window_ns, 0u);
  prof::set_enabled(false);
}

// --- report ---------------------------------------------------------------------

TEST(PipelineReporting, SimThroughputScalesWithShards) {
  // The simulated clock is the methodology-level throughput metric: the
  // dispatcher is the serial fraction, shards process in parallel.
  const std::vector<dataplane::RawPacket> stream = make_stream(256, 32);
  const nac::PolicyHeader hdr = make_policy_header(/*out_of_band=*/true);
  const RunResult one = run_pipeline(1, stream, hdr);
  const RunResult four = run_pipeline(4, stream, hdr);
  EXPECT_GT(one.report.sim_packets_per_sec, 0.0);
  EXPECT_GT(four.report.sim_packets_per_sec,
            2.0 * one.report.sim_packets_per_sec);
  EXPECT_GE(one.report.latency_percentile(0.99),
            one.report.latency_percentile(0.50));
}

}  // namespace
}  // namespace pera::pipeline
