// Tests for the Copland language front end: lexer, parser, pretty-printer
// round trips, and AST utilities — including the paper's expressions
// (1)-(4) and the Table 1 policies AP1-AP3.
#include <gtest/gtest.h>

#include "copland/ast.h"
#include "copland/lexer.h"
#include "copland/parser.h"
#include "copland/pretty.h"

namespace pera::copland {
namespace {

// The paper's expressions in our ASCII syntax.
constexpr const char* kExpr1 =
    "*bank : @ks [av us bmon] -~- @us [bmon us exts]";
constexpr const char* kExpr2 =
    "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]";
constexpr const char* kExpr3a =
    "*RP1<n> : @Switch [attest(Hardware -~- Program) -> # -> !] +<+ "
    "@Appraiser [appraise -> certify(n) -> ! -> store(n)]";
constexpr const char* kExpr3b = "*RP2<n> : @Appraiser [retrieve(n)]";
constexpr const char* kExpr4 =
    "*RP1 : @Switch [attest(Hardware -~- Program) -> # -> !] -> "
    "@RP2 [@Appraiser [appraise -> certify -> !]]";
constexpr const char* kAP1 =
    "*bank<n, X> : forall hop, client : "
    "(@hop [Khop |> attest(n, X) -> !] -<+ @Appraiser [appraise -> store(n)]) "
    "*=> @client [Kclient |> @ks [av us bmon -> !] -<- @us [bmon us exts -> !]]";
constexpr const char* kAP2 =
    "*scanner<P> : @scanner [P |> attest(P) -> !] -<+ "
    "@Appraiser [appraise -> store]";
constexpr const char* kAP3 =
    "*pathCheck<F1, F2, Peer1, Peer2> : forall p, q, r, peer1, peer2 : "
    "(@peer1 [Peer1 |> !] -<+ @p [attest(F1) -> !] -<+ @q [attest(F2) -> !] "
    "-<+ @Appraiser [appraise -> store]) *=> "
    "(@r [Q |> !] -<+ @peer2 [Peer2 |> !] -<+ @Appraiser [appraise -> store])";

// --- lexer -------------------------------------------------------------------

TEST(Lexer, BasicTokens) {
  const auto toks = lex("*bank : @ks [av us bmon] -> ! # {}");
  ASSERT_GE(toks.size(), 12u);
  EXPECT_EQ(toks[0].kind, TokKind::kStar);
  EXPECT_EQ(toks[1].kind, TokKind::kIdent);
  EXPECT_EQ(toks[1].text, "bank");
  EXPECT_EQ(toks[2].kind, TokKind::kColon);
  EXPECT_EQ(toks[3].kind, TokKind::kAt);
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(Lexer, BranchOperators) {
  for (const char* op : {"-<-", "+<+", "-~-", "+~-", "-<+"}) {
    const auto toks = lex(op);
    ASSERT_EQ(toks.size(), 2u) << op;
    EXPECT_EQ(toks[0].kind, TokKind::kBranch) << op;
    EXPECT_EQ(toks[0].text, op);
  }
}

TEST(Lexer, ArrowVsBranch) {
  const auto toks = lex("a -> b");
  EXPECT_EQ(toks[1].kind, TokKind::kArrow);
}

TEST(Lexer, PathStarVsStar) {
  const auto toks = lex("* *=>");
  EXPECT_EQ(toks[0].kind, TokKind::kStar);
  EXPECT_EQ(toks[1].kind, TokKind::kPathStar);
}

TEST(Lexer, GuardToken) {
  const auto toks = lex("K |> x");
  EXPECT_EQ(toks[1].kind, TokKind::kGuard);
}

TEST(Lexer, ForallKeyword) {
  const auto toks = lex("forall p, q : x");
  EXPECT_EQ(toks[0].kind, TokKind::kForall);
}

TEST(Lexer, IdentWithDotsAndDigits) {
  const auto toks = lex("firewall_v5.p4");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "firewall_v5.p4");
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_THROW((void)lex("a $ b"), ParseError);
}

TEST(Lexer, PositionsRecorded) {
  const auto toks = lex("ab cd");
  EXPECT_EQ(toks[0].pos, 0u);
  EXPECT_EQ(toks[1].pos, 3u);
}

// --- parser ------------------------------------------------------------------

TEST(Parser, Expr1Shape) {
  const Request req = parse_request(kExpr1);
  EXPECT_EQ(req.relying_party, "bank");
  EXPECT_TRUE(req.params.empty());
  ASSERT_EQ(req.body->kind, TermKind::kBranch);
  EXPECT_EQ(req.body->branch, BranchKind::kPar);
  EXPECT_FALSE(req.body->pass_left);
  EXPECT_FALSE(req.body->pass_right);
  ASSERT_EQ(req.body->left->kind, TermKind::kAtPlace);
  EXPECT_EQ(req.body->left->place, "ks");
  const TermPtr meas = req.body->left->child;
  ASSERT_EQ(meas->kind, TermKind::kMeasure);
  EXPECT_EQ(meas->asp, "av");
  EXPECT_EQ(meas->place, "us");
  EXPECT_EQ(meas->target, "bmon");
}

TEST(Parser, Expr2UsesSequentialBranch) {
  const Request req = parse_request(kExpr2);
  ASSERT_EQ(req.body->kind, TermKind::kBranch);
  EXPECT_EQ(req.body->branch, BranchKind::kSeq);
  // Left arm is a pipe ending in sign.
  ASSERT_EQ(req.body->left->kind, TermKind::kAtPlace);
  const TermPtr pipe = req.body->left->child;
  ASSERT_EQ(pipe->kind, TermKind::kPipe);
  EXPECT_EQ(pipe->right->kind, TermKind::kSign);
}

TEST(Parser, Expr3NonceParamAndFuncs) {
  const Request req = parse_request(kExpr3a);
  EXPECT_EQ(req.relying_party, "RP1");
  ASSERT_EQ(req.params.size(), 1u);
  EXPECT_EQ(req.params[0], "n");
  // attest has a branch argument.
  ASSERT_EQ(req.body->kind, TermKind::kBranch);
  const TermPtr sw = req.body->left;
  ASSERT_EQ(sw->kind, TermKind::kAtPlace);
  TermPtr cur = sw->child;  // ((attest -> #) -> !)
  ASSERT_EQ(cur->kind, TermKind::kPipe);
  EXPECT_EQ(cur->right->kind, TermKind::kSign);
  cur = cur->left;
  ASSERT_EQ(cur->kind, TermKind::kPipe);
  EXPECT_EQ(cur->right->kind, TermKind::kHash);
  cur = cur->left;
  ASSERT_EQ(cur->kind, TermKind::kFunc);
  EXPECT_EQ(cur->func, "attest");
  ASSERT_EQ(cur->args.size(), 1u);
  EXPECT_EQ(cur->args[0]->kind, TermKind::kBranch);
  EXPECT_EQ(cur->args[0]->branch, BranchKind::kPar);
}

TEST(Parser, Expr3bRetrieve) {
  const Request req = parse_request(kExpr3b);
  EXPECT_EQ(req.relying_party, "RP2");
  ASSERT_EQ(req.body->kind, TermKind::kAtPlace);
  ASSERT_EQ(req.body->child->kind, TermKind::kFunc);
  EXPECT_EQ(req.body->child->func, "retrieve");
}

TEST(Parser, Expr4NestedPlaces) {
  const Request req = parse_request(kExpr4);
  ASSERT_EQ(req.body->kind, TermKind::kPipe);
  const TermPtr rp2 = req.body->right;
  ASSERT_EQ(rp2->kind, TermKind::kAtPlace);
  EXPECT_EQ(rp2->place, "RP2");
  ASSERT_EQ(rp2->child->kind, TermKind::kAtPlace);
  EXPECT_EQ(rp2->child->place, "Appraiser");
}

TEST(Parser, AP1ForallAndStar) {
  const Request req = parse_request(kAP1);
  EXPECT_EQ(req.params, (std::vector<std::string>{"n", "X"}));
  ASSERT_EQ(req.body->kind, TermKind::kForall);
  EXPECT_EQ(req.body->vars, (std::vector<std::string>{"hop", "client"}));
  ASSERT_EQ(req.body->child->kind, TermKind::kPathStar);
  const TermPtr left = req.body->child->left;
  ASSERT_EQ(left->kind, TermKind::kBranch);
  // Hop block is guarded.
  ASSERT_EQ(left->left->kind, TermKind::kAtPlace);
  EXPECT_EQ(left->left->child->kind, TermKind::kGuard);
  EXPECT_EQ(left->left->child->test, "Khop");
}

TEST(Parser, AP2GuardOnScanner) {
  const Request req = parse_request(kAP2);
  ASSERT_EQ(req.body->kind, TermKind::kBranch);
  const TermPtr scanner = req.body->left;
  ASSERT_EQ(scanner->kind, TermKind::kAtPlace);
  ASSERT_EQ(scanner->child->kind, TermKind::kGuard);
  EXPECT_EQ(scanner->child->test, "P");
}

TEST(Parser, AP3FiveVars) {
  const Request req = parse_request(kAP3);
  ASSERT_EQ(req.body->kind, TermKind::kForall);
  EXPECT_EQ(req.body->vars.size(), 5u);
  EXPECT_EQ(req.body->child->kind, TermKind::kPathStar);
}

TEST(Parser, NilAndParens) {
  const TermPtr t = parse_term("({} -> !)");
  ASSERT_EQ(t->kind, TermKind::kPipe);
  EXPECT_EQ(t->left->kind, TermKind::kNil);
}

TEST(Parser, LeftAssociativeBranches) {
  const TermPtr t = parse_term("a -<- b -<- c");
  ASSERT_EQ(t->kind, TermKind::kBranch);
  EXPECT_EQ(t->right->kind, TermKind::kAtom);
  EXPECT_EQ(t->right->target, "c");
  EXPECT_EQ(t->left->kind, TermKind::kBranch);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    (void)parse_request("*bank @ks");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(std::string(e.what()).size(), 0u);
  }
}

TEST(Parser, RejectsTrailingTokens) {
  EXPECT_THROW((void)parse_term("a b"), ParseError);  // two idents, not three
}

TEST(Parser, RejectsEmptyInput) {
  EXPECT_THROW((void)parse_term(""), ParseError);
}

TEST(Parser, FuncWithNoArgs) {
  const TermPtr t = parse_term("appraise()");
  ASSERT_EQ(t->kind, TermKind::kFunc);
  EXPECT_TRUE(t->args.empty());
}

// --- pretty round trips --------------------------------------------------------

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParsePrintParseIsIdentity) {
  const Request req = parse_request(GetParam());
  const std::string printed = to_string(req);
  const Request again = parse_request(printed);
  EXPECT_TRUE(equal(req.body, again.body))
      << "printed: " << printed << "\nreprinted: " << to_string(again);
  EXPECT_EQ(req.relying_party, again.relying_party);
  EXPECT_EQ(req.params, again.params);
}

INSTANTIATE_TEST_SUITE_P(PaperExamples, RoundTrip,
                         ::testing::Values(kExpr1, kExpr2, kExpr3a, kExpr3b,
                                           kExpr4, kAP1, kAP2, kAP3));

class TermRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(TermRoundTrip, Identity) {
  const TermPtr t = parse_term(GetParam());
  const TermPtr again = parse_term(to_string(t));
  EXPECT_TRUE(equal(t, again)) << to_string(t);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TermRoundTrip,
    ::testing::Values("a", "a -> b", "a -> b -> c", "(a -<- b) -> c",
                      "a -<- (b -> c)", "a +~+ b", "@p [x] -> @q [y]",
                      "K |> a -> !", "forall h : @h [x] *=> @c [y]",
                      "attest(a, b -> c)", "av us bmon", "{}", "# -> !",
                      "a -<- b -~- c", "(a -~- b) -<- c",
                      "forall h, k : (K |> @h [x]) *=> @k [y]"));

// --- AST utilities ----------------------------------------------------------------

TEST(Ast, SizeCountsNodes) {
  EXPECT_EQ(size(parse_term("a")), 1u);
  EXPECT_EQ(size(parse_term("a -> b")), 3u);
  EXPECT_EQ(size(parse_term("@p [a -> b]")), 4u);
}

TEST(Ast, PlacesOf) {
  const auto places = places_of(parse_term("@p [av q bmon] -<- @r [x]"));
  EXPECT_EQ(places, (std::vector<std::string>{"p", "q", "r"}));
}

TEST(Ast, IsNetworkAware) {
  EXPECT_FALSE(is_network_aware(parse_term("@p [a -> !]")));
  EXPECT_TRUE(is_network_aware(parse_term("K |> a")));
  EXPECT_TRUE(is_network_aware(parse_term("a *=> b")));
  EXPECT_TRUE(is_network_aware(parse_term("forall p : @p [a]")));
  EXPECT_TRUE(is_network_aware(parse_term("attest(forall p : x)")));
}

TEST(Ast, EqualDistinguishesFlags) {
  EXPECT_FALSE(equal(parse_term("a -<- b"), parse_term("a +<+ b")));
  EXPECT_FALSE(equal(parse_term("a -<- b"), parse_term("a -~- b")));
  EXPECT_TRUE(equal(parse_term("a -<- b"), parse_term("a -<- b")));
}

}  // namespace
}  // namespace pera::copland
