// Tests for the evidence-visibility analysis: which places see which
// evidence, and how Copland's `#` acts as in-protocol redaction.
#include <gtest/gtest.h>

#include "copland/analysis.h"
#include "copland/parser.h"

namespace pera::copland {
namespace {

TEST(Visibility, MeasurerSeesItsOwnTarget) {
  const auto vis = evidence_visibility(parse_term("@sw [Program]"), "rp");
  ASSERT_TRUE(vis.contains("sw"));
  EXPECT_TRUE(vis.at("sw").contains("Program"));
}

TEST(Visibility, ResultsFlowBackToRequester) {
  const auto vis = evidence_visibility(parse_term("@sw [Program]"), "rp");
  ASSERT_TRUE(vis.contains("rp"));
  EXPECT_TRUE(vis.at("rp").contains("Program"));
}

TEST(Visibility, HashHidesUpstreamDetail) {
  // The switch hashes before the appraiser sees anything: the appraiser
  // learns only an opaque digest.
  const auto vis = evidence_visibility(
      parse_term("@sw [Hardware -> Program -> # -> !] -> @app [appraise]"),
      "rp");
  ASSERT_TRUE(vis.contains("app"));
  EXPECT_FALSE(vis.at("app").contains("Hardware"));
  EXPECT_FALSE(vis.at("app").contains("Program"));
  EXPECT_TRUE(vis.at("app").contains("#"));
  // The switch itself of course saw the real values.
  EXPECT_TRUE(vis.at("sw").contains("Hardware"));
  EXPECT_TRUE(vis.at("sw").contains("Program"));
}

TEST(Visibility, WithoutHashAppraiserSeesEverything) {
  const auto vis = evidence_visibility(
      parse_term("@sw [Hardware -> Program -> !] -> @app [appraise]"), "rp");
  EXPECT_TRUE(vis.at("app").contains("Hardware"));
  EXPECT_TRUE(vis.at("app").contains("Program"));
}

TEST(Visibility, MinusBranchIsolatesArms) {
  // -<-: neither arm receives the other's (or prior) evidence.
  const auto vis = evidence_visibility(
      parse_term("@a [secretA] -<- @b [secretB]"), "rp");
  EXPECT_FALSE(vis.at("b").contains("secretA"));
  EXPECT_FALSE(vis.at("a").contains("secretB"));
  // But the relying party, receiving both results, sees both.
  EXPECT_TRUE(vis.at("rp").contains("secretA"));
  EXPECT_TRUE(vis.at("rp").contains("secretB"));
}

TEST(Visibility, PlusBranchLeaksPriorEvidence) {
  // +<+ passes accrued evidence into both arms: place b learns secretA.
  const auto vis = evidence_visibility(
      parse_term("@a [secretA] +<+ @b [secretB]"), "rp");
  // Note: evidence accrued *before* the branch flows in; within -<- vs +<+
  // the in-flow differs. Here the left arm's output is not the branch
  // input, so b does not see secretA on a bare branch...
  EXPECT_FALSE(vis.at("b").contains("secretA"));
  // ...but with a pipe it does:
  const auto vis2 = evidence_visibility(
      parse_term("@a [secretA] -> (@b [secretB] +<+ @c [x])"), "rp");
  EXPECT_TRUE(vis2.at("b").contains("secretA"));
  EXPECT_TRUE(vis2.at("c").contains("secretA"));
  const auto vis3 = evidence_visibility(
      parse_term("@a [secretA] -> (@b [secretB] -<- @c [x])"), "rp");
  EXPECT_FALSE(vis3.at("b").contains("secretA"));
  EXPECT_FALSE(vis3.at("c").contains("secretA"));
}

TEST(Visibility, Expression3AppraiserPrivacy) {
  // In expression (3) the switch sends `attest -> # -> !`: combined with a
  // pipe to the appraiser, the appraiser appraises a digest, never raw
  // hardware/program details. (The paper's out-of-band certification.)
  const auto vis = evidence_visibility(
      parse_term("@Switch [attest(Hardware, Program) -> # -> !] -> "
                 "@Appraiser [appraise -> certify(n) -> !]"),
      "RP1");
  EXPECT_FALSE(vis.at("Appraiser").contains("Hardware"));
  EXPECT_TRUE(vis.at("Appraiser").contains("#"));
  EXPECT_TRUE(vis.at("Switch").contains("Hardware"));
}

TEST(Visibility, HopsAlongPathSeeChainedEvidence) {
  // Chained composition (+<+ between hop instances after binding) means
  // later hops see earlier hops' evidence — the privacy cost of chaining
  // that pointwise composition avoids.
  const auto chained = evidence_visibility(
      parse_term("@s1 [Program -> !] +<+ @s2 [Program -> !]"), "rp");
  (void)chained;
  const auto piped = evidence_visibility(
      parse_term("@s1 [Program -> !] -> @s2 [Program -> !]"), "rp");
  EXPECT_TRUE(piped.at("s2").contains("Program"));
}

TEST(Visibility, GuardAndForallTransparent) {
  const auto vis = evidence_visibility(
      parse_term("forall h : (K |> @h [Program]) *=> @c [x]"), "rp");
  EXPECT_TRUE(vis.at("h").contains("Program"));
  EXPECT_TRUE(vis.at("c").contains("Program"));  // chained via the star
}

}  // namespace
}  // namespace pera::copland
