# V9 fixture: a flow cache that learns entries straight from packet
# arrivals with no capacity bound or eviction policy, and counts hits
# into an unguarded register array written on the packet path; both
# are exhaustible by an address sweep. (StatefulNat is the guarded
# counterpart: bounded capacity, LRU slot recycling, guarded registers.)
program flowcache v1;

header eth  { dst:48; src:48; ethertype:16; }
header ipv4 { ver_ihl:8; dscp:8; len:16; ttl:8; proto:8; checksum:16;
              src:32; dst:32; }
header tcp  { sport:16; dport:16; seq:32; ack:32; flags:16; window:16; }

parser {
  start:      extract eth  select eth.ethertype { 0x0800: parse_ipv4;
                                                  default: accept; }
  parse_ipv4: extract ipv4 select ipv4.proto    { 6: parse_tcp;
                                                  default: accept; }
  parse_tcp:  extract tcp;
}

register flow_hits[256];

action fwd(port)   { set_egress(port); }
action seen(slot)  { reg_write(flow_hits, slot, 1); set_egress(2); }

table flows {
  key { ipv4.src: exact; }
  state packet;
  entry 0x0a000001 -> seen(0);
  default fwd(1);
}
