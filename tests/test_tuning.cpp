// Tests for the Fig. 4 tuning advisor and the Prim3 deployment validator.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "pera/tuning.h"

namespace pera::pera {
namespace {

TEST(Tuning, HighInertiaDetailIsCheap) {
  WorkloadProfile w;
  w.packets_per_second = 1e6;
  AssuranceRequirements req;
  req.detail = nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram;
  req.max_overhead_ns = 500;
  const TuningRecommendation rec = recommend_config(w, req);
  EXPECT_TRUE(rec.satisfiable);
  EXPECT_EQ(rec.config.sampling_log2, 0);  // no sampling needed
  EXPECT_GT(rec.predicted_cache_hit_rate, 0.99);
}

TEST(Tuning, PacketDetailForcesSampling) {
  WorkloadProfile w;
  w.packets_per_second = 1e6;
  AssuranceRequirements req;
  req.detail = nac::mask_of(nac::EvidenceDetail::kPacket) |
               nac::mask_of(nac::EvidenceDetail::kProgram);
  req.max_overhead_ns = 500;
  const TuningRecommendation rec = recommend_config(w, req);
  EXPECT_TRUE(rec.satisfiable);
  EXPECT_GT(rec.config.sampling_log2, 0);  // sampling is the only relief
  EXPECT_DOUBLE_EQ(rec.predicted_cache_hit_rate, 0.0);
}

TEST(Tuning, EveryPacketRequirementCanBeUnsatisfiable) {
  WorkloadProfile w;
  w.packets_per_second = 1e6;
  AssuranceRequirements req;
  req.detail = nac::mask_of(nac::EvidenceDetail::kPacket);
  req.max_overhead_ns = 100;  // below one signing operation
  req.every_packet = true;
  const TuningRecommendation rec = recommend_config(w, req);
  EXPECT_FALSE(rec.satisfiable);
  EXPECT_EQ(rec.config.sampling_log2, 0);
  EXPECT_NE(rec.rationale.find("UNSATISFIABLE"), std::string::npos);
}

TEST(Tuning, TableChurnLowersHitRate) {
  AssuranceRequirements req;
  req.detail = nac::mask_of(nac::EvidenceDetail::kTables);
  WorkloadProfile calm;
  calm.packets_per_second = 1e4;
  calm.table_updates_per_second = 0.01;
  WorkloadProfile churny = calm;
  churny.table_updates_per_second = 5000.0;
  EXPECT_GT(recommend_config(calm, req).predicted_cache_hit_rate,
            recommend_config(churny, req).predicted_cache_hit_rate);
}

TEST(Tuning, PathOrderSelectsChained) {
  AssuranceRequirements req;
  req.require_path_order = true;
  EXPECT_EQ(recommend_config({}, req).config.composition,
            nac::CompositionMode::kChained);
  req.require_path_order = false;
  EXPECT_EQ(recommend_config({}, req).config.composition,
            nac::CompositionMode::kPointwise);
}

TEST(Tuning, PredictionMatchesMeasuredShape) {
  // Sanity: predicted overhead with the cache beats without, and packet
  // detail costs more than hardware detail.
  PeraConfig cached;
  PeraConfig uncached;
  uncached.cache_enabled = false;
  WorkloadProfile w;
  const auto hw = nac::mask_of(nac::EvidenceDetail::kHardware);
  const auto pkt = nac::mask_of(nac::EvidenceDetail::kPacket);
  EXPECT_LT(predict_overhead_ns(cached, w, hw),
            predict_overhead_ns(uncached, w, hw));
  EXPECT_LT(predict_overhead_ns(cached, w, hw),
            predict_overhead_ns(cached, w, pkt));
}

TEST(Validate, DeployableAndEnforced) {
  core::Deployment dep(netsim::topo::chain(2));
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  EXPECT_TRUE(dep.validate_policy(pol));

  // Partition s2 from the appraiser side.
  dep.network().topology().set_link_state("s1", "s2", false);
  dep.network().topology().set_link_state("s2", "server", false);
  EXPECT_FALSE(dep.validate_policy(pol));
  EXPECT_THROW((void)dep.validate_policy(pol, /*enforce=*/true),
               std::runtime_error);
}

}  // namespace
}  // namespace pera::pera
