// Observability subsystem: metrics registry correctness, trace-ring
// overflow accounting, JSON export round-trip, and the disabled-toggle
// no-op guarantee — plus an end-to-end check that a PERA switch actually
// populates the registry.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "crypto/keystore.h"
#include "dataplane/builder.h"
#include "obs/obs.h"
#include "pera/pera_switch.h"

namespace {

using namespace pera;

// Minimal JSON scraping for round-trip checks: find the integer value
// following `"key":` (first occurrence).
std::optional<long long> json_int(const std::string& json,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  bool neg = false;
  if (i < json.size() && json[i] == '-') {
    neg = true;
    ++i;
  }
  if (i >= json.size() || !std::isdigit(static_cast<unsigned char>(json[i]))) {
    return std::nullopt;
  }
  long long v = 0;
  while (i < json.size() && std::isdigit(static_cast<unsigned char>(json[i]))) {
    v = v * 10 + (json[i++] - '0');
  }
  return neg ? -v : v;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x.count");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same counter.
  EXPECT_EQ(&reg.counter("x.count"), &c);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);  // handle survives reset
}

TEST_F(ObsTest, GaugeSetAddValue) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("x.depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST_F(ObsTest, HistogramBucketsSumMinMaxOverflow) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("x.lat", {10, 100, 1000});
  h.observe(5);     // bucket 0 (<= 10)
  h.observe(10);    // bucket 0 (boundary is inclusive)
  h.observe(11);    // bucket 1
  h.observe(1000);  // bucket 2
  h.observe(5000);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 1000 + 5000);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 6026.0 / 5.0);
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad.empty", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("bad.unsorted", {10, 5}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("bad.dup", {10, 10}), std::invalid_argument);
}

TEST_F(ObsTest, RegistryJsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("a.hits").add(17);
  reg.gauge("b.depth").set(-4);
  obs::Histogram& h = reg.histogram("c.lat", {100, 200});
  h.observe(50);
  h.observe(150);
  h.observe(999);

  const std::string json = reg.to_json();
  EXPECT_EQ(json_int(json, "a.hits"), 17);
  EXPECT_EQ(json_int(json, "b.depth"), -4);
  EXPECT_EQ(json_int(json, "count"), 3);  // first histogram field
  EXPECT_EQ(json_int(json, "sum"), 50 + 150 + 999);
  EXPECT_EQ(json_int(json, "overflow"), 1);
  // Exported values match the live registry exactly.
  EXPECT_EQ(static_cast<unsigned long long>(*json_int(json, "a.hits")),
            reg.counter("a.hits").value());
}

TEST_F(ObsTest, TraceRingOverflowDropAccounting) {
  obs::TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    obs::SpanEvent ev;
    ev.kind = obs::SpanKind::kMeasure;
    ev.name = "e" + std::to_string(i);
    ev.value = static_cast<std::uint64_t>(i);
    sink.record(std::move(ev));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  // The newest events are retained, oldest-first, with monotonic seq.
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }

  const std::string json = sink.to_json();
  EXPECT_EQ(json_int(json, "recorded"), 10);
  EXPECT_EQ(json_int(json, "dropped"), 6);
  EXPECT_EQ(json_int(json, "capacity"), 4);

  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST_F(ObsTest, SetCapacityResizesAndClears) {
  obs::TraceSink sink(2);
  sink.record({});
  sink.record({});
  sink.record({});
  EXPECT_EQ(sink.dropped(), 1u);
  sink.set_capacity(8);
  EXPECT_EQ(sink.capacity(), 8u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_THROW(sink.set_capacity(0), std::invalid_argument);
}

TEST_F(ObsTest, DisabledToggleIsANoOp) {
  obs::set_enabled(false);
  const std::uint64_t before = obs::trace().recorded();

  PERA_OBS_COUNT("noop.count");
  PERA_OBS_GAUGE("noop.gauge", 9);
  PERA_OBS_OBSERVE("noop.lat", 123);
  PERA_OBS_EVENT(obs::SpanKind::kSign, "noop");
  { obs::ScopedSpan span(obs::SpanKind::kAppraise, "noop"); }

  EXPECT_EQ(obs::metrics().find_counter("noop.count"), nullptr);
  EXPECT_EQ(obs::metrics().find_gauge("noop.gauge"), nullptr);
  EXPECT_EQ(obs::metrics().find_histogram("noop.lat"), nullptr);
  EXPECT_EQ(obs::trace().recorded(), before);

  // Direct helper calls are gated too (macros are just lazy-arg sugar).
  obs::count("noop.count");
  EXPECT_EQ(obs::metrics().find_counter("noop.count"), nullptr);
}

TEST_F(ObsTest, ScopedSpanRecordsCostAndValue) {
  {
    obs::ScopedSpan span(obs::SpanKind::kEvidenceCreate, "unit");
    span.add_cost(100);
    span.add_cost(20);
    span.set_value(7);
  }
  const auto events = obs::trace().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::SpanKind::kEvidenceCreate);
  EXPECT_EQ(events[0].name, "unit");
  EXPECT_EQ(events[0].duration, 120);
  EXPECT_EQ(events[0].value, 7u);
}

TEST_F(ObsTest, SpanKindNamesAreStable) {
  EXPECT_STREQ(obs::to_string(obs::SpanKind::kCacheHit), "cache_hit");
  EXPECT_STREQ(obs::to_string(obs::SpanKind::kWireDecode), "wire_decode");
}

// End-to-end: one attested packet through a PERA switch populates the
// cache counters, the sign histogram and the per-level wire bytes that
// bench_fig4_design_space --metrics-json exports.
TEST_F(ObsTest, PeraSwitchPopulatesPipelineMetrics) {
  crypto::KeyStore keys(7);
  ::pera::pera::PeraSwitch sw("sw1", dataplane::make_router(),
                              keys.provision_hmac("sw1"));

  nac::CompiledPolicy pol;
  nac::HopInstruction inst;
  inst.wildcard = true;
  inst.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  inst.sign_evidence = true;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  const nac::PolicyHeader hdr = nac::make_header(
      pol, crypto::Nonce{crypto::sha256("flow")}, /*in_band=*/true, 0);

  const dataplane::RawPacket pkt = dataplane::make_tcp_packet({});
  for (int i = 0; i < 4; ++i) {
    nac::EvidenceCarrier carrier;
    const auto res = sw.process(pkt, &hdr, &carrier);
    EXPECT_TRUE(res.attested);
  }

  const obs::Counter* miss = obs::metrics().find_counter("pera.cache.miss");
  const obs::Counter* hit = obs::metrics().find_counter("pera.cache.hit");
  ASSERT_NE(miss, nullptr);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(miss->value(), 1u);  // first packet misses...
  EXPECT_EQ(hit->value(), 3u);   // ...the rest hit

  const obs::Histogram* sign =
      obs::metrics().find_histogram("pera.sign.sim_ns");
  ASSERT_NE(sign, nullptr);
  EXPECT_EQ(sign->count(), 1u);  // signed once, then cached
  EXPECT_GT(sign->sum(), 0);

  const obs::Counter* bytes =
      obs::metrics().find_counter("pera.wire.bytes.Program");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->value(), 0u);

  // The full dump contains both sections.
  const std::string json = obs::dump_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("pera.cache.hit"), std::string::npos);
  EXPECT_GT(obs::trace().recorded(), 0u);
}

}  // namespace
