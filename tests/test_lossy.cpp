// Tests for attestation over unreliable networks: link-level loss,
// timeout-and-retry at the relying party, and replay safety of retries.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "ctrl/transport.h"

namespace pera::core {
namespace {

TEST(Lossy, ReliableNetworkCompletesFirstAttempt) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  const auto rep = dep.run_out_of_band_with_retries(
      "client", "s1", nac::mask_of(nac::EvidenceDetail::kProgram));
  EXPECT_TRUE(rep.accepted);
  EXPECT_EQ(rep.attempts, 1u);
}

TEST(Lossy, ModerateLossEventuallyCompletes) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  dep.network().set_loss(0.25, 7777);
  const auto rep = dep.run_out_of_band_with_retries(
      "client", "s1", nac::mask_of(nac::EvidenceDetail::kProgram),
      10 * netsim::kMillisecond, /*max_attempts=*/20);
  EXPECT_TRUE(rep.accepted) << "25% per-hop loss should succeed within "
                               "20 attempts";
  EXPECT_GT(dep.network().stats().messages_lost, 0u);
}

TEST(Lossy, TotalLossFailsAfterRetries) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  dep.network().set_loss(1.0, 1);
  const auto rep = dep.run_out_of_band_with_retries(
      "client", "s1", nac::mask_of(nac::EvidenceDetail::kProgram),
      1 * netsim::kMillisecond, 3);
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.attempts, 3u);
}

TEST(Lossy, RetriesUseFreshNonces) {
  // A lost *result* must not strand the protocol: each retry carries a
  // fresh nonce so the appraiser's replay protection never blocks a
  // legitimate retry.
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  dep.network().set_loss(0.35, 4242);
  const auto rep = dep.run_out_of_band_with_retries(
      "client", "s1", nac::mask_of(nac::EvidenceDetail::kProgram),
      10 * netsim::kMillisecond, 30);
  EXPECT_TRUE(rep.accepted);
  // The appraiser never saw a nonce twice (no stale-nonce failures).
  EXPECT_GE(rep.attempts, 1u);
}

TEST(Lossy, LossIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    Deployment dep(netsim::topo::chain(2));
    dep.provision_goldens();
    dep.network().set_loss(0.3, seed);
    const auto rep = dep.run_out_of_band_with_retries(
        "client", "s1", nac::mask_of(nac::EvidenceDetail::kProgram),
        10 * netsim::kMillisecond, 20);
    return rep.attempts;
  };
  EXPECT_EQ(run_once(99), run_once(99));
}

TEST(Lossy, FlowsDegradeGracefully) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  dep.network().set_loss(0.1, 31337);
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  const FlowReport rep = dep.send_flow("client", "server", pol, 50, true);
  // Some packets die, the rest still attest and appraise cleanly.
  EXPECT_LT(rep.packets_delivered, rep.packets_sent);
  EXPECT_GT(rep.packets_delivered, 0u);
  EXPECT_EQ(rep.appraisal_failures, 0u);
}

TEST(Lossy, ReplayedEvidenceRejectedExactlyOnce) {
  // An adversary who captured a (nonce, evidence) exchange replays it at
  // the appraiser. The first presentation consumes the nonce; the replay
  // is rejected and counted — once, not once per configured level.
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  auto& appraiser = dep.appraiser().appraiser();
  const crypto::Nonce nonce{crypto::sha256("lossy-replay-test")};
  const auto evidence = dep.switch_node("s1").pera().attest_challenge(
      nac::mask_of(nac::EvidenceDetail::kProgram), nonce,
      /*hash_before_sign=*/false);

  const auto first = appraiser.appraise(evidence, nonce);
  EXPECT_TRUE(first.ok);
  EXPECT_EQ(appraiser.replays_rejected(), 0u);

  const auto replay = appraiser.appraise(evidence, nonce);
  EXPECT_FALSE(replay.ok) << "same nonce presented twice must be rejected";
  EXPECT_EQ(appraiser.replays_rejected(), 1u);
}

TEST(Lossy, ControlTransportSurvivesHeavyLoss) {
  // The control plane's retrying transport completes a round under loss
  // heavy enough to eat most single attempts.
  struct Tap final : netsim::NodeBehavior {
    ctrl::EvidenceTransport* transport = nullptr;
    void on_deliver(netsim::Network& net, netsim::NodeId,
                    netsim::Message msg) override {
      if (msg.type != "result") return;
      (void)transport->on_result(
          ra::Certificate::deserialize(
              crypto::BytesView{msg.payload.data(), msg.payload.size()}),
          net.now());
    }
  };
  DeploymentOptions opts;
  opts.seed = 61;
  Deployment dep(netsim::topo::chain(2), opts);
  dep.provision_goldens();
  dep.network().set_loss(0.4, 8080);
  ctrl::TransportConfig cfg;
  cfg.timeout = 5 * netsim::kMillisecond;
  cfg.max_attempts = 25;
  ctrl::EvidenceTransport transport(
      dep.network(), dep.network().topology().require("client"),
      dep.appraiser_name(), dep.keys(), cfg, 61);
  Tap tap;
  tap.transport = &transport;
  dep.network().attach("client", &tap);
  std::optional<ctrl::RoundOutcome> outcome;
  transport.begin_round(
      "s1", nac::mask_of(nac::EvidenceDetail::kProgram),
      [&](const std::string&, const ctrl::RoundOutcome& out) {
        outcome = out;
      });
  dep.network().run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->completed)
      << "40% per-hop loss should complete within 25 attempts";
  EXPECT_TRUE(outcome->verdict);
  EXPECT_GT(dep.network().stats().messages_lost, 0u);
}

}  // namespace
}  // namespace pera::core
