// The real-socket evidence transport (src/net): frame codec strictness
// and torn-read invariance, handshake wire roundtrips, the RA-session
// admission matrix (bad quote / replay / unknown place / role refusal /
// mutual counter-quotes) on the sans-I/O state machines, and loopback
// end-to-end runs against the epoll appraiser server — single client,
// concurrent fleet, challenge relay through a relying-party session, and
// the Sim-vs-Socket verdict identity check (the same evidence bytes get
// the same verdict from the in-process appraiser and over the wire).
#include <gtest/gtest.h>

#include <poll.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "ctrl/transport.h"
#include "nac/detail.h"
#include "net/backend.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/session.h"
#include "net/wire.h"
#include "pipeline/appraiser.h"
#include "pipeline/pipeline.h"

namespace {

using namespace pera;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::RejectReason;

crypto::Digest d(std::string_view label) {
  crypto::Sha256 h;
  h.update(label);
  return h.finish();
}

crypto::Nonce nonce_of(std::uint64_t x) {
  crypto::Nonce n;
  n.value = d("nonce:" + std::to_string(x));
  return n;
}

crypto::BytesView view(const crypto::Bytes& b) {
  return crypto::BytesView{b.data(), b.size()};
}

// ------------------------------------------------------------ frame codec --

TEST(NetFrame, RoundtripsCoalescedFrames) {
  crypto::Bytes stream;
  const crypto::Bytes p1{0x01, 0x02, 0x03};
  const crypto::Bytes p2;  // empty payload is legal (kBye)
  const crypto::Bytes p3(1000, 0xAB);
  net::append_frame(stream, FrameType::kEvidence, view(p1));
  net::append_frame(stream, FrameType::kBye, view(p2));
  net::append_frame(stream, FrameType::kResult, view(p3));

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(view(stream)));
  auto f1 = dec.next();
  auto f2 = dec.next();
  auto f3 = dec.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_FALSE(dec.next());
  EXPECT_EQ(f1->type, FrameType::kEvidence);
  EXPECT_EQ(f1->payload, p1);
  EXPECT_EQ(f2->type, FrameType::kBye);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_EQ(f3->type, FrameType::kResult);
  EXPECT_EQ(f3->payload, p3);
  EXPECT_EQ(dec.frames_decoded(), 3u);
  EXPECT_EQ(dec.buffered(), 0u);
}

// The framing invariant: however the byte stream is torn, the decoded
// frame sequence is identical. Split the 3-frame stream at every single
// byte position (feeding two chunks), and also drip it one byte at a
// time.
TEST(NetFrame, TornAtEveryByteYieldsIdenticalFrames) {
  crypto::Bytes stream;
  net::append_frame(stream, FrameType::kHello, view(crypto::Bytes{9, 9}));
  net::append_frame(stream, FrameType::kEvidence,
                    view(crypto::Bytes(300, 0x5C)));
  net::append_frame(stream, FrameType::kBye, {});

  const auto decode_all = [](FrameDecoder& dec) {
    std::vector<Frame> out;
    while (auto f = dec.next()) out.push_back(std::move(*f));
    return out;
  };
  FrameDecoder whole;
  ASSERT_TRUE(whole.feed(view(stream)));
  const std::vector<Frame> expect = decode_all(whole);
  ASSERT_EQ(expect.size(), 3u);

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(crypto::BytesView{stream.data(), split}));
    ASSERT_TRUE(
        dec.feed(crypto::BytesView{stream.data() + split,
                                   stream.size() - split}));
    const std::vector<Frame> got = decode_all(dec);
    ASSERT_EQ(got.size(), expect.size()) << "split at " << split;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].type, expect[i].type) << "split at " << split;
      EXPECT_EQ(got[i].payload, expect[i].payload) << "split at " << split;
    }
  }

  FrameDecoder drip;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(drip.feed(crypto::BytesView{stream.data() + i, 1}));
  }
  EXPECT_EQ(decode_all(drip).size(), expect.size());
  EXPECT_EQ(drip.buffered(), 0u);
}

TEST(NetFrame, PoisonsOnMalformedInputAndStaysPoisoned) {
  {  // zero length
    FrameDecoder dec;
    const crypto::Bytes zero{0, 0, 0, 0};
    EXPECT_FALSE(dec.feed(view(zero)));
    EXPECT_TRUE(dec.error());
    const crypto::Bytes good = net::encode_frame(FrameType::kBye, {});
    EXPECT_FALSE(dec.feed(view(good))) << "poisoned decoder must not recover";
    EXPECT_FALSE(dec.next());
  }
  {  // unknown frame type
    FrameDecoder dec;
    const crypto::Bytes bad{0, 0, 0, 1, 0x7F};
    EXPECT_FALSE(dec.feed(view(bad)));
    EXPECT_TRUE(dec.error());
  }
  {  // length beyond the cap — rejected from the prefix alone
    FrameDecoder dec;
    const std::uint32_t huge = net::kMaxFramePayload + 2;
    const crypto::Bytes pfx{
        static_cast<std::uint8_t>(huge >> 24),
        static_cast<std::uint8_t>(huge >> 16),
        static_cast<std::uint8_t>(huge >> 8),
        static_cast<std::uint8_t>(huge)};
    EXPECT_FALSE(dec.feed(view(pfx)));
    EXPECT_TRUE(dec.error());
  }
}

// ----------------------------------------------------------- handshake wire --

TEST(NetWire, QuoteRoundtripAndBinding) {
  const crypto::Digest root = d("quote-root");
  crypto::HmacSigner signer(net::derive_quote_key(root, "sw3"));
  const net::Quote q =
      net::Quote::make("sw3", nonce_of(7), d("meas"), signer);

  const crypto::Bytes bytes = q.serialize();
  const net::Quote back = net::Quote::deserialize(view(bytes));
  EXPECT_EQ(back.place, "sw3");
  EXPECT_EQ(back.nonce.value, nonce_of(7).value);
  EXPECT_EQ(back.measurement, d("meas"));
  EXPECT_TRUE(
      back.verify(crypto::HmacVerifier(net::derive_quote_key(root, "sw3"))));
  // The derived key is place-scoped: sw4's key must not verify sw3's quote.
  EXPECT_FALSE(
      back.verify(crypto::HmacVerifier(net::derive_quote_key(root, "sw4"))));

  crypto::Bytes trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)net::Quote::deserialize(view(trailing)),
               std::invalid_argument);
  EXPECT_THROW((void)net::Quote::deserialize(
                   crypto::BytesView{bytes.data(), bytes.size() - 1}),
               std::invalid_argument);
}

TEST(NetWire, HelloAndAckRoundtrip) {
  net::HelloMsg hello;
  hello.role = net::SessionRole::kRelyingParty;
  hello.want_mutual = true;
  hello.place = "rp0";
  hello.session_nonce = nonce_of(1);
  hello.quote = {1, 2, 3};
  const crypto::Bytes hb = hello.serialize();
  const net::HelloMsg h2 = net::HelloMsg::deserialize(view(hb));
  EXPECT_EQ(h2.role, net::SessionRole::kRelyingParty);
  EXPECT_TRUE(h2.want_mutual);
  EXPECT_EQ(h2.place, "rp0");
  EXPECT_EQ(h2.session_nonce.value, nonce_of(1).value);
  EXPECT_EQ(h2.quote, hello.quote);

  net::HelloAckMsg ack;
  ack.admitted = false;
  ack.reject = RejectReason::kReplayedNonce;
  ack.server_nonce = nonce_of(2);
  const crypto::Bytes ab = ack.serialize();
  const net::HelloAckMsg a2 = net::HelloAckMsg::deserialize(view(ab));
  EXPECT_FALSE(a2.admitted);
  EXPECT_EQ(a2.reject, RejectReason::kReplayedNonce);
  EXPECT_EQ(a2.server_nonce.value, nonce_of(2).value);

  net::ChallengeFrame ch;
  ch.place = "sw9";
  ch.challenge.nonce = nonce_of(3);
  ch.challenge.appraiser = "appraiser";
  ch.challenge.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  const crypto::Bytes cb = ch.serialize();
  const net::ChallengeFrame c2 = net::ChallengeFrame::deserialize(view(cb));
  EXPECT_EQ(c2.place, "sw9");
  EXPECT_EQ(c2.challenge.nonce.value, nonce_of(3).value);
  EXPECT_EQ(c2.challenge.appraiser, "appraiser");
}

TEST(NetWire, SessionIdAndQuoteKeyDerivationsAreStable) {
  const crypto::Digest id1 = net::session_id("sw0", nonce_of(1), nonce_of(2));
  EXPECT_EQ(id1, net::session_id("sw0", nonce_of(1), nonce_of(2)));
  EXPECT_NE(id1, net::session_id("sw1", nonce_of(1), nonce_of(2)));
  EXPECT_NE(id1, net::session_id("sw0", nonce_of(2), nonce_of(1)));

  const crypto::Digest root = d("root");
  EXPECT_EQ(net::derive_quote_key(root, "a"), net::derive_quote_key(root, "a"));
  EXPECT_NE(net::derive_quote_key(root, "a"), net::derive_quote_key(root, "b"));
  EXPECT_NE(net::derive_quote_key(root, "a"),
            net::derive_quote_key(d("other-root"), "a"));
}

// ------------------------------------------------- sans-I/O session matrix --

// A server-side admission config with real crypto: per-place derived
// quote keys, a golden measurement, a shared replay registry.
struct AdmissionRig {
  crypto::Digest quote_root = d("rig-quote-root");
  crypto::Digest golden = d("rig-golden");
  crypto::NonceRegistry hello_nonces{0xAD1'0001};
  crypto::NonceRegistry server_nonces{0xAD1'0002};
  crypto::Digest appraiser_key = d("rig-appraiser-key");
  crypto::Digest appraiser_meas = d("rig-appraiser-meas");
  net::ServerSessionConfig config;

  AdmissionRig() {
    config.check_quote = [this](const net::Quote& q) {
      const crypto::HmacVerifier v(net::derive_quote_key(quote_root, q.place));
      if (!q.verify(v)) return RejectReason::kBadQuote;
      if (!(q.measurement == golden)) return RejectReason::kBadQuote;
      return RejectReason::kNone;
    };
    config.admit_nonce = [this](const crypto::Nonce& n) {
      return hello_nonces.observe(n);
    };
    config.make_server_nonce = [this] { return server_nonces.issue(); };
    config.counter_quote = [this](const crypto::Nonce& client_nonce) {
      crypto::HmacSigner s(appraiser_key);
      return net::Quote::make("appraiser", client_nonce, appraiser_meas, s);
    };
  }

  net::ClientSessionConfig client_config(const std::string& place,
                                         bool mutual = false,
                                         bool wrong_quote_key = false) {
    net::ClientSessionConfig c;
    c.place = place;
    c.role = net::SessionRole::kSwitch;
    c.want_mutual = mutual;
    const crypto::Digest root = wrong_quote_key ? d("rogue-root") : quote_root;
    c.make_quote = [this, place, root](const crypto::Nonce& n) {
      crypto::HmacSigner s(net::derive_quote_key(root, place));
      return net::Quote::make(place, n, golden, s);
    };
    c.verify_counter_quote = [this](const net::Quote& q) {
      return q.verify(crypto::HmacVerifier(appraiser_key)) &&
             q.measurement == appraiser_meas;
    };
    return c;
  }
};

// Ferry outbox bytes between the two state machines until quiescent.
void shuttle(net::ClientSession& client, net::ServerSession& server) {
  for (;;) {
    crypto::Bytes to_server;
    to_server.swap(client.outbox());
    crypto::Bytes to_client;
    to_client.swap(server.outbox());
    if (to_server.empty() && to_client.empty()) return;
    if (!to_server.empty()) (void)server.on_bytes(view(to_server));
    // The server may have queued an ack in response; pick it up next pass.
    if (!to_client.empty()) (void)client.on_bytes(view(to_client));
  }
}

TEST(NetSession, GoodQuoteEstablishesBothEnds) {
  AdmissionRig rig;
  net::ServerSession server(&rig.config);
  net::ClientSession client(rig.client_config("sw0"), nonce_of(100));
  client.start();
  shuttle(client, server);
  EXPECT_TRUE(server.established());
  EXPECT_TRUE(client.established());
  EXPECT_EQ(server.place(), "sw0");
  // Both ends derive the same session id from the nonce exchange.
  EXPECT_EQ(server.id(), client.id());
}

TEST(NetSession, BadQuoteSignatureRejected) {
  AdmissionRig rig;
  net::ServerSession server(&rig.config);
  net::ClientSession client(rig.client_config("sw0", false, true),
                            nonce_of(101));
  client.start();
  shuttle(client, server);
  EXPECT_EQ(server.state(), net::ServerSession::State::kRejected);
  EXPECT_EQ(server.reject_reason(), RejectReason::kBadQuote);
  EXPECT_FALSE(client.established());
  EXPECT_EQ(client.reject_reason(), RejectReason::kBadQuote);
}

TEST(NetSession, WrongMeasurementRejected) {
  AdmissionRig rig;
  auto cfg = rig.client_config("sw0");
  const crypto::Digest root = rig.quote_root;
  cfg.make_quote = [root](const crypto::Nonce& n) {
    crypto::HmacSigner s(net::derive_quote_key(root, "sw0"));
    return net::Quote::make("sw0", n, d("not-the-golden"), s);
  };
  net::ServerSession server(&rig.config);
  net::ClientSession client(std::move(cfg), nonce_of(102));
  client.start();
  shuttle(client, server);
  EXPECT_EQ(server.reject_reason(), RejectReason::kBadQuote);
}

TEST(NetSession, QuoteMustBindHelloNonceAndPlace) {
  AdmissionRig rig;
  // Sign a perfectly valid quote — for a different nonce than the hello
  // carries (a replayed quote). Binding check must reject before the
  // quote policy even runs.
  auto cfg = rig.client_config("sw0");
  const crypto::Digest root = rig.quote_root;
  const crypto::Digest golden = rig.golden;
  cfg.make_quote = [root, golden](const crypto::Nonce&) {
    crypto::HmacSigner s(net::derive_quote_key(root, "sw0"));
    return net::Quote::make("sw0", nonce_of(999), golden, s);
  };
  net::ServerSession server(&rig.config);
  net::ClientSession client(std::move(cfg), nonce_of(103));
  client.start();
  shuttle(client, server);
  EXPECT_EQ(server.reject_reason(), RejectReason::kBadQuote);
}

TEST(NetSession, ReplayedSessionNonceRejected) {
  AdmissionRig rig;
  net::ServerSession s1(&rig.config);
  net::ClientSession c1(rig.client_config("sw0"), nonce_of(104));
  c1.start();
  shuttle(c1, s1);
  ASSERT_TRUE(s1.established());

  // Same session nonce again (a replayed hello, even from the same place).
  net::ServerSession s2(&rig.config);
  net::ClientSession c2(rig.client_config("sw0"), nonce_of(104));
  c2.start();
  shuttle(c2, s2);
  EXPECT_EQ(s2.reject_reason(), RejectReason::kReplayedNonce);
}

TEST(NetSession, MutualModeVerifiesCounterQuote) {
  AdmissionRig rig;
  net::ServerSession server(&rig.config);
  net::ClientSession client(rig.client_config("sw0", /*mutual=*/true),
                            nonce_of(105));
  client.start();
  shuttle(client, server);
  EXPECT_TRUE(server.established());
  EXPECT_TRUE(client.established());

  // A forged counter-quote (wrong appraiser key) fails on the client.
  AdmissionRig forged;
  forged.quote_root = rig.quote_root;  // client quotes still admit
  forged.golden = rig.golden;
  forged.appraiser_key = d("imposter-key");
  net::ServerSession bad_server(&forged.config);
  auto cfg = rig.client_config("sw0", /*mutual=*/true);
  net::ClientSession c2(std::move(cfg), nonce_of(106));
  c2.start();
  shuttle(c2, bad_server);
  EXPECT_TRUE(bad_server.established()) << "server side admitted the switch";
  EXPECT_FALSE(c2.established());
  EXPECT_EQ(c2.state(), net::ClientSession::State::kFailed);
}

TEST(NetSession, RelyingPartyRoleCanBeRefused) {
  AdmissionRig rig;
  rig.config.admit_relying_parties = false;
  net::ServerSession server(&rig.config);
  net::ClientSessionConfig cfg;
  cfg.place = "rp0";
  cfg.role = net::SessionRole::kRelyingParty;
  net::ClientSession client(std::move(cfg), nonce_of(107));
  client.start();
  shuttle(client, server);
  EXPECT_EQ(server.reject_reason(), RejectReason::kRoleRefused);
  EXPECT_EQ(client.reject_reason(), RejectReason::kRoleRefused);
}

TEST(NetSession, EvidenceOnRelyingPartySessionIsProtocolError) {
  AdmissionRig rig;
  net::ServerSession server(&rig.config);
  net::ClientSessionConfig cfg;
  cfg.place = "rp0";
  cfg.role = net::SessionRole::kRelyingParty;
  net::ClientSession client(std::move(cfg), nonce_of(108));
  client.start();
  shuttle(client, server);
  ASSERT_TRUE(server.established());
  client.send_evidence(nonce_of(109), view(crypto::Bytes{1, 2, 3}));
  crypto::Bytes bytes;
  bytes.swap(client.outbox());
  EXPECT_FALSE(server.on_bytes(view(bytes)));
  EXPECT_EQ(server.state(), net::ServerSession::State::kClosed);
}

// The protocol-level torn-read differential: run a whole conversation
// (hello, ack, two evidence rounds, results) with the server-bound
// stream split at every byte position; the server's decoded events and
// final state must be identical to the unsplit run.
TEST(NetSession, ConversationInvariantUnderEveryStreamSplit) {
  AdmissionRig rig;

  struct Observed {
    bool established = false;
    std::uint64_t rounds = 0;
    std::vector<crypto::Digest> nonces;
  };
  // Capture the client's full server-bound byte stream once.
  crypto::Bytes stream;
  {
    net::ClientSession client(rig.client_config("swT"), nonce_of(120));
    client.start();
    stream.insert(stream.end(), client.outbox().begin(),
                  client.outbox().end());
    client.outbox().clear();
    // Evidence rounds are queued without waiting for the ack — the
    // stream is what matters here, not the client's view.
    client.send_evidence(nonce_of(121), view(crypto::Bytes{0xAA}));
    client.send_evidence(nonce_of(122), view(crypto::Bytes(600, 0xBB)));
    stream.insert(stream.end(), client.outbox().begin(),
                  client.outbox().end());
  }

  const auto run = [&rig](const crypto::Bytes& bytes, std::size_t split) {
    // Fresh registries per run so the replayed hello nonce admits.
    AdmissionRig fresh;
    fresh.quote_root = rig.quote_root;
    fresh.golden = rig.golden;
    net::ServerSession server(&fresh.config);
    EXPECT_TRUE(server.on_bytes(crypto::BytesView{bytes.data(), split}));
    EXPECT_TRUE(server.on_bytes(
        crypto::BytesView{bytes.data() + split, bytes.size() - split}));
    Observed obs;
    obs.established = server.established();
    obs.rounds = server.rounds_received();
    for (const auto& ev : server.take_evidence()) {
      obs.nonces.push_back(ev.nonce.value);
    }
    return obs;
  };

  const Observed expect = run(stream, stream.size());
  ASSERT_TRUE(expect.established);
  ASSERT_EQ(expect.rounds, 2u);
  ASSERT_EQ(expect.nonces.size(), 2u);

  for (std::size_t split = 0; split < stream.size(); ++split) {
    const Observed got = run(stream, split);
    ASSERT_EQ(got.established, expect.established) << "split " << split;
    ASSERT_EQ(got.rounds, expect.rounds) << "split " << split;
    ASSERT_EQ(got.nonces, expect.nonces) << "split " << split;
  }
}

// --------------------------------------------------------- loopback e2e --

// Shared key material for the socket tests, mirroring how a deployment
// provisions both ends out of band.
struct E2eKeys {
  crypto::Digest quote_root = d("e2e-quote-root");
  crypto::Digest golden = d("e2e-golden");
  crypto::Digest evidence_root = d("e2e-evidence-root");
  crypto::Digest cert_key = d("e2e-cert-key");
  crypto::Digest appraiser_meas = d("e2e-appraiser-meas");

  [[nodiscard]] net::ServerConfig server_config() const {
    net::ServerConfig sc;
    sc.reactors = 2;
    sc.appraiser_workers = 1;
    sc.quote_root_key = quote_root;
    sc.golden_measurement = golden;
    sc.evidence_root_key = evidence_root;
    sc.cert_key = cert_key;
    sc.appraiser_measurement = appraiser_meas;
    return sc;
  }

  [[nodiscard]] std::vector<crypto::Digest> device_keys() const {
    return pipeline::PeraPipeline::shard_keys(evidence_root,
                                              "pera.net.device", 16);
  }

  [[nodiscard]] net::ClientIdentity identity(const std::string& place,
                                             std::uint64_t seed) const {
    net::ClientIdentity id;
    id.place = place;
    id.quote_root_key = quote_root;
    id.measurement = golden;
    id.device_key = device_keys()[0];
    id.cert_key = cert_key;
    id.appraiser_golden = appraiser_meas;
    id.nonce_seed = seed;
    return id;
  }
};

TEST(NetLoopback, SingleClientRoundGetsSignedVerdict) {
  E2eKeys keys;
  net::AppraiserServer server(keys.server_config());
  server.start();

  net::SwitchClient client(keys.identity("sw0", 0xE2E'0001));
  ASSERT_TRUE(client.connect(server.port(), 2000)) << client.error_text();
  const auto cert = client.round(2000);
  ASSERT_TRUE(cert.has_value());
  EXPECT_TRUE(cert->verdict);
  EXPECT_EQ(cert->appraiser, "appraiser");
  EXPECT_TRUE(cert->verify(crypto::HmacVerifier(keys.cert_key)));

  client.close();
  server.stop();
  const net::ServerStats st = server.stats();
  EXPECT_EQ(st.sessions_accepted, 1u);
  EXPECT_EQ(st.rounds_appraised, 1u);
  EXPECT_EQ(st.results_sent, 1u);
}

TEST(NetLoopback, MutualModeHandsBackCounterQuote) {
  E2eKeys keys;
  net::AppraiserServer server(keys.server_config());
  server.start();

  net::ClientIdentity id = keys.identity("sw0", 0xE2E'0002);
  id.mutual = true;
  net::SwitchClient client(id);
  ASSERT_TRUE(client.connect(server.port(), 2000)) << client.error_text();
  EXPECT_TRUE(client.established());

  // Against a server claiming a different measurement, the client's
  // counter-quote check fails even though the server admitted it.
  net::ServerConfig imposter = keys.server_config();
  imposter.appraiser_measurement = d("imposter-meas");
  net::AppraiserServer server2(imposter);
  server2.start();
  net::ClientIdentity id2 = keys.identity("sw1", 0xE2E'0003);
  id2.mutual = true;
  net::SwitchClient client2(id2);
  EXPECT_FALSE(client2.connect(server2.port(), 2000));
  server2.stop();
  server.stop();
}

TEST(NetLoopback, BadQuoteIsRejectedAtTheDoor) {
  E2eKeys keys;
  net::AppraiserServer server(keys.server_config());
  server.start();

  net::ClientIdentity id = keys.identity("sw0", 0xE2E'0004);
  id.measurement = d("tampered-program");  // quote signs a wrong measurement
  net::SwitchClient client(id);
  EXPECT_FALSE(client.connect(server.port(), 2000));
  EXPECT_EQ(client.reject_reason(), RejectReason::kBadQuote);

  // Unknown place when an allowlist is configured.
  net::ServerConfig strict = keys.server_config();
  strict.known_places = {"swA"};
  net::AppraiserServer server2(strict);
  server2.start();
  net::SwitchClient ok(keys.identity("swA", 0xE2E'0005));
  EXPECT_TRUE(ok.connect(server2.port(), 2000)) << ok.error_text();
  net::SwitchClient stranger(keys.identity("swB", 0xE2E'0006));
  EXPECT_FALSE(stranger.connect(server2.port(), 2000));
  EXPECT_EQ(stranger.reject_reason(), RejectReason::kUnknownPlace);
  ok.close();
  server2.stop();
  server.stop();
  const net::ServerStats st = server.stats();
  EXPECT_GE(st.sessions_rejected, 1u);
}

TEST(NetLoopback, WrongDeviceKeyYieldsFalseVerdict) {
  E2eKeys keys;
  net::AppraiserServer server(keys.server_config());
  server.start();

  // Quote is fine (admission passes) but evidence is signed with a key
  // the appraiser was never provisioned with: verdict must be false —
  // the transport layer authenticates the session, the appraiser still
  // judges every round.
  net::ClientIdentity id = keys.identity("sw0", 0xE2E'0007);
  id.device_key = d("rogue-device-key");
  net::SwitchClient client(id);
  ASSERT_TRUE(client.connect(server.port(), 2000)) << client.error_text();
  const auto cert = client.round(2000);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(cert->verdict);
  EXPECT_TRUE(cert->verify(crypto::HmacVerifier(keys.cert_key)));
  client.close();
  server.stop();
}

TEST(NetLoopback, FleetOfConcurrentSessionsCompletesRounds) {
  E2eKeys keys;
  net::ServerConfig sc = keys.server_config();
  sc.reactors = 2;
  net::AppraiserServer server(sc);
  server.start();

  net::SwitchFleet::Config fc;
  fc.port = server.port();
  fc.connections = 64;
  fc.depth = 2;
  fc.device_keys = keys.device_keys();
  fc.quote_root_key = keys.quote_root;
  fc.measurement = keys.golden;
  net::SwitchFleet fleet(fc);
  ASSERT_EQ(fleet.establish(10'000), 64u);

  const net::SwitchFleet::RunStats rs = fleet.run_rounds(256, 20'000);
  EXPECT_EQ(rs.rounds_completed, 256u);
  EXPECT_EQ(rs.verdict_failures, 0u);
  EXPECT_EQ(rs.session_failures, 0u);
  EXPECT_EQ(rs.latency_us.size(), 256u);
  fleet.shutdown();
  server.stop();

  const net::ServerStats st = server.stats();
  EXPECT_EQ(st.sessions_accepted, 64u);
  EXPECT_GE(st.rounds_appraised, 256u);
}

// ------------------------------------------------- challenge relay + RP --

TEST(NetRelay, TransportRoundOverSocketBackendCompletes) {
  E2eKeys keys;
  net::AppraiserServer server(keys.server_config());
  server.start();

  // The switch being attested: serves relayed challenges in a thread.
  net::SwitchClient sw(keys.identity("sw0", 0xE2E'0101));
  ASSERT_TRUE(sw.connect(server.port(), 2000)) << sw.error_text();
  std::atomic<bool> stop{false};
  std::thread server_thread([&] { (void)sw.serve(15'000, &stop); });

  // The relying party: EvidenceTransport over a SocketBackend session.
  net::SocketBackend::Config bc;
  bc.port = server.port();
  net::SocketBackend backend(bc);
  crypto::KeyStore rp_keys(0xE2E'0102);
  rp_keys.provision_hmac_key("appraiser", keys.cert_key);
  ctrl::TransportConfig tc;
  tc.timeout = 2'000 * netsim::kMillisecond;
  tc.max_attempts = 2;
  ctrl::EvidenceTransport transport(backend, "appraiser", rp_keys, tc,
                                    0xE2E'0103);
  backend.set_result_sink([&](const ra::Certificate& cert) {
    (void)transport.on_result(cert, backend.now());
  });
  ASSERT_TRUE(backend.connect()) << backend.error_text();

  std::atomic<int> done{0};
  ctrl::RoundOutcome outcome;
  backend.post([&] {
    transport.begin_round(
        "sw0", nac::mask_of(nac::EvidenceDetail::kProgram),
        [&](const std::string&, const ctrl::RoundOutcome& out) {
          outcome = out;
          done.store(1, std::memory_order_release);
        });
  });
  for (int i = 0; i < 500 && done.load(std::memory_order_acquire) == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(done.load(), 1) << "relay round never completed";
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.verdict);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_GT(outcome.rtt, 0);

  // A round against a place with no session exhausts its retries.
  std::atomic<int> done2{0};
  ctrl::RoundOutcome miss;
  backend.post([&] {
    transport.begin_round(
        "no-such-switch", nac::mask_of(nac::EvidenceDetail::kProgram),
        [&](const std::string&, const ctrl::RoundOutcome& out) {
          miss = out;
          done2.store(1, std::memory_order_release);
        });
  });
  for (int i = 0; i < 700 && done2.load(std::memory_order_acquire) == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(done2.load(), 1);
  EXPECT_FALSE(miss.completed);
  EXPECT_EQ(miss.attempts, 2u);

  stop.store(true, std::memory_order_release);
  server_thread.join();
  backend.stop();
  sw.close();
  server.stop();
  const net::ServerStats st = server.stats();
  EXPECT_GE(st.challenges_relayed, 1u);
  EXPECT_GE(st.challenges_unrouted, 1u);
}

// ------------------------------------------- Sim-vs-Socket verdict parity --

// The same evidence bytes must get the same verdict from the in-process
// ParallelAppraiser (the sim/pipeline path) and from a socket round trip
// through the server (which routes through that same appraiser).
TEST(NetParity, SimAndSocketAgreeOnEveryPayload) {
  E2eKeys keys;
  const std::vector<crypto::Digest> dev = keys.device_keys();
  crypto::HmacSigner good_signer(dev[0]);
  crypto::HmacSigner rogue_signer(d("rogue"));

  struct Case {
    const char* name;
    crypto::Bytes evidence;
  };
  std::vector<Case> cases;
  cases.push_back({"valid", net::make_signed_evidence("sw0", keys.golden,
                                                      nonce_of(200),
                                                      good_signer)});
  cases.push_back({"bad-signer", net::make_signed_evidence(
                                     "sw0", keys.golden, nonce_of(201),
                                     rogue_signer)});
  cases.push_back({"garbage", crypto::Bytes{0xDE, 0xAD, 0xBE, 0xEF}});

  // Sim-side appraisal: stream each payload through a ParallelAppraiser
  // exactly as the pipeline does.
  std::vector<bool> sim_verdicts(cases.size(), false);
  {
    pipeline::AppraiserOptions opts;
    opts.workers = 1;
    std::mutex mu;
    opts.record_hook = [&](const pipeline::EvidenceItem& item,
                           pipeline::AppraisedRecord&& rec) {
      const std::lock_guard<std::mutex> lock(mu);
      sim_verdicts[item.flow] = rec.decoded && rec.sig_ok;
    };
    pipeline::ParallelAppraiser app(keys.evidence_root, "pera.net.device", 16,
                                    opts);
    app.start(1);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      pipeline::EvidenceItem item;
      item.flow = i;
      item.seq = i;
      item.evidence = cases[i].evidence;
      item.nonce = nonce_of(210 + i);
      ASSERT_TRUE(app.accept(0, std::move(item)));
    }
    app.finish();
  }
  EXPECT_TRUE(sim_verdicts[0]);
  EXPECT_FALSE(sim_verdicts[1]);
  EXPECT_FALSE(sim_verdicts[2]);

  // Socket side: send the same bytes as raw evidence rounds on one
  // admitted session and collect per-nonce verdicts.
  net::AppraiserServer server(keys.server_config());
  server.start();
  net::SwitchClient client(keys.identity("sw0", 0xE2E'0201));
  ASSERT_TRUE(client.connect(server.port(), 2000)) << client.error_text();
  net::ClientSession* session = client.session();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    session->send_evidence(nonce_of(220 + i), view(cases[i].evidence));
  }
  // Pump via serve() until all results arrive.
  std::vector<bool> socket_verdicts(cases.size(), false);
  std::size_t got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got < cases.size() &&
         std::chrono::steady_clock::now() < deadline) {
    (void)client.serve(50, nullptr);
    for (const ra::Certificate& cert : session->take_results()) {
      for (std::size_t i = 0; i < cases.size(); ++i) {
        if (cert.nonce.value == nonce_of(220 + i).value) {
          socket_verdicts[i] = cert.verdict;
          ++got;
        }
      }
    }
  }
  ASSERT_EQ(got, cases.size()) << "socket rounds did not all complete";
  client.close();
  server.stop();

  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(socket_verdicts[i], sim_verdicts[i])
        << "verdict diverged for payload: " << cases[i].name;
  }
}

}  // namespace
