// Tests for the attestation-coverage static analyzer (V6-V9): state-object
// metadata on dataplane programs, attest-site extraction from Copland
// policies, cadence-config parsing, each coverage pass, and the canonical
// (sorted) diagnostic rendering the pera_verify CLI relies on — including
// golden-string tests for the JSON renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "copland/analysis.h"
#include "copland/parser.h"
#include "ctrl/cadence.h"
#include "dataplane/builder.h"
#include "dataplane/nf.h"
#include "dataplane/p4mini.h"
#include "nac/detail.h"
#include "netsim/time.h"
#include "pera/measurement.h"
#include "verify/coverage.h"
#include "verify/diagnostics.h"

namespace pera {
namespace {

using dataplane::DataplaneProgram;
using dataplane::EvictionPolicy;
using dataplane::StateGuard;
using dataplane::StateObject;
using verify::CoverageModel;
using verify::DiagnosticEngine;
using verify::Severity;
using verify::Span;

std::size_t count_code(const DiagnosticEngine& de, const char* code,
                       Severity sev) {
  return static_cast<std::size_t>(std::count_if(
      de.diagnostics().begin(), de.diagnostics().end(),
      [&](const verify::Diagnostic& d) {
        return d.code == code && d.severity == sev;
      }));
}

std::size_t errors_of(const DiagnosticEngine& de, const char* code) {
  return count_code(de, code, Severity::kError);
}

copland::Request parse(const char* policy) {
  return copland::parse_request(policy);
}

// --- state-object metadata ---------------------------------------------------

TEST(StateObjects, StatefulNatIsFullyGuarded) {
  dataplane::StatefulNat nat(dataplane::StatefulNat::Config{.capacity = 64});
  const auto objs = nat.sw().program().state_objects();
  ASSERT_EQ(objs.size(), 3u);  // nat table + two per-flow registers
  for (const auto& obj : objs) {
    EXPECT_TRUE(obj.packet_writable) << obj.name;
    EXPECT_TRUE(obj.guarded) << obj.name;
    EXPECT_EQ(obj.capacity, 64u) << obj.name;
  }
  const auto table = std::find_if(objs.begin(), objs.end(), [](const auto& o) {
    return o.kind == StateObject::Kind::kTable;
  });
  ASSERT_NE(table, objs.end());
  EXPECT_EQ(table->name, "nat");
}

TEST(StateObjects, P4MiniMutationAttributes) {
  const auto prog = dataplane::compile_p4mini(R"(
program attrs v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
register guarded_reg[8] packet guard saturate;
register plain_reg[8];
action noop() { }
table learn {
  key { eth.src: exact; }
  state packet;
  capacity 128;
  evict lru;
  default noop();
}
)");
  const auto* learn = prog->table("learn");
  ASSERT_NE(learn, nullptr);
  EXPECT_TRUE(learn->packet_writable());
  EXPECT_EQ(learn->capacity(), 128u);
  EXPECT_EQ(learn->eviction(), EvictionPolicy::kLru);

  const auto& regs = prog->register_decls();
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_TRUE(regs[0].packet_writable);
  EXPECT_EQ(regs[0].guard, StateGuard::kSaturate);
  EXPECT_FALSE(regs[1].packet_writable);
  EXPECT_EQ(regs[1].guard, StateGuard::kNone);
}

TEST(StateObjects, CoveringLevels) {
  StateObject table{StateObject::Kind::kTable, "t", 0, false, false};
  StateObject reg{StateObject::Kind::kRegister, "r", 0, false, false};
  EXPECT_EQ(pera::covering_level(table), nac::EvidenceDetail::kTables);
  EXPECT_EQ(pera::covering_level(reg), nac::EvidenceDetail::kProgState);
}

// --- attest-site extraction --------------------------------------------------

TEST(AttestSites, SignedSiteWithNonceFlow) {
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Tables) -> !] +<+ @Appraiser [appraise]");
  const auto sites =
      copland::find_attest_sites(req.body, req.relying_party, req.params);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].place, "edge1");
  EXPECT_TRUE(sites[0].covered_by_sign);
  EXPECT_TRUE(sites[0].initial_evidence_reaches);
  ASSERT_EQ(sites[0].bound_params.size(), 1u);
  EXPECT_EQ(sites[0].bound_params[0], "n");
  ASSERT_EQ(sites[0].targets.size(), 1u);
  EXPECT_EQ(sites[0].targets[0], "Tables");
}

TEST(AttestSites, MinusPassDropsInitialEvidence) {
  const auto req = parse(
      "*rp<n> : @edge1 [attest(Tables) -> !] -<+ @Appraiser [appraise]");
  const auto sites =
      copland::find_attest_sites(req.body, req.relying_party, req.params);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_TRUE(sites[0].covered_by_sign);
  EXPECT_FALSE(sites[0].initial_evidence_reaches);
  EXPECT_TRUE(sites[0].bound_params.empty());
}

TEST(AttestSites, UnsignedSiteIsNotCovered) {
  const auto req = parse(
      "*rp<n> : @edge1 [attest(Program)] +<+ @Appraiser [appraise]");
  const auto sites =
      copland::find_attest_sites(req.body, req.relying_party, req.params);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_FALSE(sites[0].covered_by_sign);
}

TEST(AttestSites, SignAtOuterPlaceDoesNotCoverInnerSite) {
  // The '!' runs at rp, not inside edge1's pipeline: edge1's evidence
  // crosses unsigned (V4's finding) and the site stays uncovered.
  const auto req =
      parse("*rp : @edge1 [attest(Program)] -> !");
  const auto sites = copland::find_attest_sites(req.body, req.relying_party);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_FALSE(sites[0].covered_by_sign);
}

// --- cadence configuration ---------------------------------------------------

TEST(Cadence, ParseDuration) {
  EXPECT_EQ(ctrl::parse_duration("250ms"), 250 * netsim::kMillisecond);
  EXPECT_EQ(ctrl::parse_duration("2s"), 2 * netsim::kSecond);
  EXPECT_EQ(ctrl::parse_duration("1500us"), 1500 * netsim::kMicrosecond);
  EXPECT_EQ(ctrl::parse_duration("7ns"), 7);
  EXPECT_THROW((void)ctrl::parse_duration("10"), std::invalid_argument);
  EXPECT_THROW((void)ctrl::parse_duration("ms"), std::invalid_argument);
  EXPECT_THROW((void)ctrl::parse_duration("-5s"), std::invalid_argument);
}

TEST(Cadence, ParseConfigExplicitKeys) {
  const auto spec = ctrl::parse_cadence(
      "# comment\n"
      "tables = 500ms\n"
      "state  = 100ms\n"
      "levels = Hardware+Program+Tables+State\n"
      "budget = 1s\n");
  EXPECT_EQ(spec.cadence.tables, 500 * netsim::kMillisecond);
  EXPECT_EQ(spec.cadence.prog_state, 100 * netsim::kMillisecond);
  EXPECT_TRUE(nac::has_detail(spec.levels, nac::EvidenceDetail::kProgState));
  ASSERT_TRUE(spec.staleness_budget.has_value());
  EXPECT_EQ(*spec.staleness_budget, netsim::kSecond);
}

TEST(Cadence, WorkloadDerivesBaseAndExplicitKeysOverride) {
  const auto spec = ctrl::parse_cadence(
      "pps = 100000\n"
      "table_updates_per_second = 50\n"
      "tables = 42ms\n");
  // The explicit key wins over the workload-derived interval...
  EXPECT_EQ(spec.cadence.tables, 42 * netsim::kMillisecond);
  // ...while underived levels still come from recommend_cadence.
  pera::WorkloadProfile wl;
  wl.packets_per_second = 100000;
  wl.table_updates_per_second = 50;
  EXPECT_EQ(spec.cadence.hardware, pera::recommend_cadence(wl).hardware);
}

TEST(Cadence, RejectsUnknownKeysAndLevels) {
  EXPECT_THROW((void)ctrl::parse_cadence("bogus = 1s\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ctrl::parse_cadence("levels = Hardware+Bogus\n"),
               std::invalid_argument);
}

TEST(Cadence, SchedulerConfigMirrorsSpec) {
  const auto spec = ctrl::parse_cadence("tables = 250ms\nlevels = Tables\n");
  const auto cfg = ctrl::scheduler_config_from(spec);
  EXPECT_EQ(cfg.cadence.tables, 250 * netsim::kMillisecond);
  EXPECT_EQ(cfg.levels, spec.levels);
}

// --- V6: measurement coverage ------------------------------------------------

TEST(CoverageV6, UncoveredMutableStateIsAnError) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Program) -> !] +<+ @Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_measurement_coverage(req, model, de);
  // nat table (Tables) + two registers (ProgState) all uncovered.
  EXPECT_EQ(errors_of(de, verify::kCodeCoverage), 3u);
}

TEST(CoverageV6, FullCoveragePasses) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Program, Tables, State) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_measurement_coverage(req, model, de);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(CoverageV6, ParamMappingSuppliesCoverage) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  model.param_details["X"] = nac::EvidenceDetail::kProgram |
                             nac::EvidenceDetail::kTables |
                             nac::EvidenceDetail::kProgState;
  const auto req = parse(
      "*rp<n, X> : @edge1 [attest(n, X) -> !] +<+ @Appraiser [appraise]");
  EXPECT_EQ(verify::attested_detail_mask(req, model), model.param_details["X"]);
  DiagnosticEngine de;
  verify::check_measurement_coverage(req, model, de);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(CoverageV6, NeverAttestingIsAnError) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  const auto req = parse("*rp : @edge1 [noop -> !] +<+ @Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_measurement_coverage(req, model, de);
  EXPECT_EQ(errors_of(de, verify::kCodeCoverage), 1u);
}

TEST(CoverageV6, MissingProgramLevelIsAWarning) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Tables, State) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_measurement_coverage(req, model, de);
  EXPECT_EQ(de.error_count(), 0u);  // every state object is covered
  EXPECT_EQ(count_code(de, verify::kCodeCoverage, Severity::kWarning), 1u);
}

// --- V7: staleness windows ---------------------------------------------------

TEST(CoverageV7, WindowOverBudgetIsAnError) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  model.cadence = ctrl::parse_cadence(
      "tables = 30s\nstate = 10s\nlevels = Hardware+Program+Tables+State\n");
  model.staleness_budget = 500 * netsim::kMillisecond;
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Program, Tables, State) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_staleness_windows(req, model, de);
  EXPECT_EQ(errors_of(de, verify::kCodeStaleness), 3u);
}

TEST(CoverageV7, UnscheduledLevelIsUnbounded) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  // State is attested but never gets a periodic track.
  model.cadence =
      ctrl::parse_cadence("tables = 100ms\nlevels = Hardware+Program+Tables\n");
  model.staleness_budget = netsim::kSecond;
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Program, Tables, State) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_staleness_windows(req, model, de);
  EXPECT_EQ(errors_of(de, verify::kCodeStaleness), 2u);  // both registers
}

TEST(CoverageV7, WithinBudgetPasses) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  model.cadence = ctrl::parse_cadence(
      "tables = 500ms\nstate = 100ms\n"
      "levels = Hardware+Program+Tables+State\nbudget = 1s\n");
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Program, Tables, State) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_staleness_windows(req, model, de);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(CoverageV7, NoCadenceIsANoteOnly) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Tables) -> !] +<+ @Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_staleness_windows(req, model, de);
  EXPECT_EQ(de.error_count(), 0u);
  EXPECT_EQ(count_code(de, verify::kCodeStaleness, Severity::kNote), 1u);
}

// --- V8: replay binding ------------------------------------------------------

TEST(CoverageV8, DroppedNonceIsAnError) {
  const auto req = parse(
      "*rp<n> : @edge1 [attest(Tables, State) -> !] -<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_replay_binding(req, CoverageModel{}, de);
  EXPECT_EQ(errors_of(de, verify::kCodeReplay), 1u);
}

TEST(CoverageV8, MutableDigestsNeedEpochOrParamBinding) {
  // Nonce reaches the pipeline, but the table digest itself is not bound
  // to the round: a stale digest from an earlier epoch substitutes.
  const auto unbound = parse(
      "*rp<n> : @edge1 [attest(Tables) -> !] +<+ @Appraiser [appraise]");
  DiagnosticEngine de1;
  verify::check_replay_binding(unbound, CoverageModel{}, de1);
  EXPECT_EQ(errors_of(de1, verify::kCodeReplay), 1u);

  const auto epoch = parse(
      "*rp<n> : @edge1 [attest(Tables, Epoch) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de2;
  verify::check_replay_binding(epoch, CoverageModel{}, de2);
  EXPECT_EQ(de2.error_count(), 0u);

  const auto param = parse(
      "*rp<n> : @edge1 [attest(n, Tables) -> !] +<+ @Appraiser [appraise]");
  DiagnosticEngine de3;
  verify::check_replay_binding(param, CoverageModel{}, de3);
  EXPECT_EQ(de3.error_count(), 0u);
}

TEST(CoverageV8, UnsignedSitesAreV4sDomain) {
  const auto req = parse(
      "*rp<n> : @edge1 [attest(Tables)] -<+ @Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_replay_binding(req, CoverageModel{}, de);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(CoverageV8, ImmutableTargetsNeedOnlyNonceFlow) {
  const auto req = parse(
      "*rp : @edge1 [attest(Hardware, Program) -> !] +<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  verify::check_replay_binding(req, CoverageModel{}, de);
  EXPECT_EQ(de.error_count(), 0u);
}

// --- V9: exhaustion reachability ---------------------------------------------

constexpr const char* kUnguardedFlowCache = R"(
program flowcache v1;
header eth  { dst:48; src:48; ethertype:16; }
header ipv4 { ver_ihl:8; dscp:8; len:16; ttl:8; proto:8; checksum:16;
              src:32; dst:32; }
parser {
  start:      extract eth select eth.ethertype { 0x0800: parse_ipv4;
                                                 default: accept; }
  parse_ipv4: extract ipv4;
}
register flow_hits[256];
action fwd(port)  { set_egress(port); }
action seen(slot) { reg_write(flow_hits, slot, 1); set_egress(2); }
table flows {
  key { ipv4.src: exact; }
  state packet;
  entry 0x0a000001 -> seen(0);
  default fwd(1);
}
)";

TEST(CoverageV9, UnguardedFlowCacheIsFlagged) {
  const auto prog = dataplane::compile_p4mini(kUnguardedFlowCache);
  CoverageModel model;
  model.program = prog.get();
  DiagnosticEngine de;
  verify::check_exhaustion_reachability(model, de);
  EXPECT_EQ(errors_of(de, verify::kCodeExhaustion), 2u);  // table + register
}

TEST(CoverageV9, GuardedFlowCachePasses) {
  const auto prog = dataplane::compile_p4mini(R"(
program flowcache v2;
header eth  { dst:48; src:48; ethertype:16; }
header ipv4 { ver_ihl:8; dscp:8; len:16; ttl:8; proto:8; checksum:16;
              src:32; dst:32; }
parser {
  start:      extract eth select eth.ethertype { 0x0800: parse_ipv4;
                                                 default: accept; }
  parse_ipv4: extract ipv4;
}
register flow_hits[256] packet guard slots;
action fwd(port)  { set_egress(port); }
action seen(slot) { reg_write(flow_hits, slot, 1); set_egress(2); }
table flows {
  key { ipv4.src: exact; }
  state packet;
  capacity 256;
  evict lru;
  entry 0x0a000001 -> seen(0);
  default fwd(1);
}
)");
  CoverageModel model;
  model.program = prog.get();
  DiagnosticEngine de;
  verify::check_exhaustion_reachability(model, de);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(CoverageV9, StatefulNatIsTheGuardedExemplar) {
  dataplane::StatefulNat nat({});
  CoverageModel model;
  model.program = &nat.sw().program();
  DiagnosticEngine de;
  verify::check_exhaustion_reachability(model, de);
  EXPECT_EQ(de.error_count(), 0u);
}

TEST(CoverageV9, CannedProgramsHaveNoExhaustionErrors) {
  for (const auto& prog :
       {dataplane::make_router(), dataplane::make_firewall(),
        dataplane::make_acl(), dataplane::make_monitor()}) {
    CoverageModel model;
    model.program = prog.get();
    DiagnosticEngine de;
    verify::check_exhaustion_reachability(model, de);
    EXPECT_EQ(de.error_count(), 0u) << prog->name();
  }
}

TEST(CoverageV9, MonitorFixedSlotRegisterWarns) {
  const auto prog = dataplane::make_monitor();
  CoverageModel model;
  model.program = prog.get();
  DiagnosticEngine de;
  verify::check_exhaustion_reachability(model, de);
  EXPECT_EQ(count_code(de, verify::kCodeExhaustion, Severity::kWarning), 1u);
}

TEST(CoverageV9, UnparseableKeyHeaderDisarmsEntryActions) {
  // tcp is never parsed, so the entry's reg_write cannot be triggered by
  // a wire packet; only the harmless default runs.
  const auto prog = dataplane::compile_p4mini(R"(
program deadkey v1;
header eth { dst:48; src:48; ethertype:16; }
header tcp { sport:16; dport:16; }
parser {
  start:     extract eth;
  parse_tcp: extract tcp;
}
register hits[16];
action fwd(port)   { set_egress(port); }
action count(slot) { reg_write(hits, slot, 1); }
table t {
  key { tcp.dport: exact; }
  entry 80 -> count(0);
  default fwd(1);
}
)");
  CoverageModel model;
  model.program = prog.get();
  DiagnosticEngine de;
  verify::check_exhaustion_reachability(model, de);
  EXPECT_EQ(errors_of(de, verify::kCodeExhaustion), 0u);
  // ...and the tcp parse state is reported unreachable.
  EXPECT_GE(count_code(de, verify::kCodeExhaustion, Severity::kNote), 1u);
}

TEST(CoverageV9, UndeclaredRegisterWriteIsAnError) {
  const auto prog = dataplane::compile_p4mini(R"(
program ghostreg v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
action ghost() { reg_write(nowhere, 0, 1); }
table t {
  key { eth.dst: exact; }
  default ghost();
}
)");
  CoverageModel model;
  model.program = prog.get();
  DiagnosticEngine de;
  verify::check_exhaustion_reachability(model, de);
  EXPECT_EQ(errors_of(de, verify::kCodeExhaustion), 1u);
}

// --- check_coverage orchestration --------------------------------------------

TEST(CheckCoverage, NoProgramSkipsProgramChecksWithANote) {
  CoverageModel model;
  model.cadence = ctrl::parse_cadence("tables = 1s\n");
  const auto req = parse(
      "*rp<n> : @edge1 [attest(n, Tables) -> !] +<+ @Appraiser [appraise]");
  DiagnosticEngine de;
  EXPECT_TRUE(verify::check_coverage(req, model, de));
  EXPECT_EQ(count_code(de, verify::kCodeCoverage, Severity::kNote), 1u);
}

TEST(CheckCoverage, RunsAllFourPasses) {
  const auto prog = dataplane::compile_p4mini(kUnguardedFlowCache);
  CoverageModel model;
  model.program = prog.get();
  model.cadence = ctrl::parse_cadence(
      "tables = 30s\nstate = 10s\nlevels = Hardware+Program+Tables+State\n"
      "budget = 500ms\n");
  const auto req = parse(
      "*rp<n> : @edge1 [attest(Tables, State) -> !] -<+ "
      "@Appraiser [appraise]");
  DiagnosticEngine de;
  EXPECT_FALSE(verify::check_coverage(req, model, de));
  EXPECT_GE(errors_of(de, verify::kCodeStaleness), 1u);  // V7
  EXPECT_EQ(errors_of(de, verify::kCodeReplay), 1u);     // V8
  EXPECT_EQ(errors_of(de, verify::kCodeExhaustion), 2u); // V9
}

// --- canonical ordering and golden JSON rendering ----------------------------

TEST(Diagnostics, SortStableIsInsertionOrderIndependent) {
  const auto fill = [](DiagnosticEngine& de, bool reversed) {
    std::vector<verify::Diagnostic> diags = {
        {verify::kCodeExhaustion, Severity::kError, "b", {5, 9}, "p2"},
        {verify::kCodeCoverage, Severity::kWarning, "a", {5, 9}, "p1"},
        {verify::kCodeReplay, Severity::kNote, "c", {2, 4}, ""},
        {verify::kCodeCoverage, Severity::kError, "a", {5, 9}, "p1"},
    };
    if (reversed) std::reverse(diags.begin(), diags.end());
    for (auto& d : diags) de.report(std::move(d));
  };
  DiagnosticEngine forward;
  fill(forward, false);
  forward.sort_stable();
  DiagnosticEngine backward;
  fill(backward, true);
  backward.sort_stable();
  EXPECT_EQ(forward.render_json(), backward.render_json());
  EXPECT_EQ(forward.render_human(), backward.render_human());
  EXPECT_EQ(forward.diagnostics().front().code, verify::kCodeReplay);
}

TEST(Diagnostics, GoldenJsonAllSeveritiesAndSpans) {
  DiagnosticEngine de;
  de.error(verify::kCodeCoverage, "table \"nat\" uncovered", Span{10, 20},
           "edge1");
  de.warning(verify::kCodeExhaustion, "line1\nline2");
  de.note(verify::kCodeStaleness, "back\\slash");
  const char* expected =
      "{\n"
      "  \"diagnostics\": [\n"
      "    {\"code\": \"V6\", \"severity\": \"error\", \"message\": "
      "\"table \\\"nat\\\" uncovered\", \"span\": {\"begin\": 10, \"end\": "
      "20}, \"place\": \"edge1\"},\n"
      "    {\"code\": \"V9\", \"severity\": \"warning\", \"message\": "
      "\"line1\\nline2\", \"span\": {\"begin\": 0, \"end\": 0}},\n"
      "    {\"code\": \"V7\", \"severity\": \"note\", \"message\": "
      "\"back\\\\slash\", \"span\": {\"begin\": 0, \"end\": 0}}\n"
      "  ],\n"
      "  \"errors\": 1,\n"
      "  \"warnings\": 1,\n"
      "  \"ok\": false\n"
      "}\n";
  EXPECT_EQ(de.render_json(), expected);
}

TEST(Diagnostics, GoldenJsonEmptyEngine) {
  const DiagnosticEngine de;
  const char* expected =
      "{\n"
      "  \"diagnostics\": [],\n"
      "  \"errors\": 0,\n"
      "  \"warnings\": 0,\n"
      "  \"ok\": true\n"
      "}\n";
  EXPECT_EQ(de.render_json(), expected);
}

}  // namespace
}  // namespace pera
