// Tests for the extension modules: the NetKAT<->dataplane bridge
// (translation validation and refinement), Prim3 collector reachability,
// link failures and rerouting, batched evidence signing, and declarative
// appraisal policies.
#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "core/netkat_bridge.h"
#include "core/reachability.h"
#include "crypto/drbg.h"
#include "pera/batcher.h"
#include "ra/appraisal_policy.h"

namespace pera::core {
namespace {

using dataplane::make_tcp_packet;
using dataplane::PacketSpec;

// --- NetKAT bridge -----------------------------------------------------------------

std::vector<dataplane::RawPacket> packet_universe(std::uint64_t seed,
                                                  std::size_t n) {
  crypto::Drbg rng(seed);
  std::vector<dataplane::RawPacket> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacketSpec spec;
    spec.ingress_port = static_cast<std::uint32_t>(rng.uniform(8));
    // Mix of routable, unroutable, allowed and denied traffic.
    spec.ip_src = static_cast<std::uint32_t>(0x0a000000 | rng.uniform(1 << 16));
    spec.ip_dst = rng.chance(0.8)
                      ? static_cast<std::uint32_t>(
                            0x0a000000 | (rng.uniform(10) << 8) |
                            rng.uniform(256))
                      : static_cast<std::uint32_t>(rng.next_u64());
    const std::uint64_t ports[] = {443, 80, 22, 25, 6667, 31337, 8080, 53};
    spec.dport = static_cast<std::uint16_t>(ports[rng.uniform(8)]);
    spec.sport = static_cast<std::uint16_t>(1024 + rng.uniform(60000));
    out.push_back(make_tcp_packet(spec));
  }
  return out;
}

TEST(Bridge, AbstractPacketCarriesFieldsAndValidity) {
  dataplane::PisaSwitch sw(dataplane::make_router());
  const auto parsed = sw.parse(make_tcp_packet({}));
  const netkat::Packet p = abstract_packet(parsed);
  EXPECT_EQ(p.get("valid.ipv4"), 1u);
  EXPECT_EQ(p.get("valid.tcp"), 1u);
  EXPECT_EQ(p.get("ipv4.dst"), 0x0a000202u);
  EXPECT_EQ(p.get("tcp.dport"), 443u);
}

TEST(Bridge, RouterTranslationValidates) {
  const auto program = dataplane::make_router();
  for (const auto& raw : packet_universe(301, 200)) {
    EXPECT_TRUE(behaviors_agree(program, raw));
  }
}

TEST(Bridge, FirewallTranslationValidates) {
  const auto program = dataplane::make_firewall();
  for (const auto& raw : packet_universe(302, 200)) {
    EXPECT_TRUE(behaviors_agree(program, raw));
  }
}

TEST(Bridge, AclTranslationValidates) {
  const auto program = dataplane::make_acl();
  for (const auto& raw : packet_universe(303, 200)) {
    EXPECT_TRUE(behaviors_agree(program, raw));
  }
}

TEST(Bridge, RogueRouterTranslationValidates) {
  const auto program = dataplane::make_rogue_router();
  for (const auto& raw : packet_universe(304, 200)) {
    EXPECT_TRUE(behaviors_agree(program, raw));
  }
}

TEST(Bridge, StatefulProgramRejected) {
  EXPECT_THROW((void)to_netkat(*dataplane::make_monitor()), BridgeError);
}

TEST(Bridge, RouterRefinesReachabilitySpec) {
  // Spec: the router may forward 10.0.x.0/24 only out of port x (x<=8),
  // or drop. Expressed as the union of all allowed outcomes.
  std::vector<netkat::PolicyPtr> allowed;
  for (std::uint64_t x = 1; x <= 8; ++x) {
    allowed.push_back(netkat::Policy::seq(
        netkat::Policy::filter(netkat::Predicate::test_masked(
            "ipv4.dst", 0x0a000000ULL | (x << 8), 0xffffff00ULL)),
        netkat::Policy::mod("pt", x)));
  }
  const netkat::PolicyPtr spec = netkat::union_all(allowed);
  EXPECT_TRUE(refines(dataplane::make_router(), spec,
                      packet_universe(305, 150)));
}

TEST(Bridge, ViolatingProgramFailsRefinement) {
  // A "router" that sends everything out port 7 violates the spec above.
  auto bad = dataplane::make_router();
  bad->table("route")->clear();
  dataplane::TableEntry e;
  e.keys = {dataplane::KeyMatch::lpm(0x0a000000, 8)};
  e.action = "forward";
  e.action_params = {7};
  bad->table("route")->add_entry(e);

  std::vector<netkat::PolicyPtr> allowed;
  for (std::uint64_t x = 1; x <= 8; ++x) {
    allowed.push_back(netkat::Policy::seq(
        netkat::Policy::filter(netkat::Predicate::test_masked(
            "ipv4.dst", 0x0a000000ULL | (x << 8), 0xffffff00ULL)),
        netkat::Policy::mod("pt", x)));
  }
  EXPECT_FALSE(refines(bad, netkat::union_all(allowed),
                       packet_universe(306, 150)));
}

// Property: translation validation holds across many random programs built
// from random routing entries.
class BridgeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BridgeProperty, RandomRoutersValidate) {
  crypto::Drbg rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  auto program = dataplane::make_router();
  dataplane::Table* route = program->table("route");
  route->clear();
  const std::size_t entries = 1 + rng.uniform(12);
  for (std::size_t i = 0; i < entries; ++i) {
    dataplane::TableEntry e;
    const unsigned plen = 8 + static_cast<unsigned>(rng.uniform(25));
    e.keys = {dataplane::KeyMatch::lpm(
        static_cast<std::uint64_t>(rng.next_u64()) & 0xffffffffULL, plen)};
    e.action = rng.chance(0.85) ? "forward" : "drop";
    if (e.action == "forward") e.action_params = {1 + rng.uniform(8)};
    route->add_entry(std::move(e));
  }
  for (const auto& raw : packet_universe(1000 + GetParam(), 60)) {
    EXPECT_TRUE(behaviors_agree(program, raw));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgeProperty, ::testing::Range(0, 10));

// --- Prim3 reachability --------------------------------------------------------------

TEST(Reachability, EncodeAndConnectivity) {
  const netsim::Topology topo = netsim::topo::chain(3);
  const NetkatTopology nt = encode_topology(topo);
  EXPECT_TRUE(reachable_in(nt, "client", "server"));
  EXPECT_TRUE(reachable_in(nt, "s3", "Appraiser"));
  EXPECT_TRUE(reachable_in(nt, "Appraiser", "client"));
}

TEST(Reachability, PolicyDeployableOnChain) {
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  const CollectorReachability rep =
      check_collector_reachable(netsim::topo::chain(4), pol);
  EXPECT_TRUE(rep.deployable());
  EXPECT_EQ(rep.reachable_from.size(), 4u);
}

TEST(Reachability, PartitionedElementDetected) {
  netsim::Topology topo = netsim::topo::chain(3);
  // Cut s3 off from everything: both its links go down.
  topo.set_link_state("s2", "s3", false);
  topo.set_link_state("s3", "server", false);
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  const CollectorReachability rep = check_collector_reachable(topo, pol);
  EXPECT_FALSE(rep.deployable());
  ASSERT_EQ(rep.unreachable_from.size(), 1u);
  EXPECT_EQ(rep.unreachable_from[0], "s3");
}

TEST(Reachability, MissingCollectorNotDeployable) {
  netsim::Topology topo;
  topo.add_node("h", netsim::NodeKind::kHost);
  topo.add_node("s", netsim::NodeKind::kSwitch);
  topo.add_link("h", "s");
  nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  const CollectorReachability rep = check_collector_reachable(topo, pol);
  EXPECT_FALSE(rep.deployable());
}

TEST(Reachability, PinnedPolicyChecksOnlyItsPlaces) {
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*scanner<P> : @s2 [P |> attest(P) -> !] -<+ "
      "@Appraiser [appraise -> store]"));
  const CollectorReachability rep =
      check_collector_reachable(netsim::topo::chain(3), pol);
  EXPECT_TRUE(rep.deployable());
  EXPECT_EQ(rep.reachable_from, (std::vector<std::string>{"s2"}));
}

// --- link failures & rerouting -------------------------------------------------------

TEST(Rerouting, ShortestPathAdapts) {
  netsim::Topology topo = netsim::topo::isp();
  const auto before = topo.names(topo.shortest_path("edge1", "edge2"));
  topo.set_link_state("core1", "core2", false);
  const auto after = topo.names(topo.shortest_path("edge1", "edge2"));
  EXPECT_NE(before, after);
  EXPECT_FALSE(after.empty());
  topo.set_link_state("core1", "core2", true);
  EXPECT_EQ(topo.names(topo.shortest_path("edge1", "edge2")), before);
}

TEST(Rerouting, WildcardPolicySurvivesReroute) {
  // The §5.1 motivation: paths change without warning. A wildcard policy
  // (Prim1/Prim2) keeps attesting on the new path; nothing breaks.
  core::Deployment dep(netsim::topo::isp());
  dep.provision_goldens();
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));

  const FlowReport before = dep.send_flow("client", "pm_phone", pol, 4, true);
  EXPECT_GT(before.attestations, 0u);
  EXPECT_EQ(before.appraisal_failures, 0u);

  // Primary core link fails mid-deployment; traffic reroutes via core3.
  dep.network().topology().set_link_state("core1", "core2", false);
  const FlowReport after = dep.send_flow("client", "pm_phone", pol, 4, true);
  EXPECT_EQ(after.packets_delivered, 4u);
  EXPECT_GT(after.attestations, 0u);
  EXPECT_EQ(after.appraisal_failures, 0u);
}

TEST(Rerouting, UnreachableDestinationThrows) {
  netsim::Topology topo = netsim::topo::chain(1);
  topo.set_link_state("client", "s1", false);
  netsim::Network net(std::move(topo));
  netsim::Message m;
  m.src = net.topology().require("client");
  m.dst = net.topology().require("server");
  EXPECT_THROW(net.send(std::move(m)), std::invalid_argument);
}

// --- batched evidence signing -------------------------------------------------------

TEST(Batcher, ReceiptsVerify) {
  crypto::KeyStore keys(81);
  crypto::Signer& s = keys.provision_hmac("sw");
  const crypto::Verifier& v = *keys.verifier_for("sw");
  pera::EvidenceBatcher batcher(s, 8);

  std::vector<crypto::Digest> items;
  std::optional<std::vector<pera::BatchedSignature>> receipts;
  for (int i = 0; i < 8; ++i) {
    items.push_back(crypto::sha256("evidence " + std::to_string(i)));
    receipts = batcher.add(items.back());
  }
  ASSERT_TRUE(receipts.has_value());
  ASSERT_EQ(receipts->size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        pera::EvidenceBatcher::verify(v, items[i], (*receipts)[i]))
        << i;
  }
  EXPECT_EQ(batcher.batches_signed(), 1u);
}

TEST(Batcher, WrongItemFails) {
  crypto::KeyStore keys(82);
  crypto::Signer& s = keys.provision_hmac("sw");
  pera::EvidenceBatcher batcher(s, 2);
  (void)batcher.add(crypto::sha256("a"));
  const auto receipts = batcher.add(crypto::sha256("b"));
  ASSERT_TRUE(receipts.has_value());
  EXPECT_FALSE(pera::EvidenceBatcher::verify(
      *keys.verifier_for("sw"), crypto::sha256("c"), (*receipts)[0]));
}

TEST(Batcher, PartialFlush) {
  crypto::KeyStore keys(83);
  crypto::Signer& s = keys.provision_hmac("sw");
  pera::EvidenceBatcher batcher(s, 100);
  EXPECT_FALSE(batcher.add(crypto::sha256("a")).has_value());
  EXPECT_FALSE(batcher.add(crypto::sha256("b")).has_value());
  EXPECT_EQ(batcher.pending(), 2u);
  const auto receipts = batcher.flush();
  EXPECT_EQ(receipts.size(), 2u);
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_TRUE(batcher.flush().empty());
}

TEST(Batcher, OneSignaturePerBatch) {
  crypto::KeyStore keys(84);
  crypto::Signer& s = keys.provision_xmss("sw", 4);  // only 16 signatures!
  pera::EvidenceBatcher batcher(s, 64);
  // 256 items cost 4 XMSS signatures instead of 256.
  for (int i = 0; i < 256; ++i) {
    (void)batcher.add(crypto::sha256(std::to_string(i)));
  }
  EXPECT_EQ(batcher.batches_signed(), 4u);
}

TEST(Batcher, ZeroBatchSizeRejected) {
  crypto::KeyStore keys(85);
  crypto::Signer& s = keys.provision_hmac("sw");
  EXPECT_THROW(pera::EvidenceBatcher(s, 0), std::invalid_argument);
}

// --- appraisal policies ----------------------------------------------------------------

struct PolicyBed {
  PolicyBed() : keys(91), attester("s1", keys.provision_hmac("s1")) {
    vetted_v5 = crypto::sha256("firewall v5");
    vetted_v6 = crypto::sha256("firewall v6");
    current = vetted_v5;
    attester.add_claim_source(
        {"Program", [this] { return current; }, "program digest"});
    attester.add_claim_source(
        {"Hardware", [] { return crypto::sha256("hw"); }, "hardware"});
  }

  crypto::KeyStore keys;
  ra::Attester attester;
  crypto::Digest vetted_v5, vetted_v6, current;
};

TEST(AppraisalPolicy, AcceptsVettedVersions) {
  PolicyBed bed;
  ra::AppraisalPolicy policy;
  policy.require("s1", "Program", {bed.vetted_v5});
  policy.also_allow("s1", "Program", bed.vetted_v6);
  policy.require("s1", "Hardware");

  const auto e = bed.attester.attest({});
  EXPECT_TRUE(policy.evaluate(e).ok);

  bed.current = bed.vetted_v6;  // upgraded to the other vetted build
  EXPECT_TRUE(policy.evaluate(bed.attester.attest({})).ok);
}

TEST(AppraisalPolicy, RejectsUnvettedVersion) {
  PolicyBed bed;
  ra::AppraisalPolicy policy;
  policy.require("s1", "Program", {bed.vetted_v5});
  bed.current = crypto::sha256("firewall v7-rc1, never reviewed");
  const auto verdict = policy.evaluate(bed.attester.attest({}));
  ASSERT_FALSE(verdict.ok);
  EXPECT_NE(verdict.findings[0].detail.find("un-vetted"), std::string::npos);
}

TEST(AppraisalPolicy, MissingTargetFails) {
  PolicyBed bed;
  ra::AppraisalPolicy policy;
  policy.require("s1", "Tables");
  const auto verdict = policy.evaluate(bed.attester.attest({"Program"}));
  ASSERT_FALSE(verdict.ok);
  EXPECT_NE(verdict.findings[0].detail.find("missing"), std::string::npos);
}

TEST(AppraisalPolicy, UnsignedEvidenceFails) {
  PolicyBed bed;
  ra::AppraisalPolicy policy;
  policy.require("s1", "Program");
  // Hand-built unsigned measurement.
  const auto bare = copland::Evidence::measurement(
      "s1", "s1", "Program", bed.vetted_v5, "claim");
  EXPECT_FALSE(policy.evaluate(bare).ok);
  policy.waive_signature("s1");
  EXPECT_TRUE(policy.evaluate(bare).ok);
}

TEST(AppraisalPolicy, FreshnessWindow) {
  PolicyBed bed;
  ra::AppraisalPolicy policy;
  policy.require("s1", "Program");
  policy.set_max_age(1000);
  const auto e = bed.attester.attest({});
  EXPECT_TRUE(policy.evaluate(e, 500).ok);
  EXPECT_FALSE(policy.evaluate(e, 5000).ok);
  EXPECT_TRUE(policy.evaluate(e).ok);  // age unknown: not enforced
}

}  // namespace
}  // namespace pera::core
