// The attestation control plane (src/ctrl): trust state machine
// hysteresis (including a property-style never-flaps check), scheduler
// cadence/determinism and its tuning-advisor defaults, the retrying
// evidence transport over lossy links, duplicate-result suppression, and
// the full closed loop — program swap -> quarantine -> data rerouted ->
// restore -> reinstated — on the ISP topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "core/wire.h"
#include "ctrl/controller.h"
#include "ctrl/reroute.h"
#include "ctrl/scheduler.h"
#include "ctrl/transport.h"
#include "ctrl/trust.h"
#include "dataplane/builder.h"
#include "obs/obs.h"
#include "pera/tuning.h"

namespace {

using namespace pera;
using ctrl::Outcome;
using ctrl::TrustState;

core::DeploymentOptions seeded(std::uint64_t seed) {
  core::DeploymentOptions o;
  o.seed = seed;
  return o;
}

// ---------------------------------------------------------------- trust --

TEST(Trust, StartsTrustedAndRecoversFromSingleFailure) {
  ctrl::TrustStateMachine m("s1", {.quarantine_after = 3});
  EXPECT_EQ(m.state(), TrustState::kTrusted);
  EXPECT_EQ(m.record(Outcome::kFail, 10), TrustState::kSuspect);
  EXPECT_EQ(m.record(Outcome::kPass, 20), TrustState::kTrusted);
  EXPECT_EQ(m.consecutive_failures(), 0);
  EXPECT_EQ(m.transitions().size(), 2u);
}

TEST(Trust, QuarantinesAfterConsecutiveFailuresOnly) {
  ctrl::TrustStateMachine m("s1", {.quarantine_after = 3});
  m.record(Outcome::kFail, 1);
  m.record(Outcome::kTimeout, 2);
  EXPECT_EQ(m.state(), TrustState::kSuspect) << "2 of 3 failures: not yet";
  m.record(Outcome::kFail, 3);
  EXPECT_EQ(m.state(), TrustState::kQuarantined);
}

TEST(Trust, PassResetsFailureStreak) {
  ctrl::TrustStateMachine m("s1", {.quarantine_after = 2});
  // fail, pass, fail, pass, ... never quarantines: a single lost round
  // (timeout) between passes must not flap the switch out of the plane.
  for (int i = 0; i < 20; ++i) {
    m.record(Outcome::kTimeout, 2 * i);
    EXPECT_NE(m.state(), TrustState::kQuarantined);
    m.record(Outcome::kPass, 2 * i + 1);
    EXPECT_EQ(m.state(), TrustState::kTrusted);
  }
}

TEST(Trust, ReinstatesAfterConsecutivePassesWhileQuarantined) {
  ctrl::TrustStateMachine m("s1",
                            {.quarantine_after = 2, .reinstate_after = 3});
  m.record(Outcome::kFail, 1);
  m.record(Outcome::kFail, 2);
  ASSERT_EQ(m.state(), TrustState::kQuarantined);
  m.record(Outcome::kPass, 3);
  m.record(Outcome::kPass, 4);
  // A failure while quarantined resets the reinstatement streak.
  m.record(Outcome::kFail, 5);
  m.record(Outcome::kPass, 6);
  m.record(Outcome::kPass, 7);
  EXPECT_EQ(m.state(), TrustState::kQuarantined);
  m.record(Outcome::kPass, 8);
  EXPECT_EQ(m.state(), TrustState::kReinstated);
  m.record(Outcome::kPass, 9);
  EXPECT_EQ(m.state(), TrustState::kTrusted);
}

TEST(Trust, ProbationFailureSendsBackTowardQuarantine) {
  ctrl::TrustStateMachine m("s1",
                            {.quarantine_after = 2, .reinstate_after = 1});
  m.record(Outcome::kFail, 1);
  m.record(Outcome::kFail, 2);
  ASSERT_EQ(m.state(), TrustState::kQuarantined);
  m.record(Outcome::kPass, 3);
  ASSERT_EQ(m.state(), TrustState::kReinstated);
  m.record(Outcome::kFail, 4);
  EXPECT_EQ(m.state(), TrustState::kSuspect);
  m.record(Outcome::kFail, 5);
  EXPECT_EQ(m.state(), TrustState::kQuarantined);
}

TEST(Trust, ThresholdOneQuarantinesImmediately) {
  ctrl::TrustStateMachine m("s1", {.quarantine_after = 1});
  EXPECT_EQ(m.record(Outcome::kFail, 1), TrustState::kQuarantined);
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].from, TrustState::kTrusted);
}

TEST(Trust, InvalidPolicyThrows) {
  EXPECT_THROW(ctrl::TrustStateMachine("s1", {.quarantine_after = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      ctrl::TrustStateMachine("s1", {.quarantine_after = 1,
                                     .reinstate_after = 0}),
      std::invalid_argument);
}

TEST(Trust, TransitionsTimestampedAndReasoned) {
  ctrl::TrustStateMachine m("s1", {.quarantine_after = 2});
  m.record(Outcome::kFail, 100);
  m.record(Outcome::kFail, 200);
  m.record(Outcome::kPass, 300);
  m.record(Outcome::kPass, 400);
  const auto& ts = m.transitions();
  ASSERT_GE(ts.size(), 3u);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_FALSE(ts[i].reason.empty());
    if (i > 0) {
      EXPECT_GE(ts[i].at, ts[i - 1].at);
    }
  }
}

// Property: under arbitrary seeded Bernoulli outcome streams, the machine
// never enters Quarantined without >= N consecutive non-pass outcomes and
// never leaves it without >= M consecutive passes — hysteresis cannot
// flap on isolated losses, whatever the loss pattern.
TEST(Trust, HysteresisNeverFlapsUnderBernoulli) {
  const ctrl::TrustPolicy policy{.quarantine_after = 3, .reinstate_after = 2};
  for (const double p_fail : {0.1, 0.5, 0.9}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      crypto::Drbg rng(seed * 977);
      ctrl::TrustStateMachine m("s1", policy);
      int ref_fails = 0;
      int ref_passes = 0;
      m.on_transition([&](const ctrl::TrustStateMachine&,
                          const ctrl::TrustTransition& t) {
        if (t.to == TrustState::kQuarantined) {
          EXPECT_GE(ref_fails, policy.quarantine_after)
              << "quarantined with only " << ref_fails
              << " consecutive failures (p=" << p_fail << " seed=" << seed
              << ")";
        }
        if (t.from == TrustState::kQuarantined &&
            t.to == TrustState::kReinstated) {
          EXPECT_GE(ref_passes, policy.reinstate_after);
        }
        if (t.from == TrustState::kTrusted) {
          EXPECT_NE(t.to, TrustState::kQuarantined)
              << "Trusted must dwell in Suspect first when N > 1";
        }
      });
      for (int i = 0; i < 400; ++i) {
        const bool fail = rng.chance(p_fail);
        if (fail) {
          ++ref_fails;
          ref_passes = 0;
        } else {
          ++ref_passes;
          ref_fails = 0;
        }
        m.record(fail ? Outcome::kTimeout : Outcome::kPass, i);
      }
    }
  }
}

// ------------------------------------------------------------ scheduler --

TEST(CtrlScheduler, DefaultIntervalsComeFromTuningAdvisor) {
  // The satellite wiring: SchedulerConfig's default cadence must be the
  // §5.2 advisor's recommendation for a nominal workload, not ad-hoc
  // constants.
  const ctrl::SchedulerConfig cfg;
  const auto rec = ::pera::pera::recommend_cadence(::pera::pera::WorkloadProfile{});
  EXPECT_EQ(cfg.cadence.hardware, rec.hardware);
  EXPECT_EQ(cfg.cadence.program, rec.program);
  EXPECT_EQ(cfg.cadence.tables, rec.tables);
  EXPECT_EQ(cfg.cadence.prog_state, rec.prog_state);
  EXPECT_EQ(cfg.cadence.packet, rec.packet);
}

TEST(CtrlScheduler, CadenceScalesWithChurn) {
  ::pera::pera::WorkloadProfile busy;
  busy.table_updates_per_second = 5.0;
  ::pera::pera::WorkloadProfile calm;
  calm.table_updates_per_second = 0.5;
  const auto busy_c = ::pera::pera::recommend_cadence(busy);
  const auto calm_c = ::pera::pera::recommend_cadence(calm);
  EXPECT_LT(busy_c.tables, calm_c.tables)
      << "higher churn must re-attest tables more often";
  // Hardware never churns: it sits at the ceiling heartbeat.
  EXPECT_EQ(busy_c.hardware, 60 * netsim::kSecond);
  // The floor clamps runaway rates.
  ::pera::pera::WorkloadProfile frantic;
  frantic.table_updates_per_second = 1e6;
  EXPECT_EQ(::pera::pera::recommend_cadence(frantic).tables,
            100 * netsim::kMillisecond);
}

TEST(CtrlScheduler, IssuesAtConfiguredCadence) {
  netsim::EventQueue events;
  ctrl::SchedulerConfig cfg;
  cfg.levels = nac::mask_of(nac::EvidenceDetail::kTables);
  cfg.cadence.tables = 10 * netsim::kMillisecond;
  cfg.jitter = 0.1;
  ctrl::ReattestScheduler sched(events, cfg, 42);
  sched.add_switch("s1");
  EXPECT_EQ(sched.track_count(), 1u);
  std::size_t fired = 0;
  sched.start([&](const std::string& place, nac::EvidenceDetail level) {
    EXPECT_EQ(place, "s1");
    EXPECT_EQ(level, nac::EvidenceDetail::kTables);
    ++fired;
  });
  events.run(netsim::kSecond);
  // ~100 rounds at 10 ms +-10% jitter; generous bounds.
  EXPECT_GE(fired, 80u);
  EXPECT_LE(fired, 125u);
  EXPECT_EQ(sched.rounds_issued(), fired);
}

TEST(CtrlScheduler, DeterministicPerSeed) {
  const auto fire_times = [](std::uint64_t seed) {
    netsim::EventQueue events;
    ctrl::SchedulerConfig cfg;
    cfg.levels = nac::EvidenceDetail::kProgram | nac::EvidenceDetail::kTables;
    cfg.cadence.program = 50 * netsim::kMillisecond;
    cfg.cadence.tables = 10 * netsim::kMillisecond;
    ctrl::ReattestScheduler sched(events, cfg, seed);
    sched.add_switch("s1");
    sched.add_switch("s2");
    std::vector<std::pair<netsim::SimTime, std::string>> fires;
    sched.start([&](const std::string& place, nac::EvidenceDetail level) {
      fires.emplace_back(events.now(), place + "/" + nac::to_string(level));
    });
    events.run(500 * netsim::kMillisecond);
    return fires;
  };
  EXPECT_EQ(fire_times(7), fire_times(7));
  EXPECT_NE(fire_times(7), fire_times(8)) << "jitter must depend on the seed";
}

TEST(CtrlScheduler, StopHaltsAndRestartWorks) {
  netsim::EventQueue events;
  ctrl::SchedulerConfig cfg;
  cfg.levels = nac::mask_of(nac::EvidenceDetail::kTables);
  cfg.cadence.tables = 10 * netsim::kMillisecond;
  ctrl::ReattestScheduler sched(events, cfg, 1);
  sched.add_switch("s1");
  sched.start([](const std::string&, nac::EvidenceDetail) {});
  EXPECT_THROW(sched.start([](const std::string&, nac::EvidenceDetail) {}),
               std::logic_error);
  events.run(100 * netsim::kMillisecond);
  const std::uint64_t at_stop = sched.rounds_issued();
  EXPECT_GT(at_stop, 0u);
  sched.stop();
  events.run(200 * netsim::kMillisecond);
  EXPECT_EQ(sched.rounds_issued(), at_stop) << "stopped scheduler kept firing";
  EXPECT_TRUE(events.empty()) << "stale events must drain, not re-arm";
  sched.start([](const std::string&, nac::EvidenceDetail) {});
  events.run(300 * netsim::kMillisecond);
  EXPECT_GT(sched.rounds_issued(), at_stop);
}

// ------------------------------------------------------------ transport --

// Test-side tap standing in for the controller: feeds delivered results
// into the transport and keeps the raw certificates for replay tests.
struct ResultTap final : netsim::NodeBehavior {
  ctrl::EvidenceTransport* transport = nullptr;
  std::vector<ra::Certificate> certs;

  void on_deliver(netsim::Network& net, netsim::NodeId,
                  netsim::Message msg) override {
    if (msg.type != "result") return;
    const ra::Certificate cert = ra::Certificate::deserialize(
        crypto::BytesView{msg.payload.data(), msg.payload.size()});
    certs.push_back(cert);
    (void)transport->on_result(cert, net.now());
  }
};

struct TransportRig {
  core::Deployment dep;
  ResultTap tap;
  ctrl::EvidenceTransport transport;
  std::vector<ctrl::RoundOutcome> outcomes;

  explicit TransportRig(std::uint64_t seed, ctrl::TransportConfig cfg = {})
      : dep(netsim::topo::chain(2), seeded(seed)),
        transport(dep.network(), dep.network().topology().require("client"),
                  dep.appraiser_name(), dep.keys(), cfg, seed) {
    dep.provision_goldens();
    tap.transport = &transport;
    dep.network().attach("client", &tap);
  }

  void round(const std::string& place = "s1") {
    transport.begin_round(
        place, nac::mask_of(nac::EvidenceDetail::kProgram),
        [this](const std::string&, const ctrl::RoundOutcome& out) {
          outcomes.push_back(out);
        });
  }
};

TEST(CtrlTransport, ReliableNetworkCompletesFirstAttempt) {
  TransportRig rig(11);
  rig.round();
  rig.dep.network().run();
  ASSERT_EQ(rig.outcomes.size(), 1u);
  EXPECT_TRUE(rig.outcomes[0].completed);
  EXPECT_TRUE(rig.outcomes[0].verdict);
  EXPECT_EQ(rig.outcomes[0].attempts, 1u);
  EXPECT_GT(rig.outcomes[0].rtt, 0);
  EXPECT_EQ(rig.transport.live_rounds(), 0u);
}

TEST(CtrlTransport, RetriesAreDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    ctrl::TransportConfig cfg;
    cfg.timeout = 5 * netsim::kMillisecond;
    cfg.max_attempts = 10;
    TransportRig rig(seed, cfg);
    rig.dep.network().set_loss(0.5, 999);
    rig.round();
    rig.dep.network().run();
    return std::make_tuple(rig.outcomes.at(0).completed,
                           rig.outcomes.at(0).attempts,
                           rig.transport.stats().retries,
                           rig.dep.network().stats().messages_lost);
  };
  const auto a = run_once(21);
  EXPECT_EQ(a, run_once(21));
  EXPECT_GT(std::get<1>(a), 1u) << "50% per-hop loss should force retries";
}

TEST(CtrlTransport, GivesUpAfterMaxAttempts) {
  ctrl::TransportConfig cfg;
  cfg.timeout = 2 * netsim::kMillisecond;
  cfg.max_attempts = 3;
  TransportRig rig(5, cfg);
  rig.dep.network().set_loss(1.0, 1);
  rig.round();
  rig.dep.network().run();
  ASSERT_EQ(rig.outcomes.size(), 1u);
  EXPECT_FALSE(rig.outcomes[0].completed);
  EXPECT_EQ(rig.outcomes[0].attempts, 3u);
  EXPECT_EQ(rig.transport.stats().rounds_timed_out, 1u);
  EXPECT_EQ(rig.transport.stats().retries, 2u);
}

TEST(CtrlTransport, DuplicateResultSuppressedExactlyOnce) {
  TransportRig rig(31);
  rig.round();
  rig.dep.network().run();
  ASSERT_EQ(rig.outcomes.size(), 1u);
  ASSERT_EQ(rig.tap.certs.size(), 1u);
  // An adversary (or a late duplicate) re-delivers the same certificate:
  // consumed and counted, but the completion callback must not re-fire.
  EXPECT_TRUE(
      rig.transport.on_result(rig.tap.certs[0], rig.dep.network().now()));
  EXPECT_EQ(rig.transport.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(rig.outcomes.size(), 1u);
}

// Regression for the unbounded nonce_to_round_ growth the transport had
// before the retention window: per-round state must stay bounded however
// many rounds run, while duplicate suppression still works inside the
// window.
TEST(CtrlTransport, PerRoundStateIsBoundedAcrossManyRounds) {
  ctrl::TransportConfig cfg;
  cfg.completed_retention = 16;
  TransportRig rig(51, cfg);
  const std::size_t kRounds = 200;
  for (std::size_t i = 0; i < kRounds; ++i) {
    rig.round();
    rig.dep.network().run();
  }
  ASSERT_EQ(rig.outcomes.size(), kRounds);
  EXPECT_EQ(rig.transport.live_rounds(), 0u);
  // Live + retained rounds only — not one entry per historical round.
  EXPECT_LE(rig.transport.tracked_rounds(), cfg.completed_retention);
  EXPECT_LE(rig.transport.nonce_index_size(),
            cfg.completed_retention * cfg.max_attempts);

  // A replay inside the retention window is still recognized...
  const std::size_t before = rig.outcomes.size();
  EXPECT_TRUE(
      rig.transport.on_result(rig.tap.certs.back(), rig.dep.network().now()));
  EXPECT_EQ(rig.transport.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(rig.outcomes.size(), before) << "replay must not re-complete";
  // ...while one evicted from the window is no longer ours to consume.
  EXPECT_FALSE(
      rig.transport.on_result(rig.tap.certs.front(), rig.dep.network().now()));
}

TEST(CtrlTransport, ForeignNonceIsNotConsumed) {
  TransportRig rig(41);
  rig.round();
  rig.dep.network().run();
  ra::Certificate foreign = rig.tap.certs.at(0);
  foreign.nonce = crypto::Nonce{crypto::sha256("someone elses round")};
  EXPECT_FALSE(
      rig.transport.on_result(foreign, rig.dep.network().now()))
      << "a nonce the transport never issued must be delegated onward";
  EXPECT_EQ(rig.transport.stats().duplicates_suppressed, 0u);
}

// Regression for delegated (fleet) rounds: when an aggregate answers for
// a place before the per-switch result arrives, the live round must be
// settled exactly once by subsume_round — and the switch's own late
// "result" must then be suppressed as a duplicate, not double-delivered
// and not counted as a timeout.
TEST(CtrlTransport, SubsumedRoundSuppressesTheLateResult) {
  TransportRig rig(61);
  rig.round();
  // Do NOT run the network yet: the round is live, its result in flight.
  ASSERT_EQ(rig.transport.live_rounds(), 1u);

  ctrl::RoundOutcome sub;
  sub.completed = true;
  sub.verdict = true;
  EXPECT_EQ(rig.transport.subsume_round("s1", sub), 1u);
  EXPECT_EQ(rig.transport.stats().rounds_subsumed, 1u);
  EXPECT_EQ(rig.transport.live_rounds(), 0u);
  ASSERT_EQ(rig.outcomes.size(), 1u);
  EXPECT_TRUE(rig.outcomes[0].completed);
  EXPECT_TRUE(rig.outcomes[0].verdict);
  EXPECT_EQ(rig.outcomes[0].attempts, 1u)
      << "the subsumed outcome keeps the round's own attempt count";

  // The switch's own result now lands: one suppressed duplicate, no
  // second completion, and no timeout bookkeeping for a settled round.
  rig.dep.network().run();
  EXPECT_EQ(rig.transport.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(rig.outcomes.size(), 1u);
  EXPECT_EQ(rig.transport.stats().rounds_timed_out, 0u);

  // With nothing live, subsumption is a no-op.
  EXPECT_EQ(rig.transport.subsume_round("s1", sub), 0u);
  EXPECT_EQ(rig.transport.stats().rounds_subsumed, 1u);
}

// ------------------------------------------------------------- rerouting --

core::FlowBundle plain_bundle() {
  core::FlowBundle b;
  b.raw = dataplane::make_tcp_packet({});
  return b;
}

void inject_data(core::Deployment& dep, const std::string& src,
                 const std::string& dst) {
  netsim::Message pkt;
  pkt.src = dep.network().topology().require(src);
  pkt.dst = dep.network().topology().require(dst);
  pkt.type = "data";
  plain_bundle().to_message(pkt);
  dep.network().send(std::move(pkt));
}

// Counts data packets transiting a node, delegating to the real switch.
struct TransitCounter final : netsim::NodeBehavior {
  netsim::NodeBehavior* inner = nullptr;
  std::uint64_t data_transits = 0;

  netsim::TransitResult on_transit(netsim::Network& net, netsim::NodeId self,
                                   netsim::Message& msg) override {
    if (msg.type == "data") ++data_transits;
    return inner != nullptr ? inner->on_transit(net, self, msg)
                            : netsim::TransitResult{};
  }
  void on_deliver(netsim::Network& net, netsim::NodeId self,
                  netsim::Message msg) override {
    if (inner != nullptr) inner->on_deliver(net, self, std::move(msg));
  }
};

TEST(CtrlReroute, QuarantinedSwitchBypassedByDataFlows) {
  core::Deployment dep(netsim::topo::isp(), seeded(3));
  dep.provision_goldens();
  auto& net = dep.network();

  TransitCounter counter;
  counter.inner = net.behavior_of(net.topology().require("core2"));
  net.attach("core2", &counter);

  inject_data(dep, "client", "pm_phone");
  net.run();
  EXPECT_EQ(counter.data_transits, 1u) << "primary path transits core2";

  net.set_node_quarantined("core2", true);
  const std::size_t recv_before = dep.host("pm_phone").received().size();
  for (int i = 0; i < 10; ++i) inject_data(dep, "client", "pm_phone");
  net.run();
  EXPECT_EQ(counter.data_transits, 1u)
      << "no data packet may transit a quarantined switch";
  EXPECT_EQ(dep.host("pm_phone").received().size(), recv_before + 10)
      << "traffic still arrives over the core1-core3 backup";
  EXPECT_GE(net.stats().data_rerouted, 10u);

  net.set_node_quarantined("core2", false);
  inject_data(dep, "client", "pm_phone");
  net.run();
  EXPECT_EQ(counter.data_transits, 2u) << "reinstated switch carries again";
}

TEST(CtrlReroute, ControlTrafficStillReachesQuarantinedSwitch) {
  core::Deployment dep(netsim::topo::isp(), seeded(4));
  dep.provision_goldens();
  dep.network().set_node_quarantined("core2", true);
  // Out-of-band attestation of the quarantined switch itself must work —
  // that is how it ever gets reinstated.
  const auto rep = dep.run_out_of_band(
      "client", "core2", nac::mask_of(nac::EvidenceDetail::kProgram));
  EXPECT_TRUE(rep.accepted);
}

TEST(CtrlReroute, NoAlternatePathFallsBackAndCounts) {
  core::Deployment dep(netsim::topo::chain(2), seeded(5));
  dep.provision_goldens();
  auto& net = dep.network();
  net.set_node_quarantined("s1", true);
  const std::size_t recv_before = dep.host("server").received().size();
  for (int i = 0; i < 5; ++i) inject_data(dep, "client", "server");
  net.run();
  EXPECT_EQ(dep.host("server").received().size(), recv_before + 5)
      << "a chain has no detour: traffic must still flow";
  EXPECT_GE(net.stats().reroute_fallbacks, 5u);
  EXPECT_EQ(net.stats().data_rerouted, 0u);
}

TEST(CtrlReroute, EnforcerAppliesOnlyQuarantineBoundary) {
  core::Deployment dep(netsim::topo::isp(), seeded(6));
  dep.provision_goldens();
  ctrl::QuarantineEnforcer enf(dep.network());
  const ctrl::TrustTransition to_suspect{
      0, TrustState::kTrusted, TrustState::kSuspect, "x"};
  enf.apply("core2", to_suspect);
  EXPECT_FALSE(enf.is_quarantined("core2"));
  EXPECT_TRUE(dep.network().quarantined_nodes().empty());

  const ctrl::TrustTransition to_quarantine{
      1, TrustState::kSuspect, TrustState::kQuarantined, "x"};
  enf.apply("core2", to_quarantine);
  EXPECT_TRUE(enf.is_quarantined("core2"));
  EXPECT_EQ(dep.network().quarantined_nodes().size(), 1u);
  EXPECT_EQ(enf.stats().quarantines, 1u);

  const ctrl::TrustTransition to_reinstated{
      2, TrustState::kQuarantined, TrustState::kReinstated, "x"};
  enf.apply("core2", to_reinstated);
  EXPECT_FALSE(enf.is_quarantined("core2"));
  EXPECT_TRUE(dep.network().quarantined_nodes().empty());
  EXPECT_EQ(enf.stats().reinstatements, 1u);
}

// ----------------------------------------------------------- closed loop --

ctrl::ControllerConfig fast_loop_config() {
  ctrl::ControllerConfig cfg;
  cfg.trust.quarantine_after = 2;
  cfg.trust.reinstate_after = 2;
  cfg.scheduler.cadence.hardware = 10 * netsim::kMillisecond;
  cfg.scheduler.cadence.program = 10 * netsim::kMillisecond;
  cfg.scheduler.cadence.tables = 10 * netsim::kMillisecond;
  cfg.transport.timeout = 5 * netsim::kMillisecond;
  return cfg;
}

TEST(CtrlLoop, HealthySwitchesStayTrustedForever) {
  core::Deployment dep(netsim::topo::isp(), seeded(7));
  dep.provision_goldens();
  ctrl::AttestationController controller(dep, "client", fast_loop_config(),
                                         7);
  controller.start();
  dep.network().run(500 * netsim::kMillisecond);
  controller.stop();
  dep.network().run();
  EXPECT_TRUE(controller.timeline().empty())
      << "no transitions on a healthy, lossless deployment";
  EXPECT_GT(controller.rounds_passed(), 0u);
  EXPECT_EQ(controller.rounds_failed(), 0u);
  EXPECT_EQ(controller.rounds_timed_out(), 0u);
  for (const auto& place : dep.attesting_elements()) {
    EXPECT_EQ(controller.trust(place).state(), TrustState::kTrusted);
  }
}

TEST(CtrlLoop, ProgramSwapWalksSuspectThenQuarantine) {
  core::Deployment dep(netsim::topo::isp(), seeded(8));
  dep.provision_goldens();
  ctrl::AttestationController controller(dep, "client", fast_loop_config(),
                                         8);
  auto& net = dep.network();
  net.events().schedule_at(50 * netsim::kMillisecond, [&] {
    adversary::program_swap_attack(dep, "core2");
  });
  controller.start();
  net.run(500 * netsim::kMillisecond);
  controller.stop();
  net.run();

  const auto q =
      controller.first_transition("core2", TrustState::kQuarantined);
  ASSERT_TRUE(q.has_value());
  EXPECT_GE(*q, 50 * netsim::kMillisecond);
  EXPECT_LE(*q, 150 * netsim::kMillisecond)
      << "2 consecutive failures at 10 ms cadence must land well inside "
         "100 ms";
  // The walk is ordered: Suspect strictly before Quarantined.
  const auto s = controller.first_transition("core2", TrustState::kSuspect);
  ASSERT_TRUE(s.has_value());
  EXPECT_LT(*s, *q);
  // Only core2 was implicated.
  for (const auto& e : controller.timeline()) EXPECT_EQ(e.place, "core2");
  EXPECT_TRUE(dep.network().quarantined_nodes().contains(
      dep.network().topology().require("core2")));
}

TEST(CtrlLoop, QuarantineReroutesLiveTraffic) {
  core::Deployment dep(netsim::topo::isp(), seeded(9));
  dep.provision_goldens();
  ctrl::AttestationController controller(dep, "client", fast_loop_config(),
                                         9);
  auto& net = dep.network();
  net.events().schedule_at(50 * netsim::kMillisecond, [&] {
    adversary::program_swap_attack(dep, "core2");
  });
  controller.start();
  net.run(300 * netsim::kMillisecond);
  ASSERT_TRUE(controller.quarantine().is_quarantined("core2"));

  const auto rerouted_before = net.stats().data_rerouted;
  const std::size_t recv_before = dep.host("pm_phone").received().size();
  for (int i = 0; i < 8; ++i) inject_data(dep, "client", "pm_phone");
  net.run(400 * netsim::kMillisecond);
  EXPECT_EQ(dep.host("pm_phone").received().size(), recv_before + 8);
  EXPECT_GE(net.stats().data_rerouted, rerouted_before + 8);
  controller.stop();
  net.run();
}

TEST(CtrlLoop, RestoreReinstatesAndReturnsTraffic) {
  core::Deployment dep(netsim::topo::isp(), seeded(10));
  dep.provision_goldens();
  ctrl::AttestationController controller(dep, "client", fast_loop_config(),
                                         10);
  auto& net = dep.network();
  net.events().schedule_at(50 * netsim::kMillisecond, [&] {
    adversary::program_swap_attack(dep, "core2");
  });
  net.events().schedule_at(300 * netsim::kMillisecond, [&] {
    adversary::program_restore(dep, "core2");
  });
  controller.start();
  net.run(800 * netsim::kMillisecond);
  controller.stop();
  net.run();

  const auto r =
      controller.first_transition("core2", TrustState::kReinstated);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(*r, 300 * netsim::kMillisecond)
      << "must not reinstate while the rogue program is still loaded";
  EXPECT_EQ(controller.trust("core2").state(), TrustState::kTrusted);
  EXPECT_TRUE(net.quarantined_nodes().empty());
  EXPECT_GE(controller.quarantine().stats().reinstatements, 1u);
}

TEST(CtrlLoop, TimelineIsDeterministicPerSeed) {
  const auto run_scenario = [](std::uint64_t seed) {
    core::Deployment dep(netsim::topo::isp(), seeded(seed));
    dep.provision_goldens();
    dep.network().set_loss(0.05, seed + 7);
    ctrl::AttestationController controller(dep, "client", fast_loop_config(),
                                           seed);
    auto& net = dep.network();
    net.events().schedule_at(50 * netsim::kMillisecond, [&] {
      adversary::program_swap_attack(dep, "core2");
    });
    net.events().schedule_at(300 * netsim::kMillisecond, [&] {
      adversary::program_restore(dep, "core2");
    });
    controller.start();
    net.run(600 * netsim::kMillisecond);
    controller.stop();
    net.run();
    std::vector<std::tuple<std::string, int, int, netsim::SimTime>> out;
    for (const auto& e : controller.timeline()) {
      out.emplace_back(e.place, static_cast<int>(e.transition.from),
                       static_cast<int>(e.transition.to), e.transition.at);
    }
    return out;
  };
  const auto a = run_scenario(1234);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run_scenario(1234));
}

TEST(CtrlLoop, EpochBumpEmitsObsEvent) {
  obs::reset();
  obs::set_enabled(true);
  core::Deployment dep(netsim::topo::chain(2), seeded(11));
  dep.provision_goldens();
  const auto before = obs::metrics().counter("pera.epoch.program").value();
  dep.switch_node("s1").pera().load_program(dataplane::make_router());
  EXPECT_EQ(obs::metrics().counter("pera.epoch.program").value(), before + 1);
  const auto events = obs::trace().snapshot();
  const bool saw_bump =
      std::any_of(events.begin(), events.end(), [](const obs::SpanEvent& e) {
        return e.kind == obs::SpanKind::kEpochBump;
      });
  EXPECT_TRUE(saw_bump) << "load_program must record a kEpochBump span";
  obs::set_enabled(false);
  obs::reset();
}

}  // namespace
