// Robustness fuzzing: random byte mutations of every wire format must
// either decode to something well-formed or throw — never crash, hang, or
// read out of bounds. (Run under ASAN for full effect; the invariant
// checked here is "throws std::exception or succeeds".)
#include <gtest/gtest.h>

#include "copland/evidence.h"
#include "core/wire.h"
#include "crypto/drbg.h"
#include "crypto/keystore.h"
#include "crypto/merkle.h"
#include "copland/parser.h"
#include "dataplane/builder.h"
#include "dataplane/p4mini.h"
#include "nac/header.h"
#include "netkat/parser.h"
#include "ra/certificate.h"
#include "ra/roles.h"
#include "ra/endorsement.h"

namespace pera {
namespace {

using crypto::Bytes;
using crypto::BytesView;

// Apply `n` random mutations (byte flips, truncations, extensions).
Bytes mutate(Bytes data, crypto::Drbg& rng, int n) {
  for (int i = 0; i < n; ++i) {
    if (data.empty()) {
      data.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      continue;
    }
    switch (rng.uniform(4)) {
      case 0:  // flip a byte
        data[rng.uniform(data.size())] ^=
            static_cast<std::uint8_t>(1 + rng.uniform(255));
        break;
      case 1:  // truncate
        data.resize(rng.uniform(data.size()) );
        break;
      case 2:  // extend with junk
        data.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
        break;
      default:  // overwrite a run
        for (std::size_t j = rng.uniform(data.size());
             j < data.size() && rng.chance(0.7); ++j) {
          data[j] = static_cast<std::uint8_t>(rng.uniform(256));
        }
        break;
    }
  }
  return data;
}

template <typename DecodeFn>
void fuzz_decoder(const Bytes& seed_bytes, std::uint64_t seed, int rounds,
                  DecodeFn decode) {
  crypto::Drbg rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const Bytes mutated = mutate(seed_bytes, rng, 1 + static_cast<int>(rng.uniform(6)));
    try {
      decode(BytesView{mutated.data(), mutated.size()});
    } catch (const std::exception&) {
      // expected for malformed input
    }
  }
}

TEST(Fuzz, EvidenceDecoder) {
  const copland::EvidencePtr e = copland::Evidence::seq(
      copland::Evidence::measurement("a", "p", "t", crypto::sha256("v"), "c"),
      copland::Evidence::nonce_ev(crypto::Nonce{crypto::sha256("n")}));
  fuzz_decoder(copland::encode(e), 11, 400,
               [](BytesView d) { (void)copland::decode(d); });
}

TEST(Fuzz, PolicyHeaderDecoder) {
  nac::CompiledPolicy pol;
  pol.policy_id = crypto::sha256("p");
  nac::HopInstruction h;
  h.wildcard = true;
  h.guard = "K";
  h.detail = nac::kAllDetail;
  h.sign_evidence = true;
  h.custom_targets = {"x", "y"};
  pol.hops = {h};
  pol.appraiser = "Appraiser";
  fuzz_decoder(nac::make_header(pol, {}, true, 3).serialize(), 12, 400,
               [](BytesView d) { (void)nac::PolicyHeader::deserialize(d); });
}

TEST(Fuzz, EvidenceCarrierDecoder) {
  nac::EvidenceCarrier c;
  c.add("s1", Bytes{1, 2, 3, 4, 5});
  c.add("s2", Bytes(40, 0xcd));
  fuzz_decoder(c.serialize(), 13, 400,
               [](BytesView d) { (void)nac::EvidenceCarrier::deserialize(d); });
}

TEST(Fuzz, CertificateDecoder) {
  crypto::KeyStore keys(14);
  crypto::Signer& s = keys.provision_hmac("app");
  ra::Certificate cert;
  cert.appraiser = "app";
  cert.evidence_digest = crypto::sha256("e");
  cert.verdict = true;
  cert.sig = s.sign(cert.signing_payload());
  fuzz_decoder(cert.serialize(), 15, 400,
               [](BytesView d) { (void)ra::Certificate::deserialize(d); });
}

TEST(Fuzz, EndorsementDecoder) {
  crypto::KeyStore keys(16);
  const ra::Endorsement e = ra::Endorsement::make(
      "vendor", "s1", "Program", "v5", crypto::sha256("img"),
      keys.provision_hmac("vendor"));
  fuzz_decoder(e.serialize(), 17, 400,
               [](BytesView d) { (void)ra::Endorsement::deserialize(d); });
}

TEST(Fuzz, SignatureDecoder) {
  crypto::KeyStore keys(18);
  const crypto::Signature sig =
      keys.provision_hmac("x").sign(crypto::sha256("m"));
  fuzz_decoder(sig.serialize(), 19, 400,
               [](BytesView d) { (void)crypto::Signature::deserialize(d); });
}

TEST(Fuzz, MerkleProofDecoder) {
  std::vector<crypto::Digest> leaves;
  for (int i = 0; i < 9; ++i) leaves.push_back(crypto::sha256(std::to_string(i)));
  const crypto::MerkleTree tree(leaves);
  fuzz_decoder(tree.prove(4).serialize(), 20, 400,
               [](BytesView d) { (void)crypto::MerkleProof::deserialize(d); });
}

TEST(Fuzz, FlowBundleDecoder) {
  core::FlowBundle bundle;
  bundle.raw = dataplane::make_tcp_packet({});
  netsim::Message msg;
  bundle.to_message(msg);
  crypto::Drbg rng(21);
  for (int i = 0; i < 300; ++i) {
    netsim::Message m = msg;
    m.headers = mutate(m.headers, rng, 1 + static_cast<int>(rng.uniform(4)));
    m.payload = mutate(m.payload, rng, 1 + static_cast<int>(rng.uniform(4)));
    try {
      (void)core::FlowBundle::from_message(m);
    } catch (const std::exception&) {
    }
  }
}

// Text-format fuzzing: mutated sources must parse or throw, never crash.
TEST(Fuzz, CoplandParser) {
  const std::string seed_src =
      "*bank<n, X> : forall hop, client : (@hop [Khop |> attest(n, X) -> !] "
      "-<+ @Appraiser [appraise -> store(n)]) *=> @client [x]";
  crypto::Drbg rng(22);
  for (int i = 0; i < 400; ++i) {
    std::string src = seed_src;
    const int mutations = 1 + static_cast<int>(rng.uniform(5));
    for (int m = 0; m < mutations; ++m) {
      if (src.empty()) break;
      const std::size_t pos = rng.uniform(src.size());
      switch (rng.uniform(3)) {
        case 0: src[pos] = static_cast<char>(32 + rng.uniform(95)); break;
        case 1: src.erase(pos, 1 + rng.uniform(4)); break;
        default: src.insert(pos, 1, static_cast<char>(32 + rng.uniform(95)));
      }
    }
    try {
      (void)copland::parse_request(src);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, P4MiniCompiler) {
  const std::string seed_src = dataplane::p4src::acl_v3();
  crypto::Drbg rng(23);
  for (int i = 0; i < 200; ++i) {
    std::string src = seed_src;
    const int mutations = 1 + static_cast<int>(rng.uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform(src.size());
      switch (rng.uniform(3)) {
        case 0: src[pos] = static_cast<char>(32 + rng.uniform(95)); break;
        case 1: src.erase(pos, 1 + rng.uniform(8)); break;
        default: src.insert(pos, 1, static_cast<char>(32 + rng.uniform(95)));
      }
    }
    try {
      (void)dataplane::compile_p4mini(src);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, NetkatParser) {
  const std::string seed_src =
      "filter (sw = 1 & !(pt = 9) + dst & 0xff00 = 0x1200) ; pt := 2 + drop";
  crypto::Drbg rng(24);
  for (int i = 0; i < 300; ++i) {
    std::string src = seed_src;
    const int mutations = 1 + static_cast<int>(rng.uniform(5));
    for (int m = 0; m < mutations; ++m) {
      if (src.empty()) break;
      const std::size_t pos = rng.uniform(src.size());
      switch (rng.uniform(3)) {
        case 0: src[pos] = static_cast<char>(32 + rng.uniform(95)); break;
        case 1: src.erase(pos, 1 + rng.uniform(4)); break;
        default: src.insert(pos, 1, static_cast<char>(32 + rng.uniform(95)));
      }
    }
    try {
      (void)netkat::parse_policy(src);
    } catch (const std::exception&) {
    }
  }
}

// Audit query API (UC4).
TEST(AuditQueries, CertificatesBetweenAndFailed) {
  crypto::KeyStore keys(25);
  ra::Appraiser app("Appraiser", keys);
  keys.provision_hmac("Appraiser");
  ra::Attester att("s1", keys.provision_hmac("s1"));
  crypto::Digest live = crypto::sha256("good");
  att.add_claim_source({"Program", [&live] { return live; }, "prog"});
  app.set_golden("s1", "Program", crypto::sha256("good"));

  crypto::NonceRegistry nonces(26);
  for (int t = 1; t <= 5; ++t) {
    if (t == 4) live = crypto::sha256("rogue");  // compromise at t=4
    const crypto::Nonce n = nonces.issue();
    (void)app.appraise(att.attest({}, n), n, true, t * 100);
  }
  EXPECT_EQ(app.stored_count(), 5u);
  EXPECT_EQ(app.certificates_between(200, 400).size(), 3u);
  const auto window = app.certificates_between(200, 400);
  EXPECT_LE(window.front().issued_at, window.back().issued_at);
  const auto failed = app.failed_certificates();
  ASSERT_EQ(failed.size(), 2u);  // t=4 and t=5
  for (const auto& c : failed) EXPECT_GE(c.issued_at, 400);
}

}  // namespace
}  // namespace pera
