// Tests for endorsement-based golden provisioning (RATS Reference Value
// Provider) and the appraiser-side coverage policy — including the
// challenge-downgrade attack it defeats.
#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "dataplane/p4mini.h"
#include "ra/roles.h"

namespace pera::ra {
namespace {

struct Bed {
  Bed() : keys(61), appraiser("Appraiser", keys) {
    keys.provision_hmac("Appraiser");
    vendor = &keys.provision_hmac("vendor");
    mallory = &keys.provision_hmac("mallory");
  }

  crypto::KeyStore keys;
  Appraiser appraiser;
  crypto::Signer* vendor;
  crypto::Signer* mallory;
};

TEST(Endorsement, SignVerifyRoundTrip) {
  Bed bed;
  const Endorsement e = Endorsement::make(
      "vendor", "s1", "Program", "firewall v5 build 2209",
      crypto::sha256("firewall v5 image"), *bed.vendor);
  EXPECT_TRUE(e.verify(*bed.keys.verifier_for("vendor")));
  EXPECT_FALSE(e.verify(*bed.keys.verifier_for("mallory")));
}

TEST(Endorsement, SerializeRoundTrip) {
  Bed bed;
  const Endorsement e = Endorsement::make(
      "vendor", "", "Program", "router v1", crypto::sha256("img"),
      *bed.vendor);
  const crypto::Bytes ser = e.serialize();
  const Endorsement back =
      Endorsement::deserialize(crypto::BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back.endorser, "vendor");
  EXPECT_EQ(back.target, "Program");
  EXPECT_EQ(back.value, e.value);
  EXPECT_TRUE(back.verify(*bed.keys.verifier_for("vendor")));
}

TEST(Endorsement, TamperedFieldsFail) {
  Bed bed;
  Endorsement e = Endorsement::make("vendor", "s1", "Program", "v5",
                                    crypto::sha256("img"), *bed.vendor);
  Endorsement altered = e;
  altered.value = crypto::sha256("rogue img");
  EXPECT_FALSE(altered.verify(*bed.keys.verifier_for("vendor")));
  altered = e;
  altered.place = "s2";
  EXPECT_FALSE(altered.verify(*bed.keys.verifier_for("vendor")));
}

TEST(Endorsement, AppraiserAcceptsOnlyKnownEndorsers) {
  Bed bed;
  const Endorsement good = Endorsement::make(
      "vendor", "s1", "Program", "v5", crypto::sha256("img"), *bed.vendor);
  EXPECT_TRUE(bed.appraiser.accept_endorsement(good));
  EXPECT_TRUE(bed.appraiser.goldens().contains({"s1", "Program"}));

  // Mallory signs with her own key but claims to be the vendor.
  Endorsement forged = Endorsement::make(
      "vendor", "s2", "Program", "v5", crypto::sha256("rogue"), *bed.mallory);
  EXPECT_FALSE(bed.appraiser.accept_endorsement(forged));
  EXPECT_FALSE(bed.appraiser.goldens().contains({"s2", "Program"}));

  // Unknown endorser identity.
  Endorsement unknown = Endorsement::make(
      "nobody", "s3", "Program", "v5", crypto::sha256("x"), *bed.mallory);
  EXPECT_FALSE(bed.appraiser.accept_endorsement(unknown));
}

TEST(Endorsement, ProductWideEndorsementPinsToPlace) {
  Bed bed;
  const Endorsement e = Endorsement::make(
      "vendor", "", "Program", "router v1 for all PERA-1000",
      crypto::sha256("img"), *bed.vendor);
  EXPECT_FALSE(bed.appraiser.accept_endorsement(e));  // nowhere to pin
  EXPECT_TRUE(bed.appraiser.accept_endorsement(e, "s7"));
  EXPECT_TRUE(bed.appraiser.goldens().contains({"s7", "Program"}));
}

TEST(Endorsement, VendorSignsP4MiniBuilds) {
  // The full provisioning chain: vendor compiles the P4-mini source,
  // endorses its digest, appraiser installs it, attestation succeeds.
  core::Deployment dep(netsim::topo::chain(1));
  crypto::Signer& vendor = dep.keys().provision_hmac("vendor");

  // Load the switch from source.
  auto program = dataplane::compile_p4mini(dataplane::p4src::router_v1());
  dep.switch_node("s1").pera().load_program(program);

  const Endorsement e = Endorsement::make(
      "vendor", "", "Program", "router v1 (p4mini build)",
      program->program_digest(), vendor);
  ASSERT_TRUE(dep.appraiser().appraiser().accept_endorsement(e, "s1"));
  // Hardware golden comes from the operator's own inventory.
  dep.appraiser().appraiser().set_golden(
      "s1", "Hardware",
      dep.switch_node("s1").pera().measurement().measure(
          nac::EvidenceDetail::kHardware));

  const auto rep = dep.run_out_of_band(
      "client", "s1",
      nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram);
  EXPECT_TRUE(rep.accepted);
}

// --- the downgrade attack -----------------------------------------------------

// An on-path adversary rewrites the RP's challenge to request only
// Hardware detail, hoping a genuine-but-empty attestation sails through.
struct DowngradeNode final : netsim::NodeBehavior {
  netsim::TransitResult on_transit(netsim::Network&, netsim::NodeId,
                                   netsim::Message& msg) override {
    if (msg.type == "challenge") {
      auto ch = core::Challenge::deserialize(
          crypto::BytesView{msg.payload.data(), msg.payload.size()});
      ch.detail = nac::mask_of(nac::EvidenceDetail::kHardware);  // strip
      msg.payload = ch.serialize();
      ++downgraded;
    }
    return {};
  }
  int downgraded = 0;
};

TEST(Downgrade, SucceedsWithoutCoveragePolicy) {
  core::Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  DowngradeNode mitm;
  dep.network().attach("s1", &mitm);

  const auto rep = dep.run_out_of_band(
      "client", "s2",
      nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram);
  // The downgraded evidence is genuine (hardware only) and, with no
  // coverage policy, the appraiser has no reason to reject it.
  EXPECT_GT(mitm.downgraded, 0);
  EXPECT_TRUE(rep.accepted) << "this is the vulnerability";
}

TEST(Downgrade, DefeatedByCoveragePolicy) {
  core::Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  DowngradeNode mitm;
  dep.network().attach("s1", &mitm);

  // The appraiser is configured with what the deployment REQUIRES every
  // s2 attestation to contain.
  AppraisalPolicy policy;
  policy.require("s2", "Program");
  dep.appraiser().appraiser().set_policy(std::move(policy));

  const auto rep = dep.run_out_of_band(
      "client", "s2",
      nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram);
  EXPECT_GT(mitm.downgraded, 0);
  EXPECT_TRUE(rep.completed);
  EXPECT_FALSE(rep.accepted)
      << "missing Program measurement must fail the coverage policy";
}

}  // namespace
}  // namespace pera::ra
