// Datacenter-scale integration: the fat-tree-ish topology with many
// concurrent attested flows — the "tenants of a datacenter" setting the
// abstract motivates — plus a NetKAT printer/parser round-trip property.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "crypto/drbg.h"
#include "netkat/eval.h"
#include "netkat/parser.h"

namespace pera::core {
namespace {

nac::CompiledPolicy tenant_policy() {
  return nac::compile(std::string(
      "*tenant<n> : forall hop : @hop [attest(Hardware -~- Program) -> !] "
      "*=> @Appraiser [appraise]"));
}

TEST(Datacenter, ManyTenantsAttestConcurrently) {
  Deployment dep(netsim::topo::datacenter());
  dep.provision_goldens();
  const nac::CompiledPolicy pol = tenant_policy();
  ASSERT_TRUE(dep.validate_policy(pol));

  // Eight host pairs spread across pods, 8 packets each.
  const std::pair<const char*, const char*> pairs[] = {
      {"h1", "h8"}, {"h2", "h7"}, {"h3", "h6"}, {"h4", "h5"},
      {"h5", "h1"}, {"h6", "h2"}, {"h7", "h3"}, {"h8", "h4"}};
  std::size_t delivered = 0;
  std::size_t failures = 0;
  std::size_t attestations = 0;
  for (const auto& [src, dst] : pairs) {
    const FlowReport rep = dep.send_flow(src, dst, pol, 8, /*in_band=*/true);
    delivered += rep.packets_delivered;
    failures += rep.appraisal_failures;
    attestations += rep.attestations;
  }
  EXPECT_EQ(delivered, 64u);
  EXPECT_EQ(failures, 0u);
  // Every inter-pod path crosses >= 3 switches (tor-agg-...-tor).
  EXPECT_GE(attestations, 64u * 3);
}

TEST(Datacenter, OneCompromisedTorAffectsOnlyItsFlows) {
  Deployment dep(netsim::topo::datacenter());
  dep.provision_goldens();
  const nac::CompiledPolicy pol = tenant_policy();

  dep.switch_node("tor1").pera().load_program(
      dataplane::make_rogue_router("v1"));

  // h1/h2 are under tor1: their flows fail appraisal.
  const FlowReport tainted = dep.send_flow("h1", "h8", pol, 4, true);
  EXPECT_EQ(tainted.appraisal_failures, 4u);

  // h3 -> h4 never touches tor1 (both under tor2): clean.
  const FlowReport clean = dep.send_flow("h3", "h4", pol, 4, true);
  EXPECT_EQ(clean.appraisal_failures, 0u);
}

TEST(Datacenter, CoreLinkFailureReroutesAndStillAttests) {
  Deployment dep(netsim::topo::datacenter());
  dep.provision_goldens();
  const nac::CompiledPolicy pol = tenant_policy();
  dep.network().topology().set_link_state("core1", "agg1", false);
  const FlowReport rep = dep.send_flow("h1", "h8", pol, 4, true);
  EXPECT_EQ(rep.packets_delivered, 4u);
  EXPECT_EQ(rep.appraisal_failures, 0u);
}

}  // namespace
}  // namespace pera::core

namespace pera::netkat {
namespace {

// Random policy generator over a small field vocabulary.
PolicyPtr random_policy(crypto::Drbg& rng, int depth = 0) {
  static const char* kFields[] = {"sw", "pt", "dst", "vlan"};
  const auto field = [&] { return std::string(kFields[rng.uniform(4)]); };
  const std::uint64_t choice = depth >= 4 ? rng.uniform(3) : rng.uniform(7);
  switch (choice) {
    case 0:
      return Policy::mod(field(), rng.uniform(5));
    case 1:
      return Policy::filter(Predicate::test(field(), rng.uniform(5)));
    case 2:
      return Policy::filter(Predicate::test_masked(field(), rng.uniform(16),
                                                   rng.uniform(16)));
    case 3:
      return Policy::unite(random_policy(rng, depth + 1),
                           random_policy(rng, depth + 1));
    case 4:
      return Policy::seq(random_policy(rng, depth + 1),
                         random_policy(rng, depth + 1));
    case 5:
      return Policy::filter(Predicate::neg(
          Predicate::disj(Predicate::test(field(), rng.uniform(3)),
                          Predicate::test(field(), rng.uniform(3)))));
    default:
      // Star over a filter-guarded mod so fixpoints stay tiny.
      return Policy::star(Policy::seq(
          Policy::filter(Predicate::test(field(), rng.uniform(3))),
          Policy::mod(field(), rng.uniform(3))));
  }
}

class NetkatRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NetkatRoundTrip, PrintParseSemanticIdentity) {
  crypto::Drbg rng(static_cast<std::uint64_t>(GetParam()) * 811);
  // Packet universe over the vocabulary.
  PacketSet universe;
  for (std::uint64_t sw = 0; sw < 3; ++sw) {
    for (std::uint64_t pt = 0; pt < 3; ++pt) {
      Packet p;
      p.set("sw", sw);
      p.set("pt", pt);
      p.set("dst", (sw + pt) % 4);
      universe.insert(std::move(p));
    }
  }
  for (int i = 0; i < 15; ++i) {
    const PolicyPtr p = random_policy(rng);
    const std::string printed = to_string(p);
    PolicyPtr back;
    ASSERT_NO_THROW(back = parse_policy(printed)) << printed;
    EXPECT_TRUE(equivalent_on(p, back, universe)) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetkatRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace pera::netkat
