// Tests for the policy well-formedness checker (what a relying party
// lints before serializing a policy into the options header), plus the
// UC3 DDoS goodput experiment.
#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "copland/analysis.h"
#include "copland/parser.h"
#include "core/deployment.h"

namespace pera::copland {
namespace {

TEST(WellFormed, PaperExpressionsAreClean) {
  for (const char* src : {
           "*bank : @ks [av us bmon] -~- @us [bmon us exts]",
           "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]",
           "*RP1<n> : @Switch [attest(Hardware -~- Program) -> # -> !] +<+ "
           "@Appraiser [appraise -> certify(n) -> ! -> store(n)]",
           "*scanner<P> : @scanner [P |> attest(P) -> !] -<+ "
           "@Appraiser [appraise -> store]",
       }) {
    const Request req = parse_request(src);
    const WellFormedness wf = check_well_formed(req.body);
    EXPECT_TRUE(wf.ok) << src << ": "
                       << (wf.issues.empty() ? "" : wf.issues[0]);
  }
}

TEST(WellFormed, BareSignFlagged) {
  const WellFormedness wf = check_well_formed(parse_term("@sw [!]"));
  ASSERT_FALSE(wf.ok);
  EXPECT_NE(wf.issues[0].find("signs empty"), std::string::npos);
}

TEST(WellFormed, BareHashFlagged) {
  EXPECT_FALSE(check_well_formed(parse_term("# -> a")).ok);
}

TEST(WellFormed, SignAfterMeasurementOk) {
  EXPECT_TRUE(check_well_formed(parse_term("a -> !")).ok);
  EXPECT_TRUE(check_well_formed(parse_term("a -> # -> !")).ok);
}

TEST(WellFormed, BranchArmWithoutInputFlagged) {
  // The right arm gets no evidence (-<-) yet starts by signing.
  EXPECT_FALSE(check_well_formed(parse_term("a -<- !")).ok);
  // With +<+ the right arm receives the incoming evidence... but at the
  // top level there is no incoming evidence either.
  EXPECT_FALSE(check_well_formed(parse_term("a +<+ !")).ok);
  // Inside a pipe there is.
  EXPECT_TRUE(check_well_formed(parse_term("b -> (a +<+ !)")).ok);
}

TEST(WellFormed, UnusedForallVarFlagged) {
  const WellFormedness wf =
      check_well_formed(parse_term("forall h, dead : @h [a] *=> @c [b]"));
  ASSERT_FALSE(wf.ok);
  EXPECT_NE(wf.issues[0].find("'dead'"), std::string::npos);
}

TEST(WellFormed, ShadowedForallFlagged) {
  EXPECT_FALSE(check_well_formed(
                   parse_term("forall h : (forall h : @h [a]) *=> @h [b]"))
                   .ok);
}

TEST(WellFormed, StarWithoutAbstractPlaceFlagged) {
  const WellFormedness wf = check_well_formed(
      parse_term("forall h : @fixed [a] *=> @h [b]"));
  ASSERT_FALSE(wf.ok);
  EXPECT_NE(wf.issues[0].find("never expands"), std::string::npos);
}

TEST(WellFormed, GoodAp1Clean) {
  const Request req = parse_request(
      "*bank<n, X> : forall hop, client : "
      "(@hop [Khop |> attest(n, X) -> !] -<+ @Appraiser [appraise -> "
      "store(n)]) *=> @client [Kclient |> @ks [av us bmon -> !] -<- "
      "@us [bmon us exts -> !]]");
  const WellFormedness wf = check_well_formed(req.body);
  EXPECT_TRUE(wf.ok) << (wf.issues.empty() ? "" : wf.issues[0]);
}

}  // namespace
}  // namespace pera::copland

namespace pera::core {
namespace {

// UC3's DDoS posture, quantified: under attack the server admits only
// flows carrying verifiable path evidence. Legitimate (policy-carrying)
// traffic keeps flowing; attack traffic (no evidence) is turned away at
// the admission check.
TEST(Ddos, EvidenceGatedAdmission) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));

  // 30 legitimate packets with evidence, 100 attack packets without.
  const FlowReport good = dep.send_flow("client", "server", pol, 30, true);
  const FlowReport attack = dep.send_plain_flow("client", "server", 100);

  HostNode& server = dep.host("server");
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  for (const auto& rec : server.received()) {
    if (rec.carrier_records > 0) {
      ++admitted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(admitted, good.packets_delivered);
  EXPECT_EQ(rejected, attack.packets_delivered);
  EXPECT_EQ(admitted, 30u);
  EXPECT_EQ(rejected, 100u);
  // Goodput under the drop-unattested policy: 100% of legitimate traffic,
  // 0% of attack traffic.
}

// An attacker cannot forge admission: tampered evidence fails appraisal,
// and the appraiser's failure count backs the server's drop decision.
TEST(Ddos, ForgedEvidenceDoesNotBuyAdmission) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  adversary::TamperingNode tamper(&dep.switch_node("s2"),
                                  adversary::TamperingNode::Mode::kForge, 5);
  dep.network().attach("s2", &tamper);

  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
  const FlowReport rep = dep.send_flow("client", "server", pol, 10, true);
  EXPECT_EQ(rep.appraisal_failures, 10u);
}

}  // namespace
}  // namespace pera::core
