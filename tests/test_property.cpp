// Property-based tests over randomly generated Copland terms and
// dataplane workloads:
//   * parse(print(t)) == t for arbitrary well-formed terms,
//   * evaluation is deterministic and evidence encoding round-trips,
//   * the event-graph analysis is consistent with evaluation order,
//   * PolicyHeader serialization round-trips for arbitrary instructions.
#include <gtest/gtest.h>

#include "copland/analysis.h"
#include "copland/parser.h"
#include "copland/pretty.h"
#include "copland/semantics.h"
#include "copland/testbed.h"
#include "crypto/drbg.h"
#include "nac/header.h"

namespace pera::copland {
namespace {

/// Random well-formed Copland term generator. Components are drawn from a
/// small closed vocabulary so the testbed can pre-install them all.
class TermGen {
 public:
  explicit TermGen(std::uint64_t seed) : rng_(seed) {}

  static const std::vector<std::string>& places() {
    static const std::vector<std::string> kPlaces = {"p0", "p1", "p2", "p3"};
    return kPlaces;
  }
  static const std::vector<std::string>& components() {
    static const std::vector<std::string> kComps = {"c0", "c1", "c2", "c3",
                                                    "c4"};
    return kComps;
  }

  TermPtr gen(int depth = 0) {
    const int max_depth = 5;
    // Leaves dominate as depth grows.
    const std::uint64_t choice =
        depth >= max_depth ? rng_.uniform(4) : rng_.uniform(9);
    switch (choice) {
      case 0:
        return Term::atom(pick(components()));
      case 1:
        return Term::measure(pick(components()), pick(places()),
                             pick(components()));
      case 2:
        return Term::nil();
      case 3:
        // sign/hash must follow something; wrap a leaf in a pipe.
        return rng_.chance(0.5)
                   ? Term::pipe(Term::atom(pick(components())), Term::sign())
                   : Term::pipe(Term::atom(pick(components())), Term::hash());
      case 4:
        return Term::at(pick(places()), gen(depth + 1));
      case 5:
        return Term::pipe(gen(depth + 1), gen(depth + 1));
      case 6:
        return Term::seq(gen(depth + 1), gen(depth + 1), rng_.chance(0.5),
                         rng_.chance(0.5));
      case 7:
        return Term::par(gen(depth + 1), gen(depth + 1), rng_.chance(0.5),
                         rng_.chance(0.5));
      default:
        return Term::guard("G" + std::to_string(rng_.uniform(3)),
                           gen(depth + 1));
    }
  }

 private:
  const std::string& pick(const std::vector<std::string>& v) {
    return v[rng_.uniform(v.size())];
  }

  crypto::Drbg rng_;
};

struct PropertyBed {
  PropertyBed() : keys(4242), platform(keys), nonces(2424) {
    for (const auto& place : TermGen::places()) {
      for (const auto& comp : TermGen::components()) {
        platform.install(place, comp, place + "/" + comp + " contents");
      }
      keys.provision_hmac(place);
    }
    // Components also live at the root place for bare atoms.
    for (const auto& comp : TermGen::components()) {
      platform.install("root", comp, "root/" + comp);
    }
    keys.provision_hmac("root");
    platform.install_default_funcs(nonces);
  }

  crypto::KeyStore keys;
  TestbedPlatform platform;
  crypto::NonceRegistry nonces;
};

class RandomTerms : public ::testing::TestWithParam<int> {};

TEST_P(RandomTerms, PrintParseRoundTrip) {
  TermGen gen(static_cast<std::uint64_t>(GetParam()) * 101);
  for (int i = 0; i < 20; ++i) {
    const TermPtr t = gen.gen();
    const std::string printed = to_string(t);
    TermPtr back;
    ASSERT_NO_THROW(back = parse_term(printed)) << printed;
    EXPECT_TRUE(equal(t, back)) << printed << "\n  vs  " << to_string(back);
  }
}

TEST_P(RandomTerms, EvaluationDeterministic) {
  TermGen gen(static_cast<std::uint64_t>(GetParam()) * 211);
  PropertyBed bed1;
  PropertyBed bed2;
  Evaluator ev1(bed1.platform);
  Evaluator ev2(bed2.platform);
  for (int i = 0; i < 10; ++i) {
    const TermPtr t = gen.gen();
    const EvidencePtr a = ev1.eval(t, "root", Evidence::empty());
    const EvidencePtr b = ev2.eval(t, "root", Evidence::empty());
    EXPECT_TRUE(equal(a, b)) << to_string(t);
  }
}

TEST_P(RandomTerms, EvidenceEncodingRoundTrips) {
  TermGen gen(static_cast<std::uint64_t>(GetParam()) * 307);
  PropertyBed bed;
  Evaluator ev(bed.platform);
  for (int i = 0; i < 10; ++i) {
    const TermPtr t = gen.gen();
    const EvidencePtr e = ev.eval(t, "root", Evidence::empty());
    const crypto::Bytes enc = encode(e);
    const EvidencePtr back = decode(crypto::BytesView{enc.data(), enc.size()});
    EXPECT_TRUE(equal(e, back)) << to_string(t);
    EXPECT_EQ(digest(e), digest(back));
  }
}

TEST_P(RandomTerms, CleanPlatformAlwaysAppraises) {
  // Invariant: with no corruption and all keys known, every random policy
  // produces evidence that appraises clean.
  TermGen gen(static_cast<std::uint64_t>(GetParam()) * 401);
  PropertyBed bed;
  Evaluator ev(bed.platform);
  for (int i = 0; i < 10; ++i) {
    const TermPtr t = gen.gen();
    const EvidencePtr e = ev.eval(t, "root", Evidence::empty());
    const AppraisalResult res = appraise(e, bed.platform.goldens(), bed.keys);
    EXPECT_TRUE(res.ok) << to_string(t) << "\n" << describe(e);
  }
}

TEST_P(RandomTerms, EventGraphMatchesEvaluatorEventOrder) {
  // The static happens-before must be consistent with the dynamic event
  // order the evaluator produces (left-first scheduling): if the graph
  // says a < b, the evaluator must fire a before b.
  struct Recorder final : EvalObserver {
    std::vector<std::pair<std::string, std::string>> measures;  // asp,target
    void on_event(const Term& term, const std::string&) override {
      if (term.kind == TermKind::kMeasure) {
        measures.emplace_back(term.asp, term.target);
      } else if (term.kind == TermKind::kAtom) {
        measures.emplace_back("", term.target);
      }
    }
  };

  TermGen gen(static_cast<std::uint64_t>(GetParam()) * 503);
  PropertyBed bed;
  for (int i = 0; i < 10; ++i) {
    const TermPtr t = gen.gen();
    Recorder rec;
    Evaluator ev(bed.platform, &rec);
    (void)ev.eval(t, "root", Evidence::empty());

    const EventGraph g = build_event_graph(t, "root");
    ASSERT_EQ(g.measurements.size(), rec.measures.size()) << to_string(t);
    // Events are generated in the same traversal order under left-first
    // scheduling, so index order must already respect happens-before.
    for (std::size_t a = 0; a < g.measurements.size(); ++a) {
      for (std::size_t b = 0; b < a; ++b) {
        EXPECT_FALSE(g.precedes(g.measurements[a].id, g.measurements[b].id))
            << "event " << a << " precedes earlier event " << b << " in "
            << to_string(t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTerms, ::testing::Range(1, 13));

// --- random policy headers -------------------------------------------------------

class RandomHeaders : public ::testing::TestWithParam<int> {};

TEST_P(RandomHeaders, SerializationRoundTrips) {
  crypto::Drbg rng(static_cast<std::uint64_t>(GetParam()) * 613);
  nac::CompiledPolicy pol;
  pol.relying_party = "rp";
  pol.policy_id = rng.digest();
  pol.appraiser = rng.chance(0.5) ? "Appraiser" : "";
  const std::size_t hops = 1 + rng.uniform(6);
  for (std::size_t i = 0; i < hops; ++i) {
    nac::HopInstruction h;
    h.wildcard = rng.chance(0.3);
    if (!h.wildcard) h.place = "place" + std::to_string(rng.uniform(5));
    if (rng.chance(0.4)) h.guard = "K" + std::to_string(rng.uniform(3));
    h.detail = static_cast<nac::DetailMask>(rng.uniform(32));
    h.hash_evidence = rng.chance(0.3);
    h.sign_evidence = rng.chance(0.8);
    h.is_collector = rng.chance(0.2);
    h.out_of_band = rng.chance(0.3);
    const std::size_t nt = rng.uniform(3);
    for (std::size_t j = 0; j < nt; ++j) {
      h.custom_targets.push_back("prop" + std::to_string(rng.uniform(4)));
    }
    pol.hops.push_back(std::move(h));
  }
  const crypto::Nonce nonce{rng.digest()};
  const nac::PolicyHeader hdr = nac::make_header(
      pol, nonce, rng.chance(0.5), static_cast<std::uint8_t>(rng.uniform(11)));
  const crypto::Bytes ser = hdr.serialize();
  const nac::PolicyHeader back =
      nac::PolicyHeader::deserialize(crypto::BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back.serialize(), ser);
  ASSERT_EQ(back.hops.size(), hdr.hops.size());
  for (std::size_t i = 0; i < hdr.hops.size(); ++i) {
    EXPECT_EQ(back.hops[i], hdr.hops[i]);
  }
}

TEST_P(RandomHeaders, TruncationAlwaysRejected) {
  crypto::Drbg rng(static_cast<std::uint64_t>(GetParam()) * 709);
  nac::CompiledPolicy pol;
  pol.policy_id = rng.digest();
  nac::HopInstruction h;
  h.wildcard = true;
  h.detail = nac::kAllDetail;
  h.custom_targets = {"x"};
  pol.hops = {h};
  const crypto::Bytes ser = nac::make_header(pol, {}, true).serialize();
  // Any strict prefix must be rejected, never crash.
  for (std::size_t cut = 0; cut < ser.size(); cut += 1 + rng.uniform(5)) {
    EXPECT_THROW((void)nac::PolicyHeader::deserialize(
                     crypto::BytesView{ser.data(), cut}),
                 std::exception)
        << "prefix length " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHeaders, ::testing::Range(1, 9));

}  // namespace
}  // namespace pera::copland
