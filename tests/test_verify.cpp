// Tests for the pre-deployment policy verifier (src/verify): diagnostics
// rendering, parser span stamping, cross-place leak analysis, the V1-V5
// checks over the paper's fixtures, and the nac::compile integration.
#include <gtest/gtest.h>

#include <algorithm>

#include "copland/analysis.h"
#include "copland/lexer.h"
#include "copland/parser.h"
#include "crypto/keystore.h"
#include "nac/compiler.h"
#include "netkat/policy.h"
#include "netsim/topology.h"
#include "verify/diagnostics.h"
#include "verify/verifier.h"

namespace pera {
namespace {

using verify::DiagnosticEngine;
using verify::Severity;
using verify::Span;
using verify::VerifyModel;

// The paper's expressions (1)-(4) and policies AP1-AP3 (§4.2, §5.2).
constexpr const char* kExpr1 =
    "*bank : @ks [av us bmon] -~- @us [bmon us exts]";
constexpr const char* kExpr2 =
    "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]";
constexpr const char* kExpr3a =
    "*RP1<n> : @Switch [attest(Hardware -~- Program) -> # -> !] +<+ "
    "@Appraiser [appraise -> certify(n) -> ! -> store(n)]";
constexpr const char* kExpr3b = "*RP2<n> : @Appraiser [retrieve(n)]";
constexpr const char* kExpr4 =
    "*RP1 : @Switch [attest(Hardware -~- Program) -> # -> !] -> "
    "@RP2 [@Appraiser [appraise -> certify -> !]]";
constexpr const char* kAP1 =
    "*bank<n, X> : forall hop, client : (@hop [Khop |> attest(n, X) -> !] "
    "-<+ @Appraiser [appraise -> store(n)]) *=> @client [Kclient |> "
    "@ks [av us bmon -> !] -<- @us [bmon us exts -> !]]";
constexpr const char* kAP2 =
    "*scanner<P> : @scanner [P |> attest(P) -> !] -<+ "
    "@Appraiser [appraise -> store]";
constexpr const char* kAP3 =
    "*pathCheck<F1, F2, Peer1, Peer2> : forall p, q, r, peer1, peer2 : "
    "(@peer1 [Peer1 |> !] -<+ @p [attest(F1) -> !] -<+ @q [attest(F2) -> !] "
    "-<+ @Appraiser [appraise -> store]) *=> (@r [Q |> !] -<+ "
    "@peer2 [Peer2 |> !] -<+ @Appraiser [appraise -> store])";
constexpr const char* kSimpleStar =
    "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
    "@Appraiser [appraise]";

bool has_code(const DiagnosticEngine& de, const std::string& code,
              Severity severity) {
  return std::any_of(de.diagnostics().begin(), de.diagnostics().end(),
                     [&](const verify::Diagnostic& d) {
                       return d.code == code && d.severity == severity;
                     });
}

const verify::Diagnostic* first_error(const DiagnosticEngine& de) {
  for (const auto& d : de.diagnostics()) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

// A fully provisioned isp() deployment: everything keyed, all switches and
// the DPI appliance RA-capable.
struct IspDeployment {
  netsim::Topology topo = netsim::topo::isp();
  crypto::KeyStore keys{42};

  IspDeployment() {
    for (const auto& n : topo.nodes()) keys.provision_hmac(n.name);
    for (const char* p : {"bank", "ks", "us", "scanner", "rp", "pathCheck"}) {
      keys.provision_hmac(p);
    }
  }

  [[nodiscard]] VerifyModel model() const {
    VerifyModel m;
    m.topology = &topo;
    m.keys = &keys;
    return m;
  }
};

// --- lexer / parser groundwork ----------------------------------------------

TEST(VerifySpans, LexerSkipsLineComments) {
  const auto req = copland::parse_request(
      "// a policy header comment\n*bank : @ks [av us bmon -> !]\n// tail\n");
  EXPECT_EQ(req.relying_party, "bank");
  ASSERT_NE(req.body, nullptr);
  EXPECT_EQ(req.body->kind, copland::TermKind::kAtPlace);
}

TEST(VerifySpans, ParserStampsSourceSpans) {
  const std::string src = "*bank : @ks [av us bmon -> !]";
  const auto req = copland::parse_request(src);
  ASSERT_TRUE(req.body->has_span());
  // The @ks block spans from '@' to the closing ']'.
  EXPECT_EQ(req.body->src_begin, src.find('@'));
  EXPECT_EQ(req.body->src_end, src.size());
  // The measurement inside spans exactly "av us bmon".
  const auto& pipe = req.body->child;
  ASSERT_EQ(pipe->kind, copland::TermKind::kPipe);
  EXPECT_EQ(src.substr(pipe->left->src_begin,
                       pipe->left->src_end - pipe->left->src_begin),
            "av us bmon");
}

TEST(VerifySpans, SynthesizedNodesHaveNoSpan) {
  EXPECT_FALSE(copland::Term::sign()->has_span());
  EXPECT_FALSE(copland::Term::atom("Program")->has_span());
}

// --- diagnostics engine ------------------------------------------------------

TEST(Diagnostics, CountsAndOk) {
  DiagnosticEngine de;
  EXPECT_TRUE(de.ok());
  de.note("V1", "a note");
  de.warning("V0", "a warning");
  EXPECT_TRUE(de.ok());
  de.error("V5", "an error");
  EXPECT_FALSE(de.ok());
  EXPECT_EQ(de.error_count(), 1u);
  EXPECT_EQ(de.warning_count(), 1u);
  EXPECT_EQ(de.count(Severity::kNote), 1u);
}

TEST(Diagnostics, HumanRenderingUnderlinesSpan) {
  DiagnosticEngine de("*rp : @edge1 [!]");
  de.error("V5", "no key", Span{6, 12}, "edge1");
  const std::string out = de.render_human();
  EXPECT_NE(out.find("error[V5]: no key"), std::string::npos);
  EXPECT_NE(out.find("@edge1"), std::string::npos);
  EXPECT_NE(out.find("^^^^^^"), std::string::npos);
  EXPECT_NE(out.find("1 error(s), 0 warning(s)"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingEscapesAndReportsTotals) {
  DiagnosticEngine de;
  de.error("V2", "guard \"K\" is dead", Span{3, 7});
  de.warning("V0", "line\nbreak");
  const std::string out = de.render_json();
  EXPECT_NE(out.find("\"code\": \"V2\""), std::string::npos);
  EXPECT_NE(out.find("guard \\\"K\\\" is dead"), std::string::npos);
  EXPECT_NE(out.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(out.find("\"span\": {\"begin\": 3, \"end\": 7}"),
            std::string::npos);
  EXPECT_NE(out.find("\"ok\": false"), std::string::npos);
}

// --- cross-place leak analysis ----------------------------------------------

TEST(CrossPlaceLeaks, UnsignedMeasurementLeaks) {
  const auto req = copland::parse_request(
      "*rp : @edge1 [attest(Program)] +<+ @Appraiser [appraise]");
  const auto leaks = copland::find_cross_place_leaks(req.body, "rp");
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].from_place, "edge1");
  EXPECT_EQ(leaks[0].to_place, "rp");
}

TEST(CrossPlaceLeaks, SignatureCoversTheCrossing) {
  const auto req = copland::parse_request(
      "*rp : @edge1 [attest(Program) -> !] +<+ @Appraiser [appraise]");
  EXPECT_TRUE(copland::find_cross_place_leaks(req.body, "rp").empty());
}

TEST(CrossPlaceLeaks, CollectorConsumesEvidence) {
  // appraise consumes what reaches it; nothing leaks past the appraiser.
  const auto req = copland::parse_request(
      "*rp : @edge1 [attest(Program) -> !] +<+ "
      "@Appraiser [appraise -> certify -> !]");
  EXPECT_TRUE(copland::find_cross_place_leaks(req.body, "rp").empty());
}

TEST(CrossPlaceLeaks, ParamsAreNotMeasurements) {
  const auto req = copland::parse_request("*rp<n> : @edge1 [n -> !]");
  EXPECT_TRUE(
      copland::find_cross_place_leaks(req.body, "rp", req.params).empty());
}

TEST(CrossPlaceLeaks, EachLeakReportedOnce) {
  // The same unsigned evidence crosses two boundaries; only the first
  // crossing is reported.
  const auto req = copland::parse_request(
      "*rp : @edge1 [attest(Program)] -> @edge2 [{}]");
  const auto leaks = copland::find_cross_place_leaks(req.body, "rp");
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].from_place, "edge1");
}

// --- golden accepts ----------------------------------------------------------

TEST(VerifyGolden, PaperExpressionsVerify) {
  const IspDeployment dep;
  for (const char* policy : {kExpr1, kExpr2, kExpr3b}) {
    DiagnosticEngine de(policy);
    EXPECT_TRUE(verify::verify_source(policy, dep.model(), de))
        << policy << "\n"
        << de.render_human();
  }
  // Expressions (3a) and (4) name a literal 'Switch': give them one.
  netsim::Topology topo;
  topo.add_node("Switch", netsim::NodeKind::kSwitch);
  topo.add_node("Appraiser", netsim::NodeKind::kAppraiser);
  topo.add_link("Switch", "Appraiser");
  crypto::KeyStore keys(7);
  for (const char* p : {"Switch", "Appraiser", "RP1", "RP2"}) {
    keys.provision_hmac(p);
  }
  VerifyModel m;
  m.topology = &topo;
  m.keys = &keys;
  for (const char* policy : {kExpr3a, kExpr4}) {
    DiagnosticEngine de(policy);
    EXPECT_TRUE(verify::verify_source(policy, m, de))
        << policy << "\n"
        << de.render_human();
  }
}

TEST(VerifyGolden, AttestationPoliciesVerify) {
  const IspDeployment dep;
  {
    VerifyModel m = dep.model();
    m.bindings = {{"client", "client"}};
    DiagnosticEngine de(kAP1);
    EXPECT_TRUE(verify::verify_source(kAP1, m, de)) << de.render_human();
  }
  {
    DiagnosticEngine de(kAP2);
    EXPECT_TRUE(verify::verify_source(kAP2, dep.model(), de))
        << de.render_human();
  }
  {
    VerifyModel m = dep.model();
    m.bindings = {{"p", "edge1"},
                  {"q", "core1"},
                  {"r", "core2"},
                  {"peer1", "client"},
                  {"peer2", "pm_phone"}};
    DiagnosticEngine de(kAP3);
    EXPECT_TRUE(verify::verify_source(kAP3, m, de)) << de.render_human();
  }
}

TEST(VerifyGolden, Expr1WarnsAboutHostInternalUnsignedEvidence) {
  const IspDeployment dep;
  DiagnosticEngine de(kExpr1);
  EXPECT_TRUE(verify::verify_source(kExpr1, dep.model(), de));
  // ks/us are host-internal, so the unsigned crossings are warnings.
  EXPECT_TRUE(has_code(de, verify::kCodeEvidenceFlow, Severity::kWarning));
  EXPECT_FALSE(has_code(de, verify::kCodeEvidenceFlow, Severity::kError));
}

// --- broken fixtures, one per check -----------------------------------------

TEST(VerifyBroken, V1UnreachableCollector) {
  netsim::Topology topo;  // two nodes, deliberately no link
  topo.add_node("Switch", netsim::NodeKind::kSwitch);
  topo.add_node("Appraiser", netsim::NodeKind::kAppraiser);
  crypto::KeyStore keys(7);
  keys.provision_hmac("Switch");
  keys.provision_hmac("Appraiser");
  VerifyModel m;
  m.topology = &topo;
  m.keys = &keys;
  const std::string src =
      "*rp<n> : @Switch [attest(Program) -> !] +<+ @Appraiser [appraise]";
  DiagnosticEngine de(src);
  EXPECT_FALSE(verify::verify_source(src, m, de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodePath);
  EXPECT_TRUE(err->span.valid());
  EXPECT_EQ(err->place, "Switch");
}

TEST(VerifyBroken, V2DeadGuard) {
  const IspDeployment dep;
  VerifyModel m = dep.model();
  m.guards = {{"Ktest", netkat::Predicate::fls()}};
  const std::string src =
      "*rp<n> : @edge1 [Ktest |> attest(Program) -> !] +<+ "
      "@Appraiser [appraise]";
  DiagnosticEngine de(src);
  EXPECT_FALSE(verify::verify_source(src, m, de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodeDeadGuard);
  // Span covers the guard expression, starting at "Ktest".
  EXPECT_EQ(err->span.begin, src.find("Ktest"));
}

TEST(VerifyBroken, V2GuardSatisfiableUnderUniverse) {
  const IspDeployment dep;
  VerifyModel m = dep.model();
  m.guards = {{"Ktest", netkat::Predicate::test("port", 443)}};
  const std::string src =
      "*rp<n> : @edge1 [Ktest |> attest(Program) -> !] +<+ "
      "@Appraiser [appraise]";
  {  // No universe: witness enumeration finds port=443.
    DiagnosticEngine de(src);
    EXPECT_TRUE(verify::verify_source(src, m, de)) << de.render_human();
  }
  {  // A universe without port 443: the guard is dead for this deployment.
    m.packet_universe = {netkat::Packet{{"port", 80}}};
    DiagnosticEngine de(src);
    EXPECT_FALSE(verify::verify_source(src, m, de));
    EXPECT_TRUE(has_code(de, verify::kCodeDeadGuard, Severity::kError));
  }
}

TEST(VerifyBroken, V3EmptyQuantifierDomain) {
  const IspDeployment dep;
  VerifyModel m = dep.model();
  m.ra_capable = std::set<std::string>{};  // explicitly: nothing RA-capable
  DiagnosticEngine de(kSimpleStar);
  EXPECT_FALSE(verify::verify_source(kSimpleStar, m, de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodeQuantifier);
  EXPECT_TRUE(err->span.valid());
}

TEST(VerifyBroken, V3WildcardHopOnNonRaElement) {
  const IspDeployment dep;
  VerifyModel m = dep.model();
  // Drop core1 from the RA set and expect the client->Appraiser flow
  // (which crosses the core) to be flagged.
  std::set<std::string> ra;
  for (const auto& n : dep.topo.nodes()) {
    if (n.kind == netsim::NodeKind::kSwitch ||
        n.kind == netsim::NodeKind::kAppliance) {
      ra.insert(n.name);
    }
  }
  ra.erase("core1");
  m.ra_capable = ra;
  m.flows = {{"client", "Appraiser"}};
  DiagnosticEngine de(kSimpleStar);
  EXPECT_FALSE(verify::verify_source(kSimpleStar, m, de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodeQuantifier);
  EXPECT_EQ(err->place, "core1");
}

TEST(VerifyBroken, V4UnsignedNetworkCrossing) {
  const IspDeployment dep;
  const std::string src =
      "*rp<n> : @edge1 [attest(Program)] +<+ @Appraiser [appraise]";
  DiagnosticEngine de(src);
  EXPECT_FALSE(verify::verify_source(src, dep.model(), de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodeEvidenceFlow);
  EXPECT_TRUE(err->span.valid());
  EXPECT_EQ(err->place, "edge1");
}

TEST(VerifyBroken, V5MissingSigningKey) {
  const IspDeployment dep;
  crypto::KeyStore keys(7);  // everything except edge1
  for (const auto& n : dep.topo.nodes()) {
    if (n.name != "edge1") keys.provision_hmac(n.name);
  }
  VerifyModel m = dep.model();
  m.keys = &keys;
  const std::string src =
      "*rp<n> : @edge1 [attest(Program) -> !] +<+ @Appraiser [appraise]";
  DiagnosticEngine de(src);
  EXPECT_FALSE(verify::verify_source(src, m, de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodeKey);
  EXPECT_EQ(err->place, "edge1");
  // Span points at the '!' token.
  EXPECT_EQ(src.substr(err->span.begin, err->span.end - err->span.begin),
            "!");
}

TEST(VerifyBroken, ParseErrorBecomesP0Diagnostic) {
  DiagnosticEngine de("*rp : @edge1 [");
  EXPECT_FALSE(verify::verify_source("*rp : @edge1 [", {}, de));
  const auto* err = first_error(de);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, verify::kCodeParse);
}

// --- compiler integration ----------------------------------------------------

TEST(CompileGuard, RefusesFailingPolicyAndRestoresHook) {
  const IspDeployment dep;
  const std::string bad =
      "*rp<n> : @edge1 [attest(Program)] +<+ @Appraiser [appraise]";
  {
    const verify::ScopedCompileGuard guard(dep.model());
    EXPECT_THROW(
        {
          try {
            (void)nac::compile(bad);
          } catch (const nac::CompileError& e) {
            EXPECT_NE(std::string(e.what()).find("static verification"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("V4"), std::string::npos);
            throw;
          }
        },
        nac::CompileError);
    // A clean policy still compiles under the guard.
    EXPECT_NO_THROW((void)nac::compile(kExpr2));
  }
  // Guard destroyed: the bad policy compiles again.
  EXPECT_NO_THROW((void)nac::compile(bad));
}

TEST(CompileGuard, ForceDemotesRefusalToPassThrough) {
  const IspDeployment dep;
  const verify::ScopedCompileGuard guard(dep.model(), /*force=*/true);
  const auto compiled = nac::compile(
      "*rp<n> : @edge1 [attest(Program)] +<+ @Appraiser [appraise]");
  EXPECT_EQ(compiled.hops.size(), 2u);
}

TEST(CompileGuard, GuardsNest) {
  const IspDeployment dep;
  const std::string bad =
      "*rp<n> : @edge1 [attest(Program)] +<+ @Appraiser [appraise]";
  const verify::ScopedCompileGuard outer(dep.model());
  {
    const verify::ScopedCompileGuard inner(dep.model(), /*force=*/true);
    EXPECT_NO_THROW((void)nac::compile(bad));
  }
  // Inner destroyed: the outer (strict) guard is active again.
  EXPECT_THROW((void)nac::compile(bad), nac::CompileError);
}

}  // namespace
}  // namespace pera
