// Fleet-scale hierarchical appraisal (src/fleet): delegation-tree
// partitioning and failover, evidence composition trees (wire format,
// signatures, Merkle recompute, derived-nonce freshness, seeded audits),
// storm-free wave pacing (token bucket, region sessions, jittered
// scheduler), the end-to-end delegated loop on the fleet topology —
// including parity with flat per-switch appraisal and the
// compromised-regional failover — and the same composition machinery
// driven over the PR 9 socket backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "crypto/sha256.h"
#include "ctrl/transport.h"
#include "ctrl/trust.h"
#include "fleet/aggregate.h"
#include "fleet/controller.h"
#include "fleet/delegation.h"
#include "fleet/wave.h"
#include "net/backend.h"
#include "net/client.h"
#include "net/server.h"
#include "netsim/topology.h"
#include "pipeline/pipeline.h"

namespace {

using namespace pera;
using ctrl::TrustState;
using fleet::AggregateEntry;
using fleet::EntryOutcome;

core::DeploymentOptions seeded(std::uint64_t seed) {
  core::DeploymentOptions o;
  o.seed = seed;
  return o;
}

crypto::Digest d(const std::string& s) { return crypto::sha256(s); }

std::vector<std::string> names(const char* prefix, std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

// Malformed wire input must surface as invalid_argument (structural) or
// out_of_range (bounds) — never UB, a crash, or silent acceptance.
template <typename Fn>
::testing::AssertionResult rejects_malformed(Fn&& fn) {
  try {
    (void)fn();
  } catch (const std::invalid_argument&) {
    return ::testing::AssertionSuccess();
  } catch (const std::out_of_range&) {
    return ::testing::AssertionSuccess();
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure()
           << "threw unexpected exception: " << e.what();
  }
  return ::testing::AssertionFailure() << "parsed without throwing";
}

// ---------------------------------------------------------- delegation --

TEST(FleetDelegation, BuildPartitionsWithBoundedFanout) {
  const auto members = fleet::fleet_switch_names(100);
  const auto regionals = fleet::fleet_regional_names(100, 8);
  const auto tree = fleet::DelegationTree::build(members, regionals, {8});
  EXPECT_EQ(tree.region_count(), 13u);
  std::size_t covered = 0;
  for (const fleet::Region* r : tree.regions()) {
    EXPECT_LE(r->members.size(), 8u);
    EXPECT_TRUE(std::is_sorted(r->members.begin(), r->members.end()));
    EXPECT_TRUE(std::find(regionals.begin(), regionals.end(), r->appraiser) !=
                regionals.end());
    for (const auto& m : r->members) {
      ++covered;
      ASSERT_NE(tree.region_of_member(m), nullptr);
      EXPECT_EQ(tree.region_of_member(m)->name, r->name);
    }
  }
  EXPECT_EQ(covered, 100u);
  auto all = tree.all_members();
  auto expect = members;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(all, expect);
  EXPECT_EQ(tree.region_of_member("no-such-switch"), nullptr);
  EXPECT_THROW(fleet::DelegationTree::build(members, {}, {8}),
               std::invalid_argument);
}

TEST(FleetDelegation, RehomeMovesEveryDomainOfAnAppraiser) {
  auto tree =
      fleet::DelegationTree::build(names("sw", 12), {"r0", "r1"}, {4});
  std::vector<std::string> from_r0;
  for (const fleet::Region* r : tree.regions()) {
    if (r->appraiser == "r0") from_r0.push_back(r->name);
  }
  ASSERT_FALSE(from_r0.empty());
  EXPECT_EQ(tree.rehome("r0", "r1"), from_r0.size());
  for (const fleet::Region* r : tree.regions()) {
    EXPECT_EQ(r->appraiser, "r1");
  }
  // Membership is untouched by a rehome.
  EXPECT_EQ(tree.all_members().size(), 12u);
  EXPECT_EQ(tree.rehome("r0", "r1"), 0u) << "nothing left to move";
}

TEST(FleetDelegation, SplitHalvesARegionAndKeepsTheAppraiser) {
  auto tree = fleet::DelegationTree::build(names("sw", 16), {"r0"}, {16});
  ASSERT_EQ(tree.region_count(), 1u);
  const std::string name = tree.regions()[0]->name;
  const auto halves = tree.split(name, 4);
  ASSERT_TRUE(halves.has_value());
  EXPECT_EQ(tree.region_count(), 2u);
  const auto& a = tree.region(halves->first);
  const auto& b = tree.region(halves->second);
  EXPECT_EQ(a.members.size() + b.members.size(), 16u);
  EXPECT_EQ(a.appraiser, "r0");
  EXPECT_EQ(b.appraiser, "r0");
  EXPECT_THROW((void)tree.region(name), std::invalid_argument)
      << "split retires the old region";
  // Too small to split further once below 2 * min_size.
  auto small = fleet::DelegationTree::build(names("sw", 6), {"r0"}, {16});
  EXPECT_FALSE(small.split(small.regions()[0]->name, 4).has_value());
}

TEST(FleetDelegation, SiblingRingSkipsExcludedAppraisers) {
  const auto tree = fleet::DelegationTree::build(
      names("sw", 8), {"r0", "r1", "r2", "r3"}, {2});
  EXPECT_EQ(tree.sibling_of("r1"), "r2");
  EXPECT_EQ(tree.sibling_of("r3"), "r0") << "ring wraps";
  EXPECT_EQ(tree.sibling_of("r1", {"r2", "r3"}), "r0");
  EXPECT_FALSE(tree.sibling_of("r1", {"r0", "r2", "r3"}).has_value());
}

TEST(FleetDelegation, PolicyTermRendersForallPhrase) {
  const auto tree =
      fleet::DelegationTree::build({"swA", "swB"}, {"r0"}, {8});
  const std::string term = fleet::policy_term(*tree.regions()[0]);
  EXPECT_NE(term.find("@r0"), std::string::npos);
  EXPECT_NE(term.find("forall"), std::string::npos);
  EXPECT_NE(term.find("swA"), std::string::npos);
  EXPECT_NE(term.find("swB"), std::string::npos);
  EXPECT_NE(term.find("attest"), std::string::npos);
}

TEST(FleetDelegation, FleetNamesMatchTopologyBuilder) {
  const netsim::Topology topo = netsim::topo::fleet(10, 4);
  for (const auto& n : fleet::fleet_switch_names(10)) {
    EXPECT_NO_THROW((void)topo.require(n));
  }
  for (const auto& r : fleet::fleet_regional_names(10, 4)) {
    EXPECT_NO_THROW((void)topo.require(r));
  }
  EXPECT_EQ(fleet::fleet_regional_names(10, 4).size(), 3u);
}

// ----------------------------------------------------------- aggregate --

AggregateEntry entry_of(const std::string& place, EntryOutcome o, bool verdict,
                        const crypto::Digest& meas) {
  AggregateEntry e;
  e.place = place;
  e.outcome = o;
  e.verdict = verdict;
  e.attempts = 1;
  e.measurement_root = meas;
  return e;
}

TEST(FleetAggregate, LeafDigestTracksStateNotAttempts) {
  AggregateEntry a = entry_of("sw0", EntryOutcome::kPass, true, d("m"));
  AggregateEntry b = a;
  b.attempts = 7;
  b.evidence = {1, 2, 3};  // carried bytes are not part of the leaf
  EXPECT_EQ(a.leaf_digest(), b.leaf_digest())
      << "leaf must be stable across waves when measured state is stable";
  AggregateEntry c = a;
  c.verdict = false;
  c.outcome = EntryOutcome::kFail;
  EXPECT_NE(a.leaf_digest(), c.leaf_digest());
  AggregateEntry e = a;
  e.measurement_root = d("other");
  EXPECT_NE(a.leaf_digest(), e.leaf_digest());
}

fleet::Aggregate sealed_aggregate(crypto::KeyStore& ks,
                                  const crypto::Nonce& nonce,
                                  std::uint64_t wave = 3) {
  fleet::EvidenceAggregator agg("g0", "r0", {"sw0", "sw1", "sw2"});
  agg.begin_wave(wave, nonce);
  agg.record(entry_of("sw1", EntryOutcome::kPass, true, d("m1")));
  agg.record(entry_of("sw0", EntryOutcome::kFail, false, d("m0")));
  // sw2 unrecorded: seal fills a timeout slot.
  return agg.seal(*ks.signer_for("r0"));
}

TEST(FleetAggregate, SerializeRoundtripsByteIdentical) {
  crypto::KeyStore ks(0xF1EE7);
  ks.provision_hmac("r0");
  const crypto::Nonce nonce{d("wave-nonce")};
  fleet::Aggregate agg = sealed_aggregate(ks, nonce);
  agg.entries[1].evidence = {9, 8, 7, 6};
  const crypto::Bytes wire = agg.serialize();
  const fleet::Aggregate back = fleet::Aggregate::deserialize(
      crypto::BytesView{wire.data(), wire.size()});
  EXPECT_EQ(back.region, "g0");
  EXPECT_EQ(back.appraiser, "r0");
  EXPECT_EQ(back.wave, 3u);
  EXPECT_EQ(back.nonce, nonce);
  ASSERT_EQ(back.entries.size(), 3u);
  EXPECT_EQ(back.entries[0].place, "sw0");
  EXPECT_EQ(back.entries[1].place, "sw1");
  EXPECT_EQ(back.entries[2].place, "sw2");
  EXPECT_EQ(back.entries[2].outcome, EntryOutcome::kTimeout);
  EXPECT_EQ(back.entries[1].evidence, agg.entries[1].evidence);
  EXPECT_EQ(back.merkle_root, agg.merkle_root);
  EXPECT_EQ(back.serialize(), wire);
}

TEST(FleetAggregate, DeserializeRejectsTruncationAndTrailingBytes) {
  crypto::KeyStore ks(0xF1EE8);
  ks.provision_hmac("r0");
  const crypto::Bytes wire = sealed_aggregate(ks, crypto::Nonce{d("n")})
                                 .serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_TRUE(rejects_malformed([&] {
      return fleet::Aggregate::deserialize(crypto::BytesView{wire.data(), len});
    })) << "prefix of length " << len << " must not parse";
  }
  crypto::Bytes extra = wire;
  extra.push_back(0);
  EXPECT_THROW((void)fleet::Aggregate::deserialize(
                   crypto::BytesView{extra.data(), extra.size()}),
               std::invalid_argument);
}

TEST(FleetAggregate, WaveCommandRoundtrips) {
  fleet::WaveCommand cmd;
  cmd.region = "g7";
  cmd.wave = 42;
  cmd.nonce = crypto::Nonce{d("cmd")};
  cmd.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  cmd.carry_evidence = false;
  cmd.members = {"sw9", "sw10"};
  const crypto::Bytes wire = cmd.serialize();
  const fleet::WaveCommand back = fleet::WaveCommand::deserialize(
      crypto::BytesView{wire.data(), wire.size()});
  EXPECT_EQ(back.region, cmd.region);
  EXPECT_EQ(back.wave, cmd.wave);
  EXPECT_EQ(back.nonce, cmd.nonce);
  EXPECT_EQ(back.detail, cmd.detail);
  EXPECT_EQ(back.carry_evidence, cmd.carry_evidence);
  EXPECT_EQ(back.members, cmd.members);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_TRUE(rejects_malformed([&] {
      return fleet::WaveCommand::deserialize(
          crypto::BytesView{wire.data(), len});
    })) << "prefix of length " << len << " must not parse";
  }
}

TEST(FleetAggregate, DerivedMemberNoncesAreDistinctAndDeterministic) {
  const crypto::Nonce w1{d("w1")};
  const crypto::Nonce w2{d("w2")};
  const auto n = fleet::derive_member_nonce(w1, "sw0", 1);
  EXPECT_EQ(n, fleet::derive_member_nonce(w1, "sw0", 1));
  EXPECT_NE(n, fleet::derive_member_nonce(w1, "sw0", 2));
  EXPECT_NE(n, fleet::derive_member_nonce(w1, "sw1", 1));
  EXPECT_NE(n, fleet::derive_member_nonce(w2, "sw0", 1));
}

fleet::VerifyOptions bare_verify(const crypto::KeyStore& ks) {
  fleet::VerifyOptions opts;
  opts.keys = &ks;
  opts.root_appraiser = nullptr;  // no audits in wire-level tests
  return opts;
}

TEST(FleetAggregate, SignedAggregateVerifiesAndRecoversVerdicts) {
  crypto::KeyStore ks(0xF1EE9);
  ks.provision_hmac("r0");
  const crypto::Nonce nonce{d("wave")};
  const fleet::Aggregate agg = sealed_aggregate(ks, nonce);
  const auto check = fleet::verify_aggregate(
      agg, {"sw0", "sw1", "sw2"}, nonce, 3, bare_verify(ks));
  ASSERT_TRUE(check.valid) << check.reason;
  EXPECT_EQ(check.per_switch.at("sw0").outcome, EntryOutcome::kFail);
  EXPECT_FALSE(check.per_switch.at("sw0").verdict);
  EXPECT_TRUE(check.per_switch.at("sw1").verdict);
  EXPECT_EQ(check.per_switch.at("sw2").outcome, EntryOutcome::kTimeout);
}

TEST(FleetAggregate, TamperedAggregatesAreRejected) {
  crypto::KeyStore ks(0xF1EEA);
  ks.provision_hmac("r0");
  ks.provision_hmac("r1");
  const crypto::Nonce nonce{d("wave")};
  const std::vector<std::string> members = {"sw0", "sw1", "sw2"};
  const fleet::Aggregate agg = sealed_aggregate(ks, nonce);
  const auto opts = bare_verify(ks);

  fleet::Aggregate flipped = agg;
  flipped.entries[0].verdict = true;  // lie about sw0's verdict...
  flipped.entries[0].outcome = EntryOutcome::kPass;
  auto check = fleet::verify_aggregate(flipped, members, nonce, 3, opts);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.reason.find("merkle"), std::string::npos);

  // ...and recomputing the Merkle root without re-signing breaks the sig.
  std::vector<crypto::Digest> leaves;
  for (const auto& e : flipped.entries) leaves.push_back(e.leaf_digest());
  flipped.merkle_root = crypto::IncrementalMerkleTree(std::move(leaves)).root();
  check = fleet::verify_aggregate(flipped, members, nonce, 3, opts);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.reason.find("signature"), std::string::npos);

  // A different signer than the claimed appraiser is caught too.
  fleet::Aggregate wrong_key = agg;
  wrong_key.sig = ks.signer_for("r1")->sign(wrong_key.signing_payload());
  EXPECT_FALSE(
      fleet::verify_aggregate(wrong_key, members, nonce, 3, opts).valid);

  EXPECT_FALSE(
      fleet::verify_aggregate(agg, members, crypto::Nonce{d("old")}, 3, opts)
          .valid);
  EXPECT_FALSE(fleet::verify_aggregate(agg, members, nonce, 4, opts).valid);
  EXPECT_FALSE(
      fleet::verify_aggregate(agg, {"sw0", "sw1"}, nonce, 3, opts).valid);
  EXPECT_FALSE(fleet::verify_aggregate(agg, {"sw0", "sw1", "swX"}, nonce, 3,
                                       opts)
                   .valid);
}

TEST(FleetAggregate, RequireEvidenceRejectsBarePassEntries) {
  crypto::KeyStore ks(0xF1EEB);
  ks.provision_hmac("r0");
  const crypto::Nonce nonce{d("wave")};
  const fleet::Aggregate agg = sealed_aggregate(ks, nonce);
  auto opts = bare_verify(ks);
  opts.require_evidence = true;
  const auto check =
      fleet::verify_aggregate(agg, {"sw0", "sw1", "sw2"}, nonce, 3, opts);
  EXPECT_FALSE(check.valid);
  ASSERT_EQ(check.blamed.size(), 1u);
  EXPECT_EQ(check.blamed[0], "sw1") << "the evidence-free pass entry";
}

// Evidence bound to the *current* wave's derived nonce passes; evidence
// replayed from an older wave fails deterministically on every
// aggregate — no audit lottery involved.
TEST(FleetAggregate, DerivedNonceBindingCatchesReplayedEvidence) {
  crypto::KeyStore ks(0xF1EEC);
  ks.provision_hmac("r0");
  const crypto::Nonce fresh{d("wave-now")};
  const crypto::Nonce stale{d("wave-past")};

  const auto evidence_bound_to = [](const crypto::Nonce& wave) {
    using copland::Evidence;
    return Evidence::seq(
        Evidence::nonce_ev(fleet::derive_member_nonce(wave, "sw0", 1)),
        Evidence::measurement("attest", "sw0", "program", d("prog"), ""));
  };

  const auto build = [&](const copland::EvidencePtr& ev) {
    fleet::EvidenceAggregator agg("g0", "r0", {"sw0"});
    agg.begin_wave(5, fresh);
    AggregateEntry e = entry_of("sw0", EntryOutcome::kPass, true,
                                fleet::measurement_root_of(ev));
    e.evidence = copland::encode(ev);
    e.evidence_digest = copland::digest(ev);
    agg.record(std::move(e));
    return agg.seal(*ks.signer_for("r0"));
  };

  auto opts = bare_verify(ks);
  opts.require_evidence = true;
  const auto good = fleet::verify_aggregate(build(evidence_bound_to(fresh)),
                                            {"sw0"}, fresh, 5, opts);
  EXPECT_TRUE(good.valid) << good.reason;
  const auto replay = fleet::verify_aggregate(build(evidence_bound_to(stale)),
                                              {"sw0"}, fresh, 5, opts);
  EXPECT_FALSE(replay.valid);
  EXPECT_NE(replay.reason.find("stale"), std::string::npos);
  ASSERT_EQ(replay.blamed.size(), 1u);
  EXPECT_EQ(replay.blamed[0], "sw0");
}

TEST(FleetAggregate, SeededAuditCatchesVerdictLies) {
  crypto::KeyStore ks(0xF1EED);
  ks.provision_hmac("r0");
  const crypto::Nonce nonce{d("wave")};
  using copland::Evidence;
  // Unsigned evidence with a wrong measurement: any honest appraisal
  // says false, but the entry claims a pass.
  const auto ev = Evidence::seq(
      Evidence::nonce_ev(fleet::derive_member_nonce(nonce, "sw0", 1)),
      Evidence::measurement("attest", "sw0", "program", d("rogue"), ""));
  fleet::EvidenceAggregator agg("g0", "r0", {"sw0"});
  agg.begin_wave(9, nonce);
  AggregateEntry e = entry_of("sw0", EntryOutcome::kPass, true,
                              fleet::measurement_root_of(ev));
  e.evidence = copland::encode(ev);
  e.evidence_digest = copland::digest(ev);
  agg.record(std::move(e));
  const fleet::Aggregate sealed = agg.seal(*ks.signer_for("r0"));

  ra::Appraiser root("root-appraiser", ks);
  root.set_golden("sw0", "program", d("golden-prog"));
  fleet::VerifyOptions opts;
  opts.keys = &ks;
  opts.root_appraiser = &root;
  opts.audit_entries = 1;
  const auto check = fleet::verify_aggregate(sealed, {"sw0"}, nonce, 9, opts);
  EXPECT_FALSE(check.valid);
  EXPECT_NE(check.reason.find("audit"), std::string::npos);
  EXPECT_EQ(check.audited, 1u);
  ASSERT_FALSE(check.blamed.empty());
  EXPECT_EQ(check.blamed.back(), "sw0");
}

// --------------------------------------------- composition determinism --

TEST(FleetComposition, CanonicalParFoldIsPermutationInvariant) {
  std::vector<copland::EvidencePtr> items;
  for (int i = 0; i < 7; ++i) {
    items.push_back(
        copland::Evidence::hashed("sw" + std::to_string(i),
                                  d("leaf" + std::to_string(i))));
  }
  const crypto::Bytes canonical =
      copland::encode(copland::fold_par_canonical(items));
  std::vector<copland::EvidencePtr> shuffled = items;
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(copland::encode(copland::fold_par_canonical(shuffled)), canonical);
  std::rotate(shuffled.begin(), shuffled.begin() + 3, shuffled.end());
  EXPECT_EQ(copland::encode(copland::fold_par_canonical(shuffled)), canonical);
  // Singleton and empty folds stay well-defined.
  EXPECT_EQ(copland::encode(copland::fold_par_canonical({items[0]})),
            copland::encode(items[0]));
  EXPECT_EQ(copland::fold_par_canonical({})->kind,
            copland::Evidence::empty()->kind);
}

TEST(FleetComposition, RecordOrderDoesNotChangeTheAggregate) {
  crypto::KeyStore ks(0xF1EEE);
  ks.provision_hmac("r0");
  const crypto::Nonce nonce{d("wave")};
  std::vector<AggregateEntry> entries;
  for (int i = 0; i < 6; ++i) {
    entries.push_back(entry_of("sw" + std::to_string(i),
                               i % 2 ? EntryOutcome::kPass : EntryOutcome::kFail,
                               i % 2, d("m" + std::to_string(i))));
  }
  const auto build = [&](const std::vector<AggregateEntry>& order) {
    fleet::EvidenceAggregator agg("g0", "r0", names("sw", 6));
    agg.begin_wave(1, nonce);
    for (const auto& e : order) agg.record(e);
    return agg.seal(*ks.signer_for("r0"));
  };
  std::vector<AggregateEntry> permuted = entries;
  std::reverse(permuted.begin(), permuted.end());
  std::rotate(permuted.begin(), permuted.begin() + 2, permuted.end());
  const fleet::Aggregate a = build(entries);
  const fleet::Aggregate b = build(permuted);
  EXPECT_EQ(a.serialize(), b.serialize())
      << "canonical aggregate must be byte-identical across record orders";
  EXPECT_EQ(copland::encode(fleet::to_evidence(a)),
            copland::encode(fleet::to_evidence(b)));
}

// ----------------------------------------------------------- wave flow --

TEST(FleetWave, TokenBucketAccruesDeterministically) {
  fleet::TokenBucket bucket(1000.0, 2.0);  // 1 token per ms, burst 2
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0)) << "burst exhausted";
  const netsim::SimTime ready = bucket.next_ready(0);
  EXPECT_GT(ready, 0);
  EXPECT_LE(ready, netsim::kMillisecond + 1);
  EXPECT_FALSE(bucket.try_take(ready / 2));
  EXPECT_TRUE(bucket.try_take(ready));
  EXPECT_TRUE(bucket.try_take(10 * netsim::kSecond)) << "refill caps at burst";
  EXPECT_TRUE(bucket.try_take(10 * netsim::kSecond));
  EXPECT_FALSE(bucket.try_take(10 * netsim::kSecond));
}

struct SessionRig {
  netsim::EventQueue events;
  std::vector<std::string> started;
  std::size_t finished_calls = 0;

  fleet::RegionSession make(std::size_t members, std::size_t window,
                            fleet::TokenBucket* bucket = nullptr) {
    return fleet::RegionSession(
        names("sw", members), {window, bucket}, [this] { return events.now(); },
        [this](netsim::SimTime delay, std::function<void()> fn) {
          events.schedule_in(delay, std::move(fn));
        },
        [this](const std::string& m) { started.push_back(m); },
        [this] { ++finished_calls; });
  }
};

TEST(FleetWave, RegionSessionBoundsConcurrencyAtTheWindow) {
  SessionRig rig;
  auto session = rig.make(10, 3);
  session.run();
  EXPECT_EQ(rig.started.size(), 3u) << "window admits exactly 3 rounds";
  EXPECT_EQ(session.inflight(), 3u);
  while (session.completed() < 10) {
    ASSERT_FALSE(rig.started.empty());
    session.complete(rig.started[session.completed()]);
    EXPECT_LE(session.peak_inflight(), 3u);
  }
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(rig.finished_calls, 1u);
  EXPECT_EQ(rig.started.size(), 10u);
  session.complete("sw0");
  EXPECT_EQ(rig.finished_calls, 1u) << "late completion after finish: no-op";
}

TEST(FleetWave, RegionSessionPacesThroughTheTokenBucket) {
  SessionRig rig;
  fleet::TokenBucket bucket(1000.0, 1.0);  // one round per millisecond
  auto session = rig.make(4, 8, &bucket);
  session.run();
  EXPECT_EQ(rig.started.size(), 1u) << "only one token at t=0";
  // Completions return instantly; admission is token-limited, so the
  // remaining rounds start on bucket timers as the queue advances.
  std::size_t completed = 0;
  while (!session.finished() && rig.events.now() < netsim::kSecond) {
    while (completed < rig.started.size()) {
      session.complete(rig.started[completed++]);
    }
    if (!rig.events.step()) break;
  }
  while (completed < rig.started.size()) {
    session.complete(rig.started[completed++]);
  }
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(rig.started.size(), 4u);
  EXPECT_GE(rig.events.now(), 2 * netsim::kMillisecond)
      << "4 rounds at 1/ms cannot finish before ~3ms of accrual";
}

TEST(FleetWave, AbandonedSessionStopsAdmitting) {
  SessionRig rig;
  auto session = rig.make(6, 2);
  session.run();
  ASSERT_EQ(rig.started.size(), 2u);
  session.abandon();
  session.complete(rig.started[0]);
  EXPECT_EQ(rig.started.size(), 2u) << "no new rounds after abandon";
  EXPECT_FALSE(session.finished());
  EXPECT_EQ(rig.finished_calls, 0u);
}

TEST(FleetWave, SchedulerStaggersRegionsAndHonorsRetirement) {
  netsim::EventQueue events;
  fleet::WaveConfig cfg;
  cfg.interval = 10 * netsim::kMillisecond;
  fleet::WaveScheduler sched(events, cfg, 77);
  for (int i = 0; i < 8; ++i) sched.add_region("g" + std::to_string(i));
  std::map<std::string, std::vector<netsim::SimTime>> fires;
  sched.start([&](const std::string& region, std::uint64_t wave) {
    EXPECT_EQ(wave, fires[region].size() + 1) << "waves number consecutively";
    fires[region].push_back(events.now());
  });
  events.run(35 * netsim::kMillisecond);
  ASSERT_EQ(fires.size(), 8u);
  std::set<netsim::SimTime> first_fires;
  for (const auto& [region, times] : fires) {
    ASSERT_GE(times.size(), 2u);
    first_fires.insert(times.front());
  }
  EXPECT_GE(first_fires.size(), 6u)
      << "staggered starts must not synchronize the fleet into one burst";

  const std::uint64_t g0_waves = sched.waves_of("g0");
  sched.remove_region("g0");
  sched.trigger_now("g0");
  EXPECT_EQ(sched.waves_of("g0"), g0_waves) << "retired region stays quiet";
  sched.trigger_now("g1");
  EXPECT_EQ(fires["g1"].back(), events.now()) << "manual wave fires inline";
  events.run(60 * netsim::kMillisecond);
  EXPECT_EQ(sched.waves_of("g0"), g0_waves);
  EXPECT_GT(sched.waves_of("g1"), 2u);
  sched.stop();
}

// ------------------------------------------------ incremental composition --

TEST(FleetMerkleIncremental, UnchangedWavesRehashNothingChangedWavesDelta) {
  crypto::KeyStore ks(0xF1EEF);
  ks.provision_hmac("r0");
  const std::size_t n = 64;
  fleet::EvidenceAggregator agg("g0", "r0", names("sw", n));
  const auto run_wave = [&](std::uint64_t wave, std::size_t flipped) {
    agg.begin_wave(wave, crypto::Nonce{d("w" + std::to_string(wave))});
    for (std::size_t i = 0; i < n; ++i) {
      const bool flip = i < flipped;
      agg.record(entry_of("sw" + std::to_string(i),
                          flip ? EntryOutcome::kFail : EntryOutcome::kPass,
                          !flip, d("m" + std::to_string(i))));
    }
    return agg.seal(*ks.signer_for("r0"));
  };

  const fleet::Aggregate w1 = run_wave(1, 0);
  const std::uint64_t after_w1 = agg.tree_stats().nodes_rehashed;
  const fleet::Aggregate w2 = run_wave(2, 0);
  EXPECT_EQ(agg.tree_stats().nodes_rehashed, after_w1)
      << "identical state across waves must rehash zero nodes";
  EXPECT_EQ(w2.merkle_root, w1.merkle_root);
  EXPECT_NE(w2.signing_payload(), w1.signing_payload())
      << "wave + nonce still bind the signature to THIS wave";

  const fleet::Aggregate w3 = run_wave(3, 1);
  const std::uint64_t delta = agg.tree_stats().nodes_rehashed - after_w1;
  EXPECT_GT(delta, 0u);
  EXPECT_LE(delta, 16u) << "one flipped member rehashes O(log n), not O(n)";
  EXPECT_NE(w3.merkle_root, w1.merkle_root);
  EXPECT_EQ(agg.tree_stats().full_rebuilds, 1u)
      << "only the initial build walks the whole tree";
}

// ----------------------------------------------------------- end to end --

fleet::FleetConfig fast_fleet_config(std::size_t fanout = 8) {
  fleet::FleetConfig cfg;
  cfg.fanout = fanout;
  cfg.wave.interval = 20 * netsim::kMillisecond;
  cfg.wave_timeout = 15 * netsim::kMillisecond;
  cfg.transport.timeout = 4 * netsim::kMillisecond;
  cfg.root_transport.timeout = 4 * netsim::kMillisecond;
  cfg.trust.quarantine_after = 3;
  cfg.trust.reinstate_after = 2;
  cfg.admit_rate = 200'000.0;
  cfg.admit_burst = static_cast<double>(fanout);
  return cfg;
}

struct FleetRig {
  core::Deployment dep;
  fleet::FleetController controller;

  FleetRig(std::size_t n, std::size_t fanout, std::uint64_t seed,
           fleet::FleetConfig cfg)
      : dep(netsim::topo::fleet(n, fanout), seeded(seed)),
        controller(dep, "root",
                   fleet::DelegationTree::build(
                       fleet::fleet_switch_names(n),
                       fleet::fleet_regional_names(n, fanout), {fanout}),
                   cfg, seed) {
    dep.provision_goldens();
  }
};

TEST(FleetEndToEnd, HealthyFleetStaysTrustedWithBoundedLoad) {
  FleetRig rig(24, 8, 0xFEE7, fast_fleet_config());
  rig.controller.start();
  rig.dep.network().run(300 * netsim::kMillisecond);
  rig.controller.stop();
  rig.dep.network().run();

  const fleet::FleetStats& st = rig.controller.stats();
  EXPECT_GT(st.waves_launched, 8u);
  EXPECT_GT(st.aggregates_valid, 8u);
  EXPECT_EQ(st.aggregates_invalid, 0u);
  EXPECT_EQ(st.aggregates_timeout, 0u);
  EXPECT_GT(st.entries_applied, 24u);
  EXPECT_EQ(st.region_splits, 0u);
  EXPECT_EQ(st.domains_rehomed, 0u);
  EXPECT_TRUE(rig.controller.timeline().empty())
      << "healthy fleet: no trust transitions at all";
  for (const auto& m : rig.controller.tree().all_members()) {
    EXPECT_EQ(rig.controller.trust(m).state(), TrustState::kTrusted);
    EXPECT_TRUE(rig.controller.last_verdicts().at(m));
  }
  for (const auto& r : rig.controller.tree().appraisers()) {
    EXPECT_EQ(rig.controller.trust(r).state(), TrustState::kTrusted);
    EXPECT_EQ(rig.controller.delegation_trust(r).state(),
              TrustState::kTrusted);
    EXPECT_LE(rig.controller.regional(r).peak_inflight(), 8u)
        << "regional member window is the fanout bound";
  }
  EXPECT_LE(rig.controller.peak_root_inflight(), 8u)
      << "root admission gate is the fanout bound";
}

TEST(FleetEndToEnd, SwappedMemberIsQuarantinedAndMatchesFlatAppraisal) {
  FleetRig rig(24, 8, 0xFEE8, fast_fleet_config());
  auto& net = rig.dep.network();
  net.events().schedule_at(50 * netsim::kMillisecond, [&] {
    adversary::program_swap_attack(rig.dep, "sw5");
  });
  rig.controller.start();
  net.run(500 * netsim::kMillisecond);
  rig.controller.stop();
  net.run();

  const auto q = rig.controller.first_transition("sw5",
                                                 TrustState::kQuarantined);
  ASSERT_TRUE(q.has_value());
  EXPECT_GE(*q, 50 * netsim::kMillisecond);
  EXPECT_LE(*q, 200 * netsim::kMillisecond)
      << "3 consecutive failing waves at 20ms cadence must land fast";
  const auto s = rig.controller.first_transition("sw5", TrustState::kSuspect);
  ASSERT_TRUE(s.has_value());
  EXPECT_LT(*s, *q);
  for (const auto& e : rig.controller.timeline()) EXPECT_EQ(e.place, "sw5");
  EXPECT_TRUE(rig.controller.quarantine().is_quarantined("sw5"));

  // Parity: the hierarchy's recovered verdicts must agree bit-for-bit
  // with flat per-switch appraisal by the root against its own goldens.
  ra::Appraiser& root = rig.dep.appraiser().appraiser();
  for (const auto& m : rig.controller.tree().all_members()) {
    const crypto::Nonce nonce{d("flat-" + m)};
    const auto ev = rig.dep.switch_node(m).pera().attest_challenge(
        fast_fleet_config().detail, nonce, /*hash_before_sign=*/false);
    const bool flat =
        root.appraise(ev, nonce, /*certify=*/false,
                      static_cast<std::int64_t>(net.now()),
                      /*enforce_freshness=*/false)
            .ok;
    ASSERT_TRUE(rig.controller.last_verdicts().contains(m)) << m;
    EXPECT_EQ(rig.controller.last_verdicts().at(m), flat) << m;
    EXPECT_EQ(flat, m != "sw5");
  }
  EXPECT_GT(rig.controller.stats().aggregates_valid, 0u);
  EXPECT_EQ(rig.controller.stats().aggregates_invalid, 0u)
      << "an honest regional reporting a bad member is a VALID aggregate";
}

TEST(FleetEndToEnd, TimelineIsDeterministicPerSeed) {
  const auto run_scenario = [](std::uint64_t seed) {
    fleet::FleetConfig cfg = fast_fleet_config();
    FleetRig rig(16, 8, seed, cfg);
    rig.dep.network().set_loss(0.02, seed + 3);
    auto& net = rig.dep.network();
    net.events().schedule_at(40 * netsim::kMillisecond, [&] {
      adversary::program_swap_attack(rig.dep, "sw3");
    });
    rig.controller.start();
    net.run(400 * netsim::kMillisecond);
    rig.controller.stop();
    net.run();
    std::vector<std::tuple<std::string, int, int, netsim::SimTime>> out;
    for (const auto& e : rig.controller.timeline()) {
      out.emplace_back(e.place, static_cast<int>(e.transition.from),
                       static_cast<int>(e.transition.to), e.transition.at);
    }
    return out;
  };
  const auto a = run_scenario(4321);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run_scenario(4321));
}

// A regional that forges passing entries (replaying stale evidence) is
// caught by the root's derived-nonce check, loses delegation trust, and
// its domains fail over to a sibling that re-attests them honestly.
TEST(FleetFailover, ForgingRegionalIsQuarantinedAndDomainsRehome) {
  fleet::FleetConfig cfg = fast_fleet_config();
  cfg.split_after_failures = 1000;  // isolate the failover path
  FleetRig rig(24, 8, 0xFEE9, cfg);
  auto& net = rig.dep.network();
  net.events().schedule_at(70 * netsim::kMillisecond, [&] {
    rig.controller.regional("r0").forge_member("sw1", true);
  });
  rig.controller.start();
  net.run(800 * netsim::kMillisecond);
  rig.controller.stop();
  net.run();

  const fleet::FleetStats& st = rig.controller.stats();
  EXPECT_GT(st.aggregates_invalid, 0u);
  EXPECT_GT(rig.controller.regional("r0").forged_entries(), 0u);
  EXPECT_EQ(rig.controller.delegation_trust("r0").state(),
            TrustState::kQuarantined);
  EXPECT_GE(st.domains_rehomed, 1u);
  EXPECT_GT(st.probe_rounds, 0u) << "invalid aggregates trigger direct probes";
  for (const fleet::Region* r : rig.controller.tree().regions()) {
    EXPECT_NE(r->appraiser, "r0") << "no domain left on the liar";
  }
  // The forged-about member was honest all along: after the bulk wave
  // through the new home it climbs back out of quarantine.
  const auto sw1 = rig.controller.trust("sw1").state();
  EXPECT_TRUE(sw1 == TrustState::kTrusted || sw1 == TrustState::kReinstated)
      << "state " << static_cast<int>(sw1);
  for (const auto& m : rig.controller.tree().all_members()) {
    const auto state = rig.controller.trust(m).state();
    EXPECT_TRUE(state == TrustState::kTrusted ||
                state == TrustState::kReinstated)
        << m << " stuck in state " << static_cast<int>(state);
  }
  EXPECT_EQ(rig.controller.trust("r0").state(), TrustState::kTrusted)
      << "device trust is separate: the forger's switch stack was honest";
}

TEST(FleetFailover, ChronicallyInvalidRegionSplitsInHalf) {
  fleet::FleetConfig cfg = fast_fleet_config();
  cfg.split_after_failures = 2;
  cfg.min_split_size = 2;
  // Never quarantine the regional in this test: splits are the blast-
  // radius tool for a region that keeps failing while its appraiser
  // stays below the quarantine threshold.
  cfg.trust.quarantine_after = 1000;
  FleetRig rig(8, 8, 0xFEEA, cfg);
  auto& net = rig.dep.network();
  net.events().schedule_at(30 * netsim::kMillisecond, [&] {
    rig.controller.regional("r0").forge_member("sw0", true);
  });
  rig.controller.start();
  net.run(400 * netsim::kMillisecond);
  rig.controller.stop();
  net.run();

  EXPECT_GE(rig.controller.stats().region_splits, 1u);
  EXPECT_GE(rig.controller.tree().region_count(), 2u);
  std::size_t members = 0;
  for (const fleet::Region* r : rig.controller.tree().regions()) {
    members += r->members.size();
  }
  EXPECT_EQ(members, 8u) << "splits must not lose members";
}

// ------------------------------------------------- netsim route cache --

TEST(FleetRouteCache, RepeatRoutesHitAndTopologyChangesInvalidate) {
  core::Deployment dep(netsim::topo::fleet(8, 4), seeded(0xCACE));
  dep.provision_goldens();
  auto& net = dep.network();
  const auto send_one = [&] {
    netsim::Message pkt;
    pkt.src = net.topology().require("root");
    pkt.dst = net.topology().require("sw7");
    // Control-type traffic: routed (and route-cached) like any message
    // but not parsed as a flow bundle by the switch dataplane.
    pkt.type = "probe";
    pkt.payload = {1, 2, 3};
    net.send(std::move(pkt));
    net.run();
  };
  send_one();
  const std::uint64_t cold = net.route_cache_hits();
  send_one();
  send_one();
  EXPECT_GT(net.route_cache_hits(), cold)
      << "repeated root->sw7 sends must reuse cached next-hops";
  // A topology change bumps the generation; the stale cache must not
  // serve the old route (delivery still works, hits restart from cold).
  net.topology().add_node("late-host", netsim::NodeKind::kHost);
  net.topology().add_link("late-host", "r0", 10 * netsim::kMicrosecond);
  const std::uint64_t before = net.route_cache_hits();
  send_one();  // cache rebuilt on this pass
  send_one();
  EXPECT_GT(net.route_cache_hits(), before);
  EXPECT_GT(net.stats().messages_delivered, 0u);
}

// ------------------------------------------------------- socket parity --

// Drives one wave of the shared RegionSession + EvidenceAggregator
// machinery over an arbitrary EvidenceTransport; the caller supplies the
// clock, the timer hook and the "make progress" pump.
fleet::Aggregate run_parity_wave(
    ctrl::EvidenceTransport& transport, crypto::Signer& signer,
    const std::vector<std::string>& members, const crypto::Nonce& wave_nonce,
    const std::function<netsim::SimTime()>& now,
    const fleet::RegionSession::ScheduleIn& schedule_in,
    const std::function<void(std::function<void()>)>& post,
    const std::function<void(const std::atomic<bool>& done)>& drive) {
  fleet::EvidenceAggregator agg("g0", "regional", members);
  agg.begin_wave(1, wave_nonce);
  std::atomic<bool> done{false};
  fleet::RegionSession* session_ptr = nullptr;
  fleet::RegionSession session(
      members, {2, nullptr}, now, schedule_in,
      [&](const std::string& member) {
        transport.begin_round(
            member, nac::mask_of(nac::EvidenceDetail::kProgram),
            [&](const std::string& p, const ctrl::RoundOutcome& out) {
              AggregateEntry e;
              e.place = p;
              e.attempts = static_cast<std::uint32_t>(out.attempts);
              e.outcome = !out.completed ? EntryOutcome::kTimeout
                          : out.verdict  ? EntryOutcome::kPass
                                         : EntryOutcome::kFail;
              e.verdict = out.completed && out.verdict;
              agg.record(std::move(e));
              session_ptr->complete(p);
            });
      },
      [&done] { done.store(true, std::memory_order_release); });
  session_ptr = &session;
  // Everything that touches the transport runs wherever the transport's
  // timers and results run (the sim loop / the backend loop thread).
  post([&session, &transport, wave_nonce] {
    transport.set_nonce_source(
        [wave_nonce](const std::string& place, std::size_t attempt) {
          return fleet::derive_member_nonce(wave_nonce, place, attempt);
        });
    session.run();
  });
  drive(done);
  EXPECT_TRUE(done.load(std::memory_order_acquire));
  EXPECT_LE(session.peak_inflight(), 2u);
  return agg.seal(signer);
}

// The identical RegionSession + EvidenceAggregator machinery drives one
// wave over netsim and over real sockets (PR 9 SocketBackend): the two
// sealed aggregates must verify and agree entry for entry.
TEST(FleetSocketParity, WaveOverSocketBackendMatchesNetsim) {
  const std::vector<std::string> members = {"sw0", "sw1", "sw2"};
  const crypto::Nonce wave_nonce{d("parity-wave")};
  crypto::KeyStore agg_keys(0xBA11AD);
  crypto::Signer& signer = agg_keys.provision_hmac("regional");

  // --- netsim side ---------------------------------------------------
  core::Deployment dep(netsim::topo::fleet(3, 3), seeded(0xBA11));
  dep.provision_goldens();
  auto& net = dep.network();
  ctrl::TransportConfig sim_cfg;
  sim_cfg.timeout = 10 * netsim::kMillisecond;
  ctrl::EvidenceTransport sim_transport(
      net, net.topology().require("root"), dep.appraiser_name(), dep.keys(),
      sim_cfg, 0xBA12);
  struct Tap final : netsim::NodeBehavior {
    ctrl::EvidenceTransport* transport = nullptr;
    void on_deliver(netsim::Network& n, netsim::NodeId,
                    netsim::Message msg) override {
      if (msg.type != "result") return;
      (void)transport->on_result(
          ra::Certificate::deserialize(
              crypto::BytesView{msg.payload.data(), msg.payload.size()}),
          n.now());
    }
  } tap;
  tap.transport = &sim_transport;
  net.attach("root", &tap);
  const fleet::Aggregate sim_agg = run_parity_wave(
      sim_transport, signer, members, wave_nonce, [&] { return net.now(); },
      [&](netsim::SimTime delay, std::function<void()> fn) {
        net.events().schedule_in(delay, std::move(fn));
      },
      [](std::function<void()> fn) { fn(); },
      [&](const std::atomic<bool>&) { net.run(); });

  // --- socket side ---------------------------------------------------
  const crypto::Digest quote_root = d("parity-quote-root");
  const crypto::Digest golden = d("parity-golden");
  const crypto::Digest evidence_root = d("parity-evidence-root");
  const crypto::Digest cert_key = d("parity-cert-key");
  net::ServerConfig sc;
  sc.quote_root_key = quote_root;
  sc.golden_measurement = golden;
  sc.evidence_root_key = evidence_root;
  sc.cert_key = cert_key;
  sc.appraiser_measurement = d("parity-appraiser");
  net::AppraiserServer server(sc);
  server.start();

  const auto device_keys = pipeline::PeraPipeline::shard_keys(
      evidence_root, "pera.net.device", 16);
  std::vector<std::unique_ptr<net::SwitchClient>> switches;
  std::vector<std::thread> serve_threads;
  std::atomic<bool> stop_serving{false};
  for (std::size_t i = 0; i < members.size(); ++i) {
    net::ClientIdentity id;
    id.place = members[i];
    id.quote_root_key = quote_root;
    id.measurement = golden;
    id.device_key = device_keys[0];
    id.cert_key = cert_key;
    id.appraiser_golden = sc.appraiser_measurement;
    id.nonce_seed = 0xBA20 + i;
    switches.push_back(std::make_unique<net::SwitchClient>(id));
    ASSERT_TRUE(switches.back()->connect(server.port(), 2000))
        << switches.back()->error_text();
    net::SwitchClient* sw = switches.back().get();
    serve_threads.emplace_back([sw, &stop_serving] {
      (void)sw->serve(20'000, &stop_serving);
    });
  }

  net::SocketBackend::Config bc;
  bc.port = server.port();
  net::SocketBackend backend(bc);
  crypto::KeyStore rp_keys(0xBA21);
  rp_keys.provision_hmac_key("appraiser", cert_key);
  ctrl::TransportConfig tc;
  tc.timeout = 2'000 * netsim::kMillisecond;
  tc.max_attempts = 2;
  ctrl::EvidenceTransport sock_transport(backend, "appraiser", rp_keys, tc,
                                         0xBA22);
  backend.set_result_sink([&](const ra::Certificate& cert) {
    (void)sock_transport.on_result(cert, backend.now());
  });
  ASSERT_TRUE(backend.connect()) << backend.error_text();
  const fleet::Aggregate sock_agg = run_parity_wave(
      sock_transport, signer, members, wave_nonce,
      [&] { return backend.now(); },
      [&](netsim::SimTime delay, std::function<void()> fn) {
        backend.schedule_in(delay, std::move(fn));
      },
      [&](std::function<void()> fn) { backend.post(std::move(fn)); },
      // Progress happens on the backend's loop thread; the main thread
      // just waits for the finished flag.
      [](const std::atomic<bool>& done) {
        for (int i = 0;
             i < 1000 && !done.load(std::memory_order_acquire); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      });
  stop_serving.store(true, std::memory_order_release);
  for (auto& t : serve_threads) t.join();
  backend.stop();
  for (auto& sw : switches) sw->close();
  server.stop();

  // --- parity --------------------------------------------------------
  ASSERT_EQ(sim_agg.entries.size(), sock_agg.entries.size());
  for (std::size_t i = 0; i < sim_agg.entries.size(); ++i) {
    EXPECT_EQ(sim_agg.entries[i].place, sock_agg.entries[i].place);
    EXPECT_EQ(sim_agg.entries[i].outcome, sock_agg.entries[i].outcome);
    EXPECT_EQ(sim_agg.entries[i].verdict, sock_agg.entries[i].verdict);
    EXPECT_EQ(sim_agg.entries[i].outcome, EntryOutcome::kPass);
  }
  fleet::VerifyOptions opts;
  opts.keys = &agg_keys;
  for (const fleet::Aggregate* agg : {&sim_agg, &sock_agg}) {
    const auto check =
        fleet::verify_aggregate(*agg, members, wave_nonce, 1, opts);
    EXPECT_TRUE(check.valid) << check.reason;
    for (const auto& m : members) {
      EXPECT_TRUE(check.per_switch.at(m).verdict) << m;
    }
  }
  EXPECT_EQ(sim_agg.merkle_root, sock_agg.merkle_root)
      << "identical per-member state must compose to the same tree root";
}

}  // namespace
