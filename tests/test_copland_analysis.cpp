// Tests for the trust analysis and the repair-attack experiment of §4.2:
// expression (1) is vulnerable to the Ramsdell et al. repair attack and
// our analysis flags it; expression (2) sequences the measurements and is
// safe — and the executable SlowAdversary confirms both outcomes.
#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "copland/analysis.h"
#include "copland/parser.h"
#include "copland/semantics.h"
#include "copland/testbed.h"

namespace pera::copland {
namespace {

constexpr const char* kExpr1 =
    "*bank : @ks [av us bmon] -~- @us [bmon us exts]";
constexpr const char* kExpr2 =
    "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]";

// --- static analysis ----------------------------------------------------------

TEST(EventGraph, PipeOrdersEvents) {
  const EventGraph g =
      build_event_graph(parse_term("a us b -> b us c"), "p");
  ASSERT_EQ(g.measurements.size(), 2u);
  EXPECT_TRUE(g.precedes(g.measurements[0].id, g.measurements[1].id));
  EXPECT_FALSE(g.precedes(g.measurements[1].id, g.measurements[0].id));
}

TEST(EventGraph, ParallelLeavesEventsUnordered) {
  const EventGraph g =
      build_event_graph(parse_term("a us b -~- b us c"), "p");
  ASSERT_EQ(g.measurements.size(), 2u);
  EXPECT_FALSE(g.precedes(g.measurements[0].id, g.measurements[1].id));
  EXPECT_FALSE(g.precedes(g.measurements[1].id, g.measurements[0].id));
}

TEST(EventGraph, SeqBranchOrders) {
  const EventGraph g =
      build_event_graph(parse_term("a us b -<- b us c"), "p");
  EXPECT_TRUE(g.precedes(g.measurements[0].id, g.measurements[1].id));
}

TEST(EventGraph, TransitiveClosure) {
  const EventGraph g = build_event_graph(
      parse_term("a us b -> b us c -> c us d"), "p");
  ASSERT_EQ(g.measurements.size(), 3u);
  EXPECT_TRUE(g.precedes(g.measurements[0].id, g.measurements[2].id));
}

TEST(EventGraph, PlaceContextTracked) {
  const EventGraph g = build_event_graph(parse_term("@ks [av us bmon]"), "bank");
  ASSERT_EQ(g.measurements.size(), 1u);
  EXPECT_EQ(g.measurements[0].asp_place, "ks");
  EXPECT_EQ(g.measurements[0].target_place, "us");
}

TEST(RepairAnalysis, Expr1IsVulnerable) {
  const Request req = parse_request(kExpr1);
  const auto vulns = find_repair_vulnerabilities(req.body, "bank", {"av"});
  ASSERT_EQ(vulns.size(), 1u);
  EXPECT_EQ(vulns[0].component, "bmon");
  EXPECT_EQ(vulns[0].place, "us");
  EXPECT_NE(vulns[0].detail.find("unordered"), std::string::npos);
}

TEST(RepairAnalysis, Expr2IsSafe) {
  const Request req = parse_request(kExpr2);
  const auto vulns = find_repair_vulnerabilities(req.body, "bank", {"av"});
  EXPECT_TRUE(vulns.empty());
}

TEST(RepairAnalysis, UntrustedRootMeasurerFlagged) {
  const Request req = parse_request(kExpr2);
  // Without declaring av trusted, av itself is never measured -> flagged.
  const auto vulns = find_repair_vulnerabilities(req.body, "bank", {});
  ASSERT_EQ(vulns.size(), 1u);
  EXPECT_EQ(vulns[0].component, "av");
  EXPECT_NE(vulns[0].detail.find("never measured"), std::string::npos);
}

TEST(RepairAnalysis, SelfMeasurementExempt) {
  const auto vulns =
      find_repair_vulnerabilities(parse_term("a us a"), "p", {});
  EXPECT_TRUE(vulns.empty());
}

TEST(UnsignedAnalysis, Expr1AllUnsigned) {
  const Request req = parse_request(kExpr1);
  EXPECT_EQ(find_unsigned_measurements(req.body, "bank").size(), 2u);
}

TEST(UnsignedAnalysis, Expr2AllSigned) {
  const Request req = parse_request(kExpr2);
  EXPECT_TRUE(find_unsigned_measurements(req.body, "bank").empty());
}

TEST(UnsignedAnalysis, PartialCoverage) {
  const auto missing =
      find_unsigned_measurements(parse_term("a us b -> ! -<- c us d"), "p");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].asp, "c");
}

// --- executable repair attack ----------------------------------------------------

struct AttackBed {
  AttackBed() : keys(7), platform(keys), nonces(8) {
    platform.install("ks", "av", "antivirus");
    platform.install("us", "bmon", "browser monitor v1");
    platform.install("us", "exts", "extensions");
    platform.install_default_funcs(nonces);
    keys.provision_hmac("ks");
    keys.provision_hmac("us");
    // The standing compromise: malware in exts, and bmon corrupted to
    // vouch for it.
    platform.corrupt("us", "exts", "extensions + credential stealer");
    platform.corrupt("us", "bmon", "browser monitor, trojaned");
  }

  crypto::KeyStore keys;
  TestbedPlatform platform;
  crypto::NonceRegistry nonces;
};

TEST(RepairAttack, DefeatsParallelComposition) {
  AttackBed bed;
  adversary::SlowAdversary adv(bed.platform, "us", "bmon");
  Evaluator ev(bed.platform, &adv);
  const Request req = parse_request(kExpr1);
  const EvidencePtr e = ev.eval(req, Evidence::empty());
  // The adversary ran C2 first (corrupt bmon lies about exts), repaired
  // bmon, then let av measure it: all measurements appraise clean.
  const AppraisalResult res = appraise(e, bed.platform.goldens(), bed.keys);
  EXPECT_TRUE(res.ok) << "repair attack should evade expression (1)";
  EXPECT_GE(adv.repairs_performed(), 1u);
}

TEST(RepairAttack, DetectedBySequentialComposition) {
  AttackBed bed;
  adversary::SlowAdversary adv(bed.platform, "us", "bmon");
  Evaluator ev(bed.platform, &adv);
  const Request req = parse_request(kExpr2);
  const EvidencePtr e = ev.eval(req, Evidence::empty());
  // Sequencing forces av's measurement of bmon before bmon's use. The
  // adversary's only evasion is to repair bmon first — after which the
  // honest bmon truthfully reports the malicious exts.
  const AppraisalResult res = appraise(e, bed.platform.goldens(), bed.keys);
  EXPECT_FALSE(res.ok) << "expression (2) must detect the compromise";
  bool exts_flagged = false;
  for (const auto& f : res.findings) {
    if (f.detail.find("exts") != std::string::npos) exts_flagged = true;
  }
  EXPECT_TRUE(exts_flagged);
}

TEST(RepairAttack, NoAdversaryMeansDetectionEitherWay) {
  AttackBed bed;
  Evaluator ev(bed.platform);  // no adversary scheduling
  for (const char* src : {kExpr1, kExpr2}) {
    const EvidencePtr e = ev.eval(parse_request(src), Evidence::empty());
    EXPECT_FALSE(appraise(e, bed.platform.goldens(), bed.keys).ok) << src;
  }
}

TEST(RepairAttack, AnalysisPredictsAttackOutcome) {
  // The static analysis and the executable attack agree: vulnerable
  // policies are exactly the ones the adversary evades.
  for (const auto& [src, vulnerable] :
       std::vector<std::pair<const char*, bool>>{{kExpr1, true},
                                                 {kExpr2, false}}) {
    const Request req = parse_request(src);
    const bool flagged =
        !find_repair_vulnerabilities(req.body, "bank", {"av"}).empty();
    EXPECT_EQ(flagged, vulnerable) << src;

    AttackBed bed;
    adversary::SlowAdversary adv(bed.platform, "us", "bmon");
    Evaluator ev(bed.platform, &adv);
    const EvidencePtr e = ev.eval(req, Evidence::empty());
    const bool evaded = appraise(e, bed.platform.goldens(), bed.keys).ok;
    EXPECT_EQ(evaded, vulnerable) << src;
  }
}

}  // namespace
}  // namespace pera::copland
