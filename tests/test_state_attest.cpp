// Incremental state attestation: the IncrementalMerkleTree engine, the
// dirty-leaf Table / dirty-chunk RegisterFile digests built on it, the
// exact-match lookup index, and the measurement-epoch semantics that make
// evidence caching sound. The core obligation everywhere: the incremental
// paths are *bit-identical* to the O(n) reference recomputes, under
// arbitrary operation sequences.
#include <gtest/gtest.h>

#include <random>

#include "crypto/incremental_merkle.h"
#include "crypto/merkle.h"
#include "dataplane/builder.h"
#include "dataplane/nf.h"
#include "dataplane/program.h"
#include "pera/measurement.h"

namespace pera {
namespace {

crypto::Digest leaf_of(std::uint64_t i) {
  crypto::Bytes b;
  crypto::append_u64(b, i);
  return crypto::sha256(crypto::BytesView{b.data(), b.size()});
}

// --- IncrementalMerkleTree ------------------------------------------------

TEST(IncMerkle, EmptyTreeHasZeroRoot) {
  crypto::IncrementalMerkleTree t;
  EXPECT_EQ(t.root(), crypto::Digest{});
  EXPECT_EQ(t.leaf_count(), 0u);
}

TEST(IncMerkle, MatchesReferenceAtEverySize) {
  crypto::IncrementalMerkleTree t;
  std::vector<crypto::Digest> leaves;
  for (std::uint64_t i = 0; i < 40; ++i) {
    leaves.push_back(leaf_of(i));
    t.append_leaf(leaves.back());
    ASSERT_EQ(t.root(), crypto::MerkleTree(leaves).root()) << "size " << i + 1;
  }
}

TEST(IncMerkle, SetLeafRecomputesOnlyThePath) {
  crypto::IncrementalMerkleTree t;
  std::vector<crypto::Digest> leaves;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    leaves.push_back(leaf_of(i));
  }
  t.assign(leaves);
  (void)t.root();
  const std::uint64_t before = t.stats().nodes_rehashed;
  t.set_leaf(17, leaf_of(9999));
  leaves[17] = leaf_of(9999);
  EXPECT_EQ(t.root(), crypto::MerkleTree(leaves).root());
  // One dirty leaf in a 1024-leaf tree: exactly one parent per level.
  EXPECT_EQ(t.stats().nodes_rehashed - before, 10u);
}

TEST(IncMerkle, NoOpSetLeafKeepsTreeClean) {
  crypto::IncrementalMerkleTree t;
  t.append_leaf(leaf_of(1));
  t.append_leaf(leaf_of(2));
  (void)t.root();
  EXPECT_FALSE(t.dirty());
  t.set_leaf(0, leaf_of(1));  // same value
  EXPECT_FALSE(t.dirty());
}

TEST(IncMerkle, SetLeafOutOfRangeThrows) {
  crypto::IncrementalMerkleTree t;
  EXPECT_THROW(t.set_leaf(0, leaf_of(0)), std::out_of_range);
  t.append_leaf(leaf_of(0));
  EXPECT_THROW(t.set_leaf(1, leaf_of(0)), std::out_of_range);
}

TEST(IncMerkle, RandomizedDifferentialAgainstReference) {
  std::mt19937_64 rng(42);
  crypto::IncrementalMerkleTree t;
  std::vector<crypto::Digest> ref;
  std::uint64_t salt = 0;
  for (int step = 0; step < 3000; ++step) {
    const unsigned op = rng() % 10;
    if (op < 4 || ref.empty()) {  // append
      ref.push_back(leaf_of(salt));
      t.append_leaf(leaf_of(salt));
      ++salt;
    } else if (op < 8) {  // set
      const std::size_t i = rng() % ref.size();
      ref[i] = leaf_of(salt);
      t.set_leaf(i, leaf_of(salt));
      ++salt;
    } else if (op == 8) {  // truncate
      const std::size_t keep = rng() % (ref.size() + 1);
      ref.resize(keep);
      t.truncate(keep);
    }
    if (op == 9 || step % 37 == 0) {
      ASSERT_EQ(t.root(), crypto::MerkleTree(ref).root()) << "step " << step;
    }
  }
  EXPECT_EQ(t.root(), crypto::MerkleTree(ref).root());
  EXPECT_GT(t.stats().nodes_rehashed, 0u);
}

// --- Table: incremental content digest + exact-match index ----------------

dataplane::TableEntry exact_entry(std::uint64_t dst, std::uint64_t port,
                                  std::uint32_t priority = 0) {
  dataplane::TableEntry e;
  e.keys = {dataplane::KeyMatch::exact(dst)};
  e.priority = priority;
  e.action = "forward";
  e.action_params = {port};
  return e;
}

TEST(StateAttestTable, IncrementalDigestMatchesFullUnderRandomOps) {
  std::mt19937_64 rng(7);
  dataplane::Table t("t", {dataplane::KeySpec{
                              {"ipv4", "dst"}, dataplane::MatchKind::kExact}});
  std::uint64_t salt = 0;
  for (int step = 0; step < 1500; ++step) {
    const unsigned op = rng() % 8;
    if (op < 4 || t.entry_count() == 0) {
      t.add_entry(exact_entry(salt, salt % 8));
      ++salt;
    } else if (op < 6) {
      (void)t.remove_entry(rng() % t.entry_count());
    } else if (op == 6) {
      t.entry_mut(rng() % t.entry_count()).action_params = {salt++};
    } else {
      t.set_default(salt % 2 == 0 ? "drop" : "forward", {salt % 4});
      ++salt;
    }
    if (step % 11 == 0) {
      ASSERT_EQ(t.content_digest(), t.content_digest_full())
          << "step " << step;
    }
  }
  EXPECT_EQ(t.content_digest(), t.content_digest_full());
}

TEST(StateAttestTable, DigestUnchangedByLookups) {
  auto prog = dataplane::make_acl();
  dataplane::Table* allow = prog->table("allow");
  const crypto::Digest before = allow->content_digest();
  const std::uint64_t rev = allow->revision();
  dataplane::PisaSwitch sw(prog);
  for (int i = 0; i < 5; ++i) {
    (void)sw.process(dataplane::make_tcp_packet({}));
  }
  EXPECT_EQ(allow->content_digest(), before);  // hit counters not attested
  EXPECT_EQ(allow->revision(), rev);
}

TEST(StateAttestTable, RemoveEntryReportsMovedIndex) {
  dataplane::Table t("t", {dataplane::KeySpec{
                              {"ipv4", "dst"}, dataplane::MatchKind::kExact}});
  t.add_entry(exact_entry(10, 1));
  t.add_entry(exact_entry(20, 2));
  t.add_entry(exact_entry(30, 3));
  // Removing the middle entry swaps the last one in.
  EXPECT_EQ(t.remove_entry(1), 2u);
  EXPECT_EQ(t.entries()[1].keys[0].value, 30u);
  // Removing the last entry moves nothing.
  EXPECT_EQ(t.remove_entry(1), 1u);
  EXPECT_EQ(t.entry_count(), 1u);
  EXPECT_THROW((void)t.remove_entry(5), std::out_of_range);
}

TEST(StateAttestTable, ExactIndexAgreesWithScan) {
  std::mt19937_64 rng(11);
  dataplane::Table t("t",
                     {dataplane::KeySpec{{"ipv4", "dst"},
                                         dataplane::MatchKind::kExact},
                      dataplane::KeySpec{{"tcp", "dport"},
                                         dataplane::MatchKind::kExact}});
  EXPECT_TRUE(t.exact_indexed());
  for (std::uint64_t i = 0; i < 300; ++i) {
    dataplane::TableEntry e;
    e.keys = {dataplane::KeyMatch::exact(0x0a000000 + i % 200),
              dataplane::KeyMatch::exact(1000 + i % 7)};
    e.priority = static_cast<std::uint32_t>(rng() % 3);  // force dup keys
    e.action = "forward";
    e.action_params = {i};
    t.add_entry(std::move(e));
  }
  for (int probe = 0; probe < 500; ++probe) {
    dataplane::PacketSpec spec;
    spec.ip_dst = 0x0a000000 + static_cast<std::uint32_t>(rng() % 220);
    spec.dport = static_cast<std::uint16_t>(1000 + rng() % 9);
    dataplane::ParserProgram parser = dataplane::standard_parser();
    dataplane::ParsedPacket pkt =
        parser.parse(dataplane::make_tcp_packet(spec));
    ASSERT_EQ(t.lookup(pkt), t.lookup_scan(pkt)) << "probe " << probe;
  }
  // Churn and retry: the index must rebuild after structural changes.
  for (int i = 0; i < 100; ++i) (void)t.remove_entry(rng() % t.entry_count());
  for (int probe = 0; probe < 200; ++probe) {
    dataplane::PacketSpec spec;
    spec.ip_dst = 0x0a000000 + static_cast<std::uint32_t>(rng() % 220);
    spec.dport = static_cast<std::uint16_t>(1000 + rng() % 9);
    dataplane::ParserProgram parser = dataplane::standard_parser();
    dataplane::ParsedPacket pkt =
        parser.parse(dataplane::make_tcp_packet(spec));
    ASSERT_EQ(t.lookup(pkt), t.lookup_scan(pkt)) << "post-churn " << probe;
  }
}

TEST(StateAttestTable, MixedMatchTablesAreNotIndexed) {
  auto prog = dataplane::make_firewall();
  EXPECT_FALSE(prog->table("acl")->exact_indexed());   // ternary keys
  EXPECT_FALSE(prog->table("route")->exact_indexed()); // LPM key
  EXPECT_TRUE(dataplane::make_acl()->table("allow")->exact_indexed());
}

TEST(StateAttestTable, IndexedLookupMissesWhenHeaderAbsent) {
  dataplane::Table t("t", {dataplane::KeySpec{
                              {"tcp", "dport"}, dataplane::MatchKind::kExact}});
  t.add_entry(exact_entry(443, 1));
  dataplane::ParsedPacket pkt;  // no tcp header at all
  EXPECT_EQ(t.lookup(pkt), nullptr);
  EXPECT_EQ(t.lookup_scan(pkt), nullptr);
}

// --- RegisterFile: dirty-chunk incremental digests ------------------------

TEST(StateAttestRegisters, IncrementalDigestMatchesFullUnderRandomWrites) {
  std::mt19937_64 rng(13);
  dataplane::RegisterFile regs;
  regs.declare("a", 1000);   // ~16 chunks
  regs.declare("b", 64);     // exactly 1 chunk
  regs.declare("c", 65);     // chunk boundary + 1
  for (int step = 0; step < 400; ++step) {
    const char* name = (rng() % 3 == 0) ? "a" : (rng() % 2 == 0 ? "b" : "c");
    const std::size_t size = regs.size(name);
    regs.write(name, rng() % size, rng());
    if (step % 7 == 0) {
      ASSERT_EQ(regs.state_digest(), regs.state_digest_full())
          << "step " << step;
    }
    if (step == 200) regs.declare("d", 10);  // mid-sequence re-layout
  }
  EXPECT_EQ(regs.state_digest(), regs.state_digest_full());
}

TEST(StateAttestRegisters, NoOpWriteLeavesEvidenceValid) {
  dataplane::RegisterFile regs;
  regs.declare("r", 128);
  regs.write("r", 5, 77);
  const crypto::Digest d = regs.state_digest();
  const std::uint64_t writes = regs.write_count();
  const std::uint64_t rev = regs.revision();
  regs.write("r", 5, 77);  // same value: must not invalidate anything
  EXPECT_EQ(regs.write_count(), writes);
  EXPECT_EQ(regs.revision(), rev);
  EXPECT_EQ(regs.state_digest(), d);
  regs.write("r", 5, 78);  // real change
  EXPECT_EQ(regs.write_count(), writes + 1);
  EXPECT_GT(regs.revision(), rev);
  EXPECT_NE(regs.state_digest(), d);
}

TEST(StateAttestRegisters, RedeclareChangesDigest) {
  dataplane::RegisterFile regs;
  regs.declare("r", 64);
  const crypto::Digest d64 = regs.state_digest();
  regs.declare("r", 128);  // schema leaf changes even though values are 0
  EXPECT_NE(regs.state_digest(), d64);
  EXPECT_EQ(regs.state_digest(), regs.state_digest_full());
}

// --- Measurement epochs ---------------------------------------------------

class StateAttestEpochs : public ::testing::Test {
 protected:
  StateAttestEpochs()
      : sw_(dataplane::make_monitor()),
        mu_({.serial = "epoch-test"}, sw_) {}

  crypto::Digest measure(nac::EvidenceDetail level) {
    return mu_.measure(level);
  }
  std::uint64_t epoch(nac::EvidenceDetail level) { return mu_.epoch(level); }

  dataplane::PisaSwitch sw_;
  pera::MeasurementUnit mu_;
};

TEST_F(StateAttestEpochs, EpochAdvancesExactlyWhenDigestCanChange) {
  std::mt19937_64 rng(17);
  dataplane::Table* mon = sw_.program().table("monitor");
  std::uint64_t salt = 1;
  for (int step = 0; step < 300; ++step) {
    const auto t_epoch = epoch(nac::EvidenceDetail::kTables);
    const auto t_dig = measure(nac::EvidenceDetail::kTables);
    const auto s_epoch = epoch(nac::EvidenceDetail::kProgState);
    const auto s_dig = measure(nac::EvidenceDetail::kProgState);
    switch (rng() % 6) {
      case 0:
        mon->add_entry(exact_entry(9000 + salt, 1));
        ++salt;
        break;
      case 1:
        if (mon->entry_count() > 0) {
          (void)mon->remove_entry(rng() % mon->entry_count());
        }
        break;
      case 2:
        if (mon->entry_count() > 0) {
          mon->entry_mut(rng() % mon->entry_count()).action_params = {salt++,
                                                                      1};
        }
        break;
      case 3:
        sw_.registers().write("port_counts", rng() % 1024, salt++);
        break;
      case 4:  // lookups only: nothing measured may change
        (void)sw_.process(dataplane::make_tcp_packet({}));
        break;
      case 5:  // no-op register write: nothing measured may change
        sw_.registers().write(
            "port_counts", 3, sw_.registers().read("port_counts", 3));
        break;
    }
    // Soundness: a changed digest MUST change the epoch (else caches serve
    // stale evidence). Precision: an unchanged digest should not advance
    // the tables/state epoch for lookups and no-op writes.
    if (measure(nac::EvidenceDetail::kTables) != t_dig) {
      ASSERT_NE(epoch(nac::EvidenceDetail::kTables), t_epoch) << step;
    }
    if (measure(nac::EvidenceDetail::kProgState) != s_dig) {
      ASSERT_NE(epoch(nac::EvidenceDetail::kProgState), s_epoch) << step;
    }
  }
}

TEST_F(StateAttestEpochs, ReadOnlyTrafficKeepsEpochsStable) {
  const auto t_epoch = epoch(nac::EvidenceDetail::kTables);
  for (int i = 0; i < 10; ++i) {
    dataplane::PacketSpec spec;
    spec.dport = 25;  // misses the monitor table's register action
    (void)sw_.process(dataplane::make_tcp_packet(spec));
  }
  EXPECT_EQ(epoch(nac::EvidenceDetail::kTables), t_epoch);
}

TEST_F(StateAttestEpochs, ProgramSwapAdvancesAllMutableEpochs) {
  const auto t_epoch = epoch(nac::EvidenceDetail::kTables);
  const auto s_epoch = epoch(nac::EvidenceDetail::kProgState);
  sw_.load_program(dataplane::make_router());
  mu_.on_program_loaded();
  EXPECT_NE(epoch(nac::EvidenceDetail::kTables), t_epoch);
  EXPECT_NE(epoch(nac::EvidenceDetail::kProgState), s_epoch);
}

// --- StatefulNat workload -------------------------------------------------

TEST(StateAttestNat, TranslatesBoundFlowsAndDropsUnbound) {
  dataplane::StatefulNat nat({.capacity = 16, .idle_timeout = 10});
  const dataplane::FlowKey k{0x0a000101, 40001};
  const std::size_t slot = nat.add_flow(k, 1);

  auto out = nat.sw().process(nat.make_packet(k));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->port, nat.config().wan_port);
  dataplane::ParsedPacket parsed = nat.sw().parse(*out);
  EXPECT_EQ(parsed.get("ipv4.src"), nat.config().external_ip);
  EXPECT_EQ(parsed.get("tcp.sport"), nat.config().port_base + slot);

  EXPECT_FALSE(
      nat.sw().process(nat.make_packet({0x0a000102, 40002})).has_value());
}

TEST(StateAttestNat, ExpiryEvictsIdleFlowsLruFirst) {
  dataplane::StatefulNat nat({.capacity = 8, .idle_timeout = 10});
  nat.add_flow({1, 1}, 0);
  nat.add_flow({2, 2}, 5);
  nat.add_flow({3, 3}, 9);
  EXPECT_TRUE(nat.touch_flow({1, 1}, 12));  // refresh the oldest
  EXPECT_EQ(nat.expire_flows(16), 1u);      // only {2,2} is idle >= 10
  EXPECT_TRUE(nat.has_flow({1, 1}));
  EXPECT_FALSE(nat.has_flow({2, 2}));
  EXPECT_TRUE(nat.has_flow({3, 3}));
  EXPECT_EQ(nat.flow_count(), 2u);
}

TEST(StateAttestNat, CapacityEvictionReusesSlots) {
  dataplane::StatefulNat nat({.capacity = 4, .idle_timeout = 1000});
  for (std::uint16_t i = 0; i < 4; ++i) {
    nat.add_flow({100, static_cast<std::uint16_t>(1000 + i)}, i);
  }
  EXPECT_EQ(nat.flow_count(), 4u);
  nat.add_flow({200, 2000}, 10);  // evicts LRU = {100,1000}
  EXPECT_EQ(nat.flow_count(), 4u);
  EXPECT_FALSE(nat.has_flow({100, 1000}));
  EXPECT_TRUE(nat.has_flow({200, 2000}));
}

TEST(StateAttestNat, ChurnKeepsIncrementalAndFullDigestsIdentical) {
  std::mt19937_64 rng(23);
  dataplane::StatefulNat nat({.capacity = 600, .idle_timeout = 50});
  std::uint64_t now = 0;
  std::uint64_t salt = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 20; ++i) {
      nat.add_flow({static_cast<std::uint32_t>(salt / 60000),
                    static_cast<std::uint16_t>(salt % 60000)},
                   now);
      ++salt;
    }
    for (int i = 0; i < 10; ++i) {
      (void)nat.touch_flow({static_cast<std::uint32_t>(rng() % (salt / 60000 + 1)),
                            static_cast<std::uint16_t>(rng() % 60000)},
                           now);
    }
    now += 10;
    (void)nat.expire_flows(now);
    const auto& prog = nat.sw().program();
    ASSERT_EQ(prog.tables_digest(), prog.tables_digest_full()) << round;
    ASSERT_EQ(nat.sw().registers().state_digest(),
              nat.sw().registers().state_digest_full())
        << round;
  }
  EXPECT_GT(nat.flow_count(), 0u);
}

}  // namespace
}  // namespace pera
