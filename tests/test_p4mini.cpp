// Tests for the P4-mini frontend: parsing, error reporting, and — via the
// NetKAT bridge — behavioural equivalence between the textual programs and
// the builder-constructed ones.
#include <gtest/gtest.h>

#include "core/netkat_bridge.h"
#include "crypto/drbg.h"
#include "dataplane/builder.h"
#include "dataplane/p4mini.h"

namespace pera::dataplane {
namespace {

std::vector<RawPacket> sample_packets(std::uint64_t seed, std::size_t n) {
  crypto::Drbg rng(seed);
  std::vector<RawPacket> out;
  for (std::size_t i = 0; i < n; ++i) {
    PacketSpec spec;
    spec.ip_src = static_cast<std::uint32_t>(0x0a000000 | rng.uniform(1 << 16));
    spec.ip_dst = static_cast<std::uint32_t>(
        0x0a000000 | (rng.uniform(10) << 8) | rng.uniform(256));
    const std::uint64_t ports[] = {443, 80, 22, 25, 6667, 31337, 1234};
    spec.dport = static_cast<std::uint16_t>(ports[rng.uniform(7)]);
    out.push_back(make_tcp_packet(spec));
  }
  return out;
}

// Two programs behave the same on a packet when both drop it or both
// forward to the same port with the same bytes.
bool same_behavior(const std::shared_ptr<DataplaneProgram>& a,
                   const std::shared_ptr<DataplaneProgram>& b,
                   const RawPacket& raw) {
  PisaSwitch sa(a);
  PisaSwitch sb(b);
  const auto ra = sa.process(raw);
  const auto rb = sb.process(raw);
  if (ra.has_value() != rb.has_value()) return false;
  if (!ra) return true;
  return ra->port == rb->port && ra->data == rb->data;
}

// --- parsing ----------------------------------------------------------------

TEST(P4Mini, CompilesRouter) {
  const auto prog = compile_p4mini(p4src::router_v1());
  EXPECT_EQ(prog->name(), "router");
  EXPECT_EQ(prog->version(), "v1");
  ASSERT_EQ(prog->tables().size(), 1u);
  EXPECT_EQ(prog->tables()[0]->name(), "route");
  EXPECT_EQ(prog->tables()[0]->entry_count(), 8u);
  EXPECT_NE(prog->action("fwd"), nullptr);
}

TEST(P4Mini, CompilesAllReferenceSources) {
  for (const char* src : {p4src::router_v1(), p4src::firewall_v5(),
                          p4src::acl_v3(), p4src::rogue_router_v1()}) {
    EXPECT_NO_THROW((void)compile_p4mini(src));
  }
}

TEST(P4Mini, KeyWidthInferredFromHeader) {
  const auto prog = compile_p4mini(p4src::router_v1());
  EXPECT_EQ(prog->tables()[0]->keys()[0].width, 32u);
}

TEST(P4Mini, RegistersAndRegOps) {
  const auto prog = compile_p4mini(R"(
program counter v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
register hits[64];
action count(slot, val) { reg_write(hits, slot, val); set_egress(1); }
table t {
  key { eth.ethertype: exact; }
  entry 0x0800 -> count(3, 7);
}
)");
  PisaSwitch sw(prog);
  RawPacket raw;
  raw.data = pack_header(stdhdr::ethernet(), {1, 2, 0x0800});
  const auto out = sw.process(raw);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(sw.registers().read("hits", 3), 7u);
}

TEST(P4Mini, ProgramDigestStableAcrossCompiles) {
  EXPECT_EQ(compile_p4mini(p4src::firewall_v5())->program_digest(),
            compile_p4mini(p4src::firewall_v5())->program_digest());
  EXPECT_NE(compile_p4mini(p4src::firewall_v5())->program_digest(),
            compile_p4mini(p4src::acl_v3())->program_digest());
}

TEST(P4Mini, RogueSourceDigestDiffersFromHonest) {
  // The textual rogue program claims the same name/version but its digest
  // still betrays it — the UC1 property, now at the source level.
  const auto honest = compile_p4mini(p4src::router_v1());
  const auto rogue = compile_p4mini(p4src::rogue_router_v1());
  EXPECT_EQ(honest->name(), rogue->name());
  EXPECT_EQ(honest->version(), rogue->version());
  EXPECT_NE(honest->program_digest(), rogue->program_digest());
}

// --- error reporting --------------------------------------------------------

TEST(P4Mini, ErrorsCarryLineNumbers) {
  try {
    (void)compile_p4mini("program x v1;\nheader h { f:99; }\n");
    FAIL() << "expected P4MiniError";
  } catch (const P4MiniError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("1..64"), std::string::npos);
  }
}

TEST(P4Mini, RejectsUndeclaredHeaderInParser) {
  EXPECT_THROW((void)compile_p4mini(
                   "program x v1;\nparser { start: extract ghost; }\n"),
               P4MiniError);
}

TEST(P4Mini, RejectsUndeclaredActionInEntry) {
  EXPECT_THROW((void)compile_p4mini(R"(
program x v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
table t { key { eth.ethertype: exact; } entry 5 -> ghost(); }
)"),
               P4MiniError);
}

TEST(P4Mini, RejectsMisalignedHeader) {
  EXPECT_THROW(
      (void)compile_p4mini("program x v1;\nheader h { f:4; }\nparser { "
                           "start: extract h; }\n"),
      P4MiniError);
}

TEST(P4Mini, RejectsEntryKeyCountMismatch) {
  EXPECT_THROW((void)compile_p4mini(R"(
program x v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
action a() { drop; }
table t { key { eth.dst: exact; eth.src: exact; } entry 5 -> a(); }
)"),
               P4MiniError);
}

TEST(P4Mini, RejectsMissingParser) {
  EXPECT_THROW((void)compile_p4mini("program x v1;\n"), P4MiniError);
}

TEST(P4Mini, RejectsGarbageToken) {
  EXPECT_THROW((void)compile_p4mini("program x v1; @"), P4MiniError);
}

TEST(P4Mini, RejectsUnknownStatement) {
  EXPECT_THROW((void)compile_p4mini(R"(
program x v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
action a() { teleport(1); }
)"),
               P4MiniError);
}

TEST(P4Mini, HexAndDecimalLiterals) {
  const auto prog = compile_p4mini(R"(
program x v1;
header eth { dst:48; src:48; ethertype:16; }
parser { start: extract eth; }
action a() { set_egress(0x10); }
table t { key { eth.ethertype: exact; } entry 2048 -> a(); }
)");
  PisaSwitch sw(prog);
  RawPacket raw;
  raw.data = pack_header(stdhdr::ethernet(), {1, 2, 2048});
  const auto out = sw.process(raw);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->port, 16u);
}

// --- behavioural equivalence with the builder programs -------------------------

class P4MiniEquiv : public ::testing::TestWithParam<int> {};

TEST_P(P4MiniEquiv, TextualAndBuilderProgramsAgree) {
  const int which = GetParam();
  std::shared_ptr<DataplaneProgram> text;
  std::shared_ptr<DataplaneProgram> built;
  switch (which) {
    case 0:
      text = compile_p4mini(p4src::router_v1());
      built = make_router("v1");
      break;
    case 1:
      text = compile_p4mini(p4src::firewall_v5());
      built = make_firewall("v5");
      break;
    case 2:
      text = compile_p4mini(p4src::acl_v3());
      built = make_acl("v3");
      break;
    default:
      text = compile_p4mini(p4src::rogue_router_v1());
      built = make_rogue_router("v1");
      break;
  }
  for (const auto& raw : sample_packets(901 + which, 120)) {
    EXPECT_TRUE(same_behavior(text, built, raw));
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, P4MiniEquiv, ::testing::Range(0, 4));

TEST(P4Mini, CompiledProgramsPassTranslationValidation) {
  // The textual router also validates against its own NetKAT model.
  const auto prog = compile_p4mini(p4src::router_v1());
  for (const auto& raw : sample_packets(999, 80)) {
    EXPECT_TRUE(core::behaviors_agree(prog, raw));
  }
}

}  // namespace
}  // namespace pera::dataplane
