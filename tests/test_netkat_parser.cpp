// Tests for textual NetKAT: parsing, semantics of parsed policies, and
// writing a refinement spec as text against a P4-mini program.
#include <gtest/gtest.h>

#include "core/netkat_bridge.h"
#include "dataplane/builder.h"
#include "dataplane/p4mini.h"
#include "netkat/eval.h"
#include "netkat/parser.h"

namespace pera::netkat {
namespace {

Packet pkt(std::uint64_t sw, std::uint64_t pt, std::uint64_t dst = 0) {
  Packet p;
  p.set("sw", sw);
  p.set("pt", pt);
  p.set("dst", dst);
  return p;
}

TEST(NetkatParser, Atoms) {
  EXPECT_TRUE(eval(parse_policy("id"), pkt(1, 1)).size() == 1);
  EXPECT_TRUE(eval(parse_policy("drop"), pkt(1, 1)).empty());
  const PacketSet out = eval(parse_policy("pt := 7"), pkt(1, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.begin()->get("pt"), 7u);
}

TEST(NetkatParser, FilterTests) {
  EXPECT_EQ(eval(parse_policy("filter sw = 1"), pkt(1, 0)).size(), 1u);
  EXPECT_TRUE(eval(parse_policy("filter sw = 2"), pkt(1, 0)).empty());
  EXPECT_EQ(eval(parse_policy("filter 1"), pkt(1, 0)).size(), 1u);
  EXPECT_TRUE(eval(parse_policy("filter 0"), pkt(1, 0)).empty());
}

TEST(NetkatParser, CompoundPredicates) {
  const PolicyPtr p =
      parse_policy("filter (sw = 1 & !(pt = 9) + dst = 5)");
  EXPECT_EQ(eval(p, pkt(1, 0)).size(), 1u);   // sw=1, pt!=9
  EXPECT_TRUE(eval(p, pkt(1, 9)).empty());    // pt=9 kills the conjunct
  EXPECT_EQ(eval(p, pkt(2, 9, 5)).size(), 1u);  // dst=5 rescues via +
}

TEST(NetkatParser, MaskedTests) {
  // Explicit mask form.
  const PolicyPtr p = parse_policy("filter dst & 0xff00 = 0x1200");
  EXPECT_EQ(eval(p, pkt(0, 0, 0x1234)).size(), 1u);
  EXPECT_TRUE(eval(p, pkt(0, 0, 0x2234)).empty());
}

TEST(NetkatParser, UnionSeqStarPrecedence) {
  // a ; b + c  parses as (a;b) + c.
  const PolicyPtr p = parse_policy("pt := 1 ; sw := 2 + pt := 3");
  const PacketSet out = eval(p, pkt(9, 9));
  ASSERT_EQ(out.size(), 2u);
  bool saw_seq = false;
  bool saw_alt = false;
  for (const auto& q : out) {
    if (q.get("pt") == 1 && q.get("sw") == 2) saw_seq = true;
    if (q.get("pt") == 3 && q.get("sw") == 9) saw_alt = true;
  }
  EXPECT_TRUE(saw_seq);
  EXPECT_TRUE(saw_alt);
}

TEST(NetkatParser, StarFixpoint) {
  const PolicyPtr p = parse_policy(
      "(filter sw = 0 ; sw := 1 + filter sw = 1 ; sw := 2)*");
  EXPECT_EQ(eval(p, pkt(0, 0)).size(), 3u);  // sw = 0,1,2
}

TEST(NetkatParser, DupParses) {
  const HistorySet out = eval_hist(parse_policy("dup ; sw := 5"), pkt(1, 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.begin()->size(), 2u);
}

TEST(NetkatParser, ParenthesizedPolicies) {
  const PolicyPtr p = parse_policy("(pt := 1 + pt := 2) ; filter pt = 1");
  EXPECT_EQ(eval(p, pkt(0, 0)).size(), 1u);
}

TEST(NetkatParser, CommentsIgnored) {
  const PolicyPtr p = parse_policy("pt := 1  # set the port\n + drop");
  EXPECT_EQ(eval(p, pkt(0, 0)).size(), 1u);
}

TEST(NetkatParser, Errors) {
  EXPECT_THROW((void)parse_policy(""), NetkatParseError);
  EXPECT_THROW((void)parse_policy("pt :="), NetkatParseError);
  EXPECT_THROW((void)parse_policy("pt := 1 extra"), NetkatParseError);
  EXPECT_THROW((void)parse_policy("filter sw = "), NetkatParseError);
  EXPECT_THROW((void)parse_predicate("sw = 1/99"), NetkatParseError);
  EXPECT_THROW((void)parse_policy("filter 3"), NetkatParseError);
  EXPECT_THROW((void)parse_policy("@"), NetkatParseError);
}

TEST(NetkatParser, PredicateEntryPoint) {
  const PredPtr p = parse_predicate("sw = 1 + sw = 2");
  EXPECT_TRUE(eval(p, pkt(1, 0)));
  EXPECT_TRUE(eval(p, pkt(2, 0)));
  EXPECT_FALSE(eval(p, pkt(3, 0)));
}

// The payoff: a textual spec checked against a textual program.
TEST(NetkatParser, TextualSpecRefinesTextualProgram) {
  // Spec: the router may emit 10.0.x.0/24 traffic only on port x (subset
  // shown for x=1..3) — everything else must be dropped (refinement
  // allows dropping).
  const PolicyPtr spec = parse_policy(R"(
      filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000100) ; pt := 1
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000200) ; pt := 2
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000300) ; pt := 3
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000400) ; pt := 4
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000500) ; pt := 5
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000600) ; pt := 6
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000700) ; pt := 7
    + filter (valid.ipv4 = 1 & ipv4.dst & 0xffffff00 = 0x0a000800) ; pt := 8
  )");

  const auto program = dataplane::compile_p4mini(dataplane::p4src::router_v1());
  std::vector<dataplane::RawPacket> universe;
  for (std::uint32_t dst : {0x0a000105u, 0x0a000342u, 0x0a000799u,
                            0x0a001001u, 0xC0A80001u}) {
    dataplane::PacketSpec spec_pkt;
    spec_pkt.ip_dst = dst;
    universe.push_back(dataplane::make_tcp_packet(spec_pkt));
  }
  EXPECT_TRUE(core::refines(program, spec, universe));

  // A broken router violating the spec is caught.
  auto bad = dataplane::compile_p4mini(dataplane::p4src::router_v1());
  bad->table("route")->entry_mut(0).action_params = {5};  // 10.0.1/24 -> 5!
  EXPECT_FALSE(core::refines(bad, spec, universe));
}

}  // namespace
}  // namespace pera::netkat
