// End-to-end tests for Merkle-batched signing on the data path: the PERA
// switch defers out-of-band signatures, ships whole batches, and the
// standard appraiser verifies the kBatched scheme via crypto::verify_any.
#include <gtest/gtest.h>

#include "core/deployment.h"

namespace pera::core {
namespace {

nac::CompiledPolicy oob_policy() {
  return nac::compile(std::string(
      "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> "
      "@Appraiser [appraise]"));
}

TEST(BatchedFlow, WrappedSignaturesVerify) {
  crypto::KeyStore keys(71);
  crypto::Signer& s = keys.provision_hmac("sw");
  const crypto::Verifier& v = *keys.verifier_for("sw");
  ::pera::pera::EvidenceBatcher batcher(s, 4);
  std::vector<crypto::Digest> items;
  for (int i = 0; i < 3; ++i) {
    items.push_back(crypto::sha256("item" + std::to_string(i)));
    (void)batcher.add(items.back());
  }
  items.push_back(crypto::sha256("item3"));
  (void)batcher.add(items.back());
  // Fresh batch -> flush_wrapped on empty is empty; use a new batch.
  ::pera::pera::EvidenceBatcher b2(s, 64);
  for (const auto& i : items) (void)b2.add(i);
  const auto wrapped = b2.flush_wrapped();
  ASSERT_EQ(wrapped.size(), 4u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(wrapped[i].scheme, crypto::SignatureScheme::kBatched);
    EXPECT_TRUE(crypto::verify_any(v, items[i], wrapped[i]));
    EXPECT_FALSE(crypto::verify_any(v, crypto::sha256("other"), wrapped[i]));
  }
}

TEST(BatchedFlow, EndToEndAppraisalSucceeds) {
  DeploymentOptions opts;
  opts.pera_config.oob_batch_size = 4;
  Deployment dep(netsim::topo::chain(1), opts);
  dep.provision_goldens();

  // 16 packets out-of-band: evidence ships in 4 batches of 4, and every
  // record appraises clean through the normal appraiser path.
  const FlowReport rep = dep.send_flow("client", "server", oob_policy(), 16,
                                       /*in_band=*/false);
  EXPECT_EQ(rep.packets_delivered, 16u);
  EXPECT_EQ(rep.attestations, 16u);
  EXPECT_EQ(rep.appraisal_failures, 0u);
  EXPECT_EQ(rep.certificates, 16u);  // every record still appraised
}

TEST(BatchedFlow, PartialBatchStaysPending) {
  DeploymentOptions opts;
  opts.pera_config.oob_batch_size = 8;
  Deployment dep(netsim::topo::chain(1), opts);
  dep.provision_goldens();

  // 6 packets < batch of 8: nothing ships yet.
  const FlowReport rep = dep.send_flow("client", "server", oob_policy(), 6,
                                       /*in_band=*/false);
  EXPECT_EQ(rep.attestations, 6u);
  EXPECT_EQ(rep.certificates, 0u);

  // Two more packets complete the batch; all 8 records arrive.
  const FlowReport rep2 = dep.send_flow("client", "server", oob_policy(), 2,
                                        /*in_band=*/false);
  EXPECT_EQ(rep2.certificates, 8u);
  EXPECT_EQ(rep2.appraisal_failures, 0u);
}

TEST(BatchedFlow, UnbatchedAndBatchedSignatureCountsDiffer) {
  // With batch 8, XMSS one-time keys stretch 8x further.
  DeploymentOptions batched;
  batched.use_xmss = true;
  batched.xmss_height = 4;  // only 16 signatures
  batched.pera_config.oob_batch_size = 8;
  Deployment dep(netsim::topo::chain(1), batched);
  dep.provision_goldens();
  const FlowReport rep = dep.send_flow("client", "server", oob_policy(), 64,
                                       /*in_band=*/false);
  // 64 evidence records cost only 8 XMSS signatures: no exhaustion.
  EXPECT_EQ(rep.appraisal_failures, 0u);
  EXPECT_EQ(rep.certificates, 64u);
}

TEST(BatchedFlow, TamperedBatchedEvidenceDetected) {
  DeploymentOptions opts;
  opts.pera_config.oob_batch_size = 2;
  Deployment dep(netsim::topo::chain(1), opts);
  dep.provision_goldens();
  // Swap the program: batched evidence carries the rogue digest and every
  // record fails appraisal despite the valid batched signature.
  dep.switch_node("s1").pera().load_program(
      dataplane::make_rogue_router("v1"));
  const FlowReport rep = dep.send_flow("client", "server", oob_policy(), 4,
                                       /*in_band=*/false);
  EXPECT_EQ(rep.appraisal_failures, 4u);
}

TEST(BatchedFlow, NestedBatchedSignatureRejected) {
  // verify_any must refuse kBatched-inside-kBatched (no recursion bombs).
  crypto::KeyStore keys(72);
  crypto::Signer& s = keys.provision_hmac("sw");
  const crypto::Verifier& v = *keys.verifier_for("sw");
  const crypto::Digest msg = crypto::sha256("m");
  const crypto::Signature inner = s.sign(msg);
  const crypto::MerkleTree tree({msg});
  const crypto::Signature once =
      crypto::wrap_batched(tree.root(), tree.prove(0), inner);
  EXPECT_TRUE(crypto::verify_any(v, msg, once));
  const crypto::Signature twice =
      crypto::wrap_batched(tree.root(), tree.prove(0), once);
  EXPECT_FALSE(crypto::verify_any(v, msg, twice));
}

}  // namespace
}  // namespace pera::core
