// End-to-end integration tests over the full deployment: the Fig. 2
// attestation variants, policy-carrying flows, the Athens-Affair program
// swap (UC1), path verification (UC2/UC3), on-path tampering, and the
// design-space behaviours (caching, sampling) the benches measure.
#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "core/deployment.h"
#include "core/path_verifier.h"

namespace pera::core {
namespace {

using nac::CompositionMode;
using nac::EvidenceDetail;

nac::CompiledPolicy per_hop_policy(
    CompositionMode mode = CompositionMode::kChained) {
  return nac::compile(
      std::string("*rp<n> : forall hop : @hop [attest(Hardware -~- Program) "
                  "-> !] *=> @Appraiser [appraise]"),
      mode);
}

// --- Fig. 2 variants -----------------------------------------------------------

TEST(Fig2, OutOfBandChallengeAccepted) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  const ChallengeReport rep = dep.run_out_of_band(
      "client", "s2", EvidenceDetail::kHardware | EvidenceDetail::kProgram);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.accepted);
  EXPECT_GT(rep.rtt, 0);
  EXPECT_GE(rep.messages, 3u);  // challenge, evidence, result
}

TEST(Fig2, OutOfBandWithRp2Retrieval) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  const ChallengeReport rep = dep.run_out_of_band(
      "client", "s2", nac::mask_of(EvidenceDetail::kProgram), "server");
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.messages, 5u);  // + retrieve, + second result
}

TEST(Fig2, InBandVariantReachesRp2) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  const ChallengeReport rep = dep.run_in_band(
      "client", "s2", "server", nac::mask_of(EvidenceDetail::kProgram));
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.accepted);
}

TEST(Fig2, InBandUsesFewerMessagesThanOobWithRp2) {
  Deployment dep1(netsim::topo::chain(3));
  dep1.provision_goldens();
  const auto oob = dep1.run_out_of_band(
      "client", "s2", nac::mask_of(EvidenceDetail::kProgram), "server");
  Deployment dep2(netsim::topo::chain(3));
  dep2.provision_goldens();
  const auto ib = dep2.run_in_band("client", "s2", "server",
                                   nac::mask_of(EvidenceDetail::kProgram));
  // In-band saves RP2's separate retrieval round (paper §5).
  EXPECT_LT(ib.messages, oob.messages);
}

// --- UC1: the Athens Affair -----------------------------------------------------

TEST(Athens, SwapDetectedByAttestation) {
  Deployment dep(netsim::topo::isp());
  dep.provision_goldens();

  // Before the attack: attestation of core2 passes.
  const auto clean = dep.run_out_of_band(
      "client", "core2", nac::mask_of(EvidenceDetail::kProgram));
  EXPECT_TRUE(clean.accepted);

  // The attacker swaps in the interceptor.
  const adversary::SwapRecord rec =
      adversary::program_swap_attack(dep, "core2");
  EXPECT_NE(rec.before, rec.after);

  const auto compromised = dep.run_out_of_band(
      "client", "core2", nac::mask_of(EvidenceDetail::kProgram));
  EXPECT_TRUE(compromised.completed);
  EXPECT_FALSE(compromised.accepted) << "rogue program must fail appraisal";

  // Covering tracks: restoring the honest program passes again.
  adversary::program_restore(dep, "core2");
  const auto restored = dep.run_out_of_band(
      "client", "core2", nac::mask_of(EvidenceDetail::kProgram));
  EXPECT_TRUE(restored.accepted);
}

TEST(Athens, RogueTrafficIndistinguishableWithoutRa) {
  // The control experiment: plain forwarding sees no difference, which is
  // why the real attack went unnoticed for months.
  Deployment honest_dep(netsim::topo::isp());
  Deployment rogue_dep(netsim::topo::isp());
  (void)adversary::program_swap_attack(rogue_dep, "core2");
  dataplane::PacketSpec spec;
  spec.ip_dst = 0x0a000202;
  const FlowReport a = honest_dep.send_plain_flow("client", "pm_phone", 20, spec);
  const FlowReport b = rogue_dep.send_plain_flow("client", "pm_phone", 20, spec);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
}

// --- policy-carrying flows -------------------------------------------------------

TEST(Flows, InBandFlowGathersPerHopEvidence) {
  Deployment dep(netsim::topo::chain(4));
  dep.provision_goldens();
  const FlowReport rep = dep.send_flow(
      "client", "server", per_hop_policy(), 10, /*in_band=*/true);
  EXPECT_EQ(rep.packets_delivered, 10u);
  EXPECT_EQ(rep.attestations, 40u);  // 4 switches x 10 packets
  EXPECT_GT(rep.evidence_bytes_inband, 0u);
  EXPECT_EQ(rep.appraisal_failures, 0u);
  EXPECT_EQ(rep.certificates, 10u);  // one carrier appraisal per packet
}

TEST(Flows, OutOfBandFlowSendsEvidenceMessages) {
  Deployment dep(netsim::topo::chain(4));
  dep.provision_goldens();
  const FlowReport rep = dep.send_flow(
      "client", "server", per_hop_policy(), 5, /*in_band=*/false);
  EXPECT_EQ(rep.packets_delivered, 5u);
  EXPECT_EQ(rep.evidence_bytes_inband, 0u);
  EXPECT_GE(rep.oob_messages, 20u);  // 4 switches x 5 packets evidence msgs
}

TEST(Flows, PlainFlowHasNoRaOverhead) {
  Deployment dep(netsim::topo::chain(4));
  const FlowReport rep = dep.send_plain_flow("client", "server", 10);
  EXPECT_EQ(rep.packets_delivered, 10u);
  EXPECT_EQ(rep.attestations, 0u);
  EXPECT_EQ(rep.evidence_bytes_inband, 0u);
}

TEST(Flows, RaFlowSlowerThanPlain) {
  Deployment dep(netsim::topo::chain(4));
  dep.provision_goldens();
  const FlowReport plain = dep.send_plain_flow("client", "server", 10);
  const FlowReport ra = dep.send_flow("client", "server", per_hop_policy(),
                                      10, true);
  EXPECT_GT(ra.mean_latency_us, plain.mean_latency_us);
  EXPECT_GT(ra.bytes_on_wire, plain.bytes_on_wire);
}

TEST(Flows, SamplingReducesAttestations) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  const FlowReport all = dep.send_flow("client", "server", per_hop_policy(),
                                       32, true, /*sampling_log2=*/0);
  const FlowReport sampled = dep.send_flow(
      "client", "server", per_hop_policy(), 32, true, /*sampling_log2=*/3);
  EXPECT_EQ(all.attestations, 64u);
  EXPECT_EQ(sampled.attestations, 8u);  // 1 in 8 of 32 pkts x 2 switches
}

TEST(Flows, CachingKicksInAcrossPacketsOfAFlow) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  const FlowReport rep = dep.send_flow("client", "server", per_hop_policy(),
                                       16, true);
  // Same nonce + unchanged program: first packet misses, rest hit.
  EXPECT_EQ(rep.cache_misses, 2u);
  EXPECT_EQ(rep.cache_hits, 30u);
}

TEST(Flows, CacheDisabledMissesAlways) {
  DeploymentOptions opts;
  opts.pera_config.cache_enabled = false;
  Deployment dep(netsim::topo::chain(2), opts);
  dep.provision_goldens();
  const FlowReport rep = dep.send_flow("client", "server", per_hop_policy(),
                                       16, true);
  EXPECT_EQ(rep.cache_hits, 0u);
  EXPECT_EQ(rep.cache_misses, 32u);
}

TEST(Flows, SwappedProgramFailsFlowAppraisal) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  (void)adversary::program_swap_attack(dep, "s2");
  const FlowReport rep = dep.send_flow("client", "server", per_hop_policy(),
                                       4, true);
  EXPECT_EQ(rep.appraisal_failures, 4u);
}

TEST(Flows, XmssDeploymentWorks) {
  DeploymentOptions opts;
  opts.use_xmss = true;
  opts.xmss_height = 6;
  Deployment dep(netsim::topo::chain(2), opts);
  dep.provision_goldens();
  const FlowReport rep = dep.send_flow("client", "server", per_hop_policy(),
                                       3, true);
  EXPECT_EQ(rep.appraisal_failures, 0u);
  EXPECT_GT(rep.evidence_bytes_inband, 0u);
}

// --- on-path adversaries -----------------------------------------------------------

struct TamperBed {
  explicit TamperBed(adversary::TamperingNode::Mode mode)
      : dep(netsim::topo::chain(3)),
        tamper(&dep.switch_node("s2"), mode, 99) {
    dep.provision_goldens();
    // Interpose the tamperer on the middle switch.
    dep.network().attach("s2", &tamper);
  }

  Deployment dep;
  adversary::TamperingNode tamper;
};

TEST(Tampering, ForgedEvidenceFailsAppraisal) {
  TamperBed bed(adversary::TamperingNode::Mode::kForge);
  const FlowReport rep = bed.dep.send_flow("client", "server",
                                           per_hop_policy(), 4, true);
  EXPECT_GT(bed.tamper.tampered_count(), 0u);
  EXPECT_EQ(rep.appraisal_failures, 4u);
}

TEST(Tampering, DroppedEvidenceShrinksCarrier) {
  TamperBed bed(adversary::TamperingNode::Mode::kDrop);
  const FlowReport rep = bed.dep.send_flow("client", "server",
                                           per_hop_policy(), 4, true);
  // s1's records are stripped at s2; only s2/s3 evidence arrives. The
  // appraisal of what remains passes, but the path is visibly shorter —
  // which the path verifier below turns into a rejection.
  EXPECT_GT(bed.tamper.tampered_count(), 0u);
  EXPECT_LT(rep.evidence_bytes_inband,
            [&] {
              Deployment clean(netsim::topo::chain(3));
              clean.provision_goldens();
              return clean
                  .send_flow("client", "server", per_hop_policy(), 4, true)
                  .evidence_bytes_inband;
            }());
}

// --- path verification (UC2 / UC3) ----------------------------------------------

struct PathBed {
  PathBed() : dep(netsim::topo::chain(3)) {
    dep.provision_goldens();
  }

  // Gather one packet's worth of chained path evidence by running the flow
  // and reading the carrier the server received.
  copland::EvidencePtr gather() {
    HostNode& server = dep.host("server");
    const std::size_t before = server.received().size();
    (void)dep.send_flow("client", "server", per_hop_policy(), 1, true);
    EXPECT_GT(server.received().size(), before);
    // Reconstruct from the last carrier: we need the raw records, so rerun
    // capturing via a fresh flow (records also live in the appraiser, but
    // the verdict API is simpler to test through PathVerifier directly).
    return last_carrier_evidence;
  }

  Deployment dep;
  copland::EvidencePtr last_carrier_evidence;
};

TEST(PathVerifier, VerifiesChainAndOrder) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();

  // Build path evidence directly from the switches, in path order.
  copland::EvidencePtr acc = copland::Evidence::empty();
  const crypto::Nonce n{crypto::sha256("path nonce")};
  for (const char* name : {"s1", "s2", "s3"}) {
    auto& sw = dep.switch_node(name).pera();
    acc = copland::Evidence::extend(
        acc, sw.attest_challenge(
                 EvidenceDetail::kHardware | EvidenceDetail::kProgram, n,
                 /*hash_before_sign=*/false));
  }

  const PathVerifier verifier(dep.appraiser().appraiser().goldens(),
                              dep.keys());
  const PathVerdict verdict = verifier.verify(acc);
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.places(),
            (std::vector<std::string>{"s1", "s2", "s3"}));
  EXPECT_TRUE(PathVerifier::crosses_in_order(verdict, {"s1", "s3"}));
  EXPECT_FALSE(PathVerifier::crosses_in_order(verdict, {"s3", "s1"}));
  EXPECT_TRUE(PathVerifier::matches_expected_path(verdict,
                                                  {"s1", "s2", "s3"}));
  EXPECT_FALSE(
      PathVerifier::matches_expected_path(verdict, {"s1", "s2"}));
}

TEST(PathVerifier, RejectsSwappedProgramOnPath) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  (void)adversary::program_swap_attack(dep, "s2");

  copland::EvidencePtr acc = copland::Evidence::empty();
  for (const char* name : {"s1", "s2", "s3"}) {
    auto& sw = dep.switch_node(name).pera();
    acc = copland::Evidence::extend(
        acc, sw.attest_challenge(nac::mask_of(EvidenceDetail::kProgram),
                                 crypto::Nonce{crypto::sha256("n")}, false));
  }
  const PathVerifier verifier(dep.appraiser().appraiser().goldens(),
                              dep.keys());
  const PathVerdict verdict = verifier.verify(acc);
  EXPECT_FALSE(verdict.ok());
  EXPECT_TRUE(verdict.all_signatures_ok);      // signatures are real...
  EXPECT_FALSE(verdict.all_measurements_ok);   // ...but the program lies
}

TEST(PathVerifier, MissingHopFailsExpectedPath) {
  Deployment dep(netsim::topo::chain(3));
  dep.provision_goldens();
  copland::EvidencePtr acc = copland::Evidence::empty();
  for (const char* name : {"s1", "s3"}) {  // s2's evidence dropped
    auto& sw = dep.switch_node(name).pera();
    acc = copland::Evidence::extend(
        acc, sw.attest_challenge(nac::mask_of(EvidenceDetail::kProgram),
                                 crypto::Nonce{crypto::sha256("n")}, false));
  }
  const PathVerifier verifier(dep.appraiser().appraiser().goldens(),
                              dep.keys());
  const PathVerdict verdict = verifier.verify(acc);
  EXPECT_FALSE(
      PathVerifier::matches_expected_path(verdict, {"s1", "s2", "s3"}));
  // UC3: DDoS posture — traffic without full path evidence gets dropped.
  EXPECT_FALSE(PathVerifier::crosses_in_order(verdict, {"s1", "s2", "s3"}));
}

// --- guards over live packets (AP2 / UC4) ------------------------------------------

TEST(Guards, ScannerPolicyOnlyFiresOnMatchingTraffic) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  // AP2: a scanner policy guarded on traffic pattern P = dport 31337.
  auto& s1 = dep.switch_node("s1").pera();
  s1.set_guard("P", [](const dataplane::ParsedPacket& pkt) {
    return pkt.has("tcp") && pkt.get("tcp.dport") == 31337;
  });
  auto& s2 = dep.switch_node("s2").pera();
  s2.set_guard("P", [](const dataplane::ParsedPacket& pkt) {
    return pkt.has("tcp") && pkt.get("tcp.dport") == 31337;
  });

  const nac::CompiledPolicy pol = nac::compile(std::string(
      "*scanner<P> : forall hop : @hop [P |> attest(Packet) -> !] *=> "
      "@Appraiser [appraise -> store]"));

  dataplane::PacketSpec benign;
  benign.ip_dst = 0x0a000202;
  benign.dport = 443;
  const FlowReport quiet =
      dep.send_flow("client", "server", pol, 8, true, 0, benign);
  EXPECT_EQ(quiet.attestations, 0u);

  dataplane::PacketSpec c2 = benign;
  c2.dport = 31337;  // the malware C2 fingerprint of UC4
  const FlowReport noisy =
      dep.send_flow("client", "server", pol, 8, true, 0, c2);
  EXPECT_EQ(noisy.attestations, 16u);
}

}  // namespace
}  // namespace pera::core
