// Tests for the Copland evaluator (CVM), evidence terms, the testbed
// platform, appraisal, and the default function handlers.
#include <gtest/gtest.h>

#include "copland/analysis.h"
#include "copland/parser.h"
#include "copland/semantics.h"
#include "copland/testbed.h"

namespace pera::copland {
namespace {

struct Fixture : ::testing::Test {
  Fixture() : keys(111), platform(keys), nonces(222), evaluator(platform) {
    platform.install("us", "bmon", "bmon-v1.0 binary");
    platform.install("us", "exts", "benign extension set");
    platform.install("ks", "av", "antivirus kernel module");
    platform.install_default_funcs(nonces);
    keys.provision_hmac("ks");
    keys.provision_hmac("us");
    keys.provision_hmac("Switch");
    keys.provision_hmac("Appraiser");
  }

  crypto::KeyStore keys;
  TestbedPlatform platform;
  crypto::NonceRegistry nonces;
  Evaluator evaluator;
};

// --- evidence model ---------------------------------------------------------

TEST_F(Fixture, MeasurementEvidence) {
  const EvidencePtr e =
      evaluator.eval(parse_term("av us bmon"), "ks", Evidence::empty());
  ASSERT_EQ(e->kind, EvidenceKind::kMeasurement);
  EXPECT_EQ(e->asp, "av");
  EXPECT_EQ(e->place, "us");
  EXPECT_EQ(e->target, "bmon");
  EXPECT_EQ(e->value, crypto::sha256("bmon-v1.0 binary"));
}

TEST_F(Fixture, PipeAccumulatesEvidence) {
  const EvidencePtr e = evaluator.eval(
      parse_term("av us bmon -> bmon us exts"), "ks", Evidence::empty());
  ASSERT_EQ(e->kind, EvidenceKind::kSeq);
  EXPECT_EQ(e->left->kind, EvidenceKind::kMeasurement);
  EXPECT_EQ(e->right->kind, EvidenceKind::kMeasurement);
}

TEST_F(Fixture, SignWrapsEvidence) {
  const EvidencePtr e = evaluator.eval(parse_term("av us bmon -> !"), "ks",
                                       Evidence::empty());
  ASSERT_EQ(e->kind, EvidenceKind::kSignature);
  EXPECT_EQ(e->place, "ks");
  const crypto::Verifier* v = keys.verifier_for("ks");
  EXPECT_TRUE(v->verify(digest(e->child), e->sig));
}

TEST_F(Fixture, HashCollapsesEvidence) {
  const TermPtr meas = parse_term("av us bmon");
  const EvidencePtr full = evaluator.eval(meas, "ks", Evidence::empty());
  const EvidencePtr hashed =
      evaluator.eval(parse_term("av us bmon -> #"), "ks", Evidence::empty());
  ASSERT_EQ(hashed->kind, EvidenceKind::kHashed);
  EXPECT_EQ(hashed->hash_value, digest(full));
  EXPECT_LT(wire_size(hashed), wire_size(full) + 40);
}

TEST_F(Fixture, AtPlaceSwitchesPlace) {
  const EvidencePtr e =
      evaluator.eval(parse_term("@us [exts -> !]"), "bank", Evidence::empty());
  ASSERT_EQ(e->kind, EvidenceKind::kSignature);
  EXPECT_EQ(e->place, "us");
}

TEST_F(Fixture, BranchEvidencePassingFlags) {
  // With -<- neither arm receives the incoming nonce evidence.
  const EvidencePtr nonce_ev =
      Evidence::nonce_ev(crypto::Nonce{crypto::sha256("n")});
  const EvidencePtr minus = evaluator.eval(
      parse_term("av us bmon -<- bmon us exts"), "ks", nonce_ev);
  ASSERT_EQ(minus->kind, EvidenceKind::kSeq);
  EXPECT_EQ(minus->left->kind, EvidenceKind::kMeasurement);

  // With +<+ both arms extend the incoming evidence.
  const EvidencePtr plus = evaluator.eval(
      parse_term("av us bmon +<+ bmon us exts"), "ks", nonce_ev);
  ASSERT_EQ(plus->kind, EvidenceKind::kSeq);
  ASSERT_EQ(plus->left->kind, EvidenceKind::kSeq);
  EXPECT_EQ(plus->left->left->kind, EvidenceKind::kNonce);
}

TEST_F(Fixture, ParBranchProducesParEvidence) {
  const EvidencePtr e = evaluator.eval(
      parse_term("av us bmon -~- bmon us exts"), "ks", Evidence::empty());
  EXPECT_EQ(e->kind, EvidenceKind::kPar);
}

TEST_F(Fixture, NilPassesThrough) {
  const EvidencePtr in = Evidence::nonce_ev(crypto::Nonce{crypto::sha256("n")});
  EXPECT_TRUE(equal(evaluator.eval(parse_term("{}"), "p", in), in));
}

TEST_F(Fixture, GuardFailSkips) {
  platform.set_test("sw", "P", false);
  const EvidencePtr e = evaluator.eval(parse_term("@sw [P |> av us bmon]"),
                                       "bank", Evidence::empty());
  EXPECT_EQ(e->kind, EvidenceKind::kEmpty);
  EXPECT_EQ(evaluator.stats().guard_tests, 1u);
}

TEST_F(Fixture, GuardPassEvaluates) {
  platform.set_test("sw", "P", true);
  const EvidencePtr e = evaluator.eval(parse_term("@sw [P |> av us bmon]"),
                                       "bank", Evidence::empty());
  EXPECT_EQ(e->kind, EvidenceKind::kMeasurement);
}

TEST_F(Fixture, UnknownGuardDefaultsTrue) {
  const EvidencePtr e = evaluator.eval(parse_term("@sw [Q |> av us bmon]"),
                                       "bank", Evidence::empty());
  EXPECT_EQ(e->kind, EvidenceKind::kMeasurement);
}

TEST_F(Fixture, NetworkAwareTermsThrow) {
  EXPECT_THROW(
      (void)evaluator.eval(parse_term("a *=> b"), "p", Evidence::empty()),
      EvalError);
  EXPECT_THROW((void)evaluator.eval(parse_term("forall p : @p [a]"), "q",
                                    Evidence::empty()),
               EvalError);
}

TEST_F(Fixture, StatsCount) {
  (void)evaluator.eval(parse_term("@sw [av us bmon -> # -> !]"), "bank",
                       Evidence::empty());
  EXPECT_EQ(evaluator.stats().measurements, 1u);
  EXPECT_EQ(evaluator.stats().hashes, 1u);
  EXPECT_EQ(evaluator.stats().signatures, 1u);
  EXPECT_EQ(evaluator.stats().place_hops, 1u);
}

// --- default function handlers ------------------------------------------------

TEST_F(Fixture, AttestEvaluatesArgs) {
  const EvidencePtr e = evaluator.eval(
      parse_term("@us [attest(bmon, exts)]"), "bank", Evidence::empty());
  const auto ms = measurements_of(e);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0]->target, "bmon");
  EXPECT_EQ(ms[1]->target, "exts");
}

TEST_F(Fixture, AppraiseReportsVerdict) {
  const EvidencePtr e = evaluator.eval(
      parse_term("@us [attest(bmon)] -> @Appraiser [appraise]"), "bank",
      Evidence::empty());
  ASSERT_EQ(e->kind, EvidenceKind::kFuncOut);
  ASSERT_EQ(e->output.size(), 1u);
  EXPECT_EQ(e->output[0], 1);  // clean component appraises OK
}

TEST_F(Fixture, AppraiseFlagsCorruption) {
  platform.corrupt("us", "exts", "malicious extension");
  const EvidencePtr e = evaluator.eval(
      parse_term("@us [attest(exts)] -> @Appraiser [appraise]"), "bank",
      Evidence::empty());
  ASSERT_EQ(e->output.size(), 1u);
  EXPECT_EQ(e->output[0], 0);
}

TEST_F(Fixture, StoreAndRetrieveByNonce) {
  const crypto::Nonce n = nonces.issue();
  const EvidencePtr in = Evidence::nonce_ev(n);
  (void)evaluator.eval(parse_term("@us [attest(bmon)] -> @Appraiser [store]"),
                       "bank", in);
  const auto stored = platform.stored(n);
  ASSERT_TRUE(stored.has_value());
  const EvidencePtr got = evaluator.eval(
      parse_term("@Appraiser [retrieve(n)]"), "bank", Evidence::nonce_ev(n));
  EXPECT_TRUE(equal(got, *stored));
}

TEST_F(Fixture, RetrieveWithoutNonceThrows) {
  EXPECT_THROW((void)evaluator.eval(parse_term("@Appraiser [retrieve(n)]"),
                                    "bank", Evidence::empty()),
               EvalError);
}

TEST_F(Fixture, UnknownFuncThrows) {
  EXPECT_THROW((void)evaluator.eval(parse_term("frobnicate()"), "p",
                                    Evidence::empty()),
               EvalError);
}

// --- evidence encoding ----------------------------------------------------------

class EvidenceRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(EvidenceRoundTrip, EncodeDecodeIdentity) {
  crypto::KeyStore keys(1);
  TestbedPlatform platform(keys);
  crypto::NonceRegistry nonces(2);
  platform.install("us", "bmon", "x");
  platform.install("us", "exts", "y");
  platform.install_default_funcs(nonces);
  Evaluator ev(platform);
  const EvidencePtr e = ev.eval(parse_term(GetParam()), "bank",
                                Evidence::nonce_ev(crypto::Nonce{
                                    crypto::sha256("round trip nonce")}));
  const crypto::Bytes enc = encode(e);
  const EvidencePtr back = decode(crypto::BytesView{enc.data(), enc.size()});
  EXPECT_TRUE(equal(e, back));
  EXPECT_EQ(digest(e), digest(back));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EvidenceRoundTrip,
    ::testing::Values("{}", "@us [bmon]", "@us [bmon -> !]",
                      "@us [bmon -> # -> !]", "@us [bmon -<- exts]",
                      "@us [bmon +~+ exts]",
                      "@us [attest(bmon, exts) -> !] -> @us [appraise]",
                      "@us [store]", "@us [bmon] -> @us [exts -> !]"));

TEST(EvidenceCodec, DecodeRejectsTruncation) {
  const EvidencePtr e = Evidence::measurement("a", "p", "t",
                                              crypto::sha256("v"), "claim");
  crypto::Bytes enc = encode(e);
  enc.pop_back();
  EXPECT_THROW((void)decode(crypto::BytesView{enc.data(), enc.size()}),
               std::invalid_argument);
}

TEST(EvidenceCodec, DecodeRejectsTrailing) {
  crypto::Bytes enc = encode(Evidence::empty());
  enc.push_back(0);
  EXPECT_THROW((void)decode(crypto::BytesView{enc.data(), enc.size()}),
               std::invalid_argument);
}

TEST(EvidenceCodec, DecodeRejectsUnknownKind) {
  crypto::Bytes enc = {0x77};
  EXPECT_THROW((void)decode(crypto::BytesView{enc.data(), enc.size()}),
               std::invalid_argument);
}

TEST(EvidenceCodec, DigestIsStructural) {
  const EvidencePtr a = Evidence::seq(Evidence::empty(), Evidence::empty());
  const EvidencePtr b = Evidence::par(Evidence::empty(), Evidence::empty());
  EXPECT_NE(digest(a), digest(b));
}

TEST(EvidenceCodec, DescribeMentionsStructure) {
  const EvidencePtr e = Evidence::seq(
      Evidence::measurement("av", "us", "bmon", crypto::sha256("v"), "c"),
      Evidence::hashed("us", crypto::sha256("h")));
  const std::string d = describe(e);
  EXPECT_NE(d.find("seq:"), std::string::npos);
  EXPECT_NE(d.find("bmon"), std::string::npos);
  EXPECT_NE(d.find("hashed at us"), std::string::npos);
}

TEST(EvidenceCodec, ExtendFoldsEmpty) {
  const EvidencePtr m =
      Evidence::measurement("a", "p", "t", crypto::sha256("v"), "");
  EXPECT_TRUE(equal(Evidence::extend(Evidence::empty(), m), m));
  const EvidencePtr two = Evidence::extend(m, m);
  EXPECT_EQ(two->kind, EvidenceKind::kSeq);
}

// --- appraisal -------------------------------------------------------------------

TEST_F(Fixture, AppraisalOkForCleanEvidence) {
  const EvidencePtr e = evaluator.eval(
      parse_term("@us [attest(bmon, exts) -> !]"), "bank", Evidence::empty());
  const AppraisalResult res = appraise(e, platform.goldens(), keys);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.measurements_checked, 2u);
  EXPECT_EQ(res.signatures_checked, 1u);
}

TEST_F(Fixture, AppraisalFlagsBadMeasurement) {
  platform.corrupt("us", "bmon", "trojaned");
  const EvidencePtr e = evaluator.eval(parse_term("@us [attest(bmon)]"),
                                       "bank", Evidence::empty());
  const AppraisalResult res = appraise(e, platform.goldens(), keys);
  ASSERT_FALSE(res.ok);
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].kind, AppraisalFinding::Kind::kBadMeasurement);
}

TEST_F(Fixture, AppraisalFlagsUnknownComponent) {
  const EvidencePtr e = evaluator.eval(parse_term("@us [attest(ghost)]"),
                                       "bank", Evidence::empty());
  const AppraisalResult res = appraise(e, platform.goldens(), keys);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.findings[0].kind, AppraisalFinding::Kind::kUnknownComponent);
}

TEST_F(Fixture, AppraisalFlagsUnknownSigner) {
  // Sign at a place whose key the appraiser never provisioned — build a
  // separate keystore to simulate that.
  crypto::KeyStore other(999);
  TestbedPlatform rogue(other);
  rogue.install("us", "bmon", "bmon-v1.0 binary");
  crypto::NonceRegistry rogue_nonces(1000);
  rogue.install_default_funcs(rogue_nonces);
  Evaluator ev2(rogue);
  const EvidencePtr e = ev2.eval(parse_term("@us [attest(bmon) -> !]"),
                                 "bank", Evidence::empty());
  const AppraisalResult res = appraise(e, platform.goldens(), keys);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.findings[0].kind, AppraisalFinding::Kind::kUnknownSigner);
}

TEST_F(Fixture, AppraisalFlagsMissingNonce) {
  const EvidencePtr e = evaluator.eval(parse_term("@us [attest(bmon)]"),
                                       "bank", Evidence::empty());
  const crypto::Nonce expected{crypto::sha256("expected")};
  const AppraisalResult res =
      appraise(e, platform.goldens(), keys, expected);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.findings[0].kind, AppraisalFinding::Kind::kMissingNonce);
}

TEST_F(Fixture, AppraisalAcceptsPresentNonce) {
  const crypto::Nonce n{crypto::sha256("fresh")};
  const EvidencePtr e = evaluator.eval(parse_term("@us [attest(bmon)]"),
                                       "bank", Evidence::nonce_ev(n));
  EXPECT_TRUE(appraise(e, platform.goldens(), keys, n).ok);
}

TEST_F(Fixture, TamperedSignatureDetected) {
  const EvidencePtr e = evaluator.eval(
      parse_term("@us [attest(bmon) -> !]"), "bank", Evidence::empty());
  // Re-parent the signature onto altered child evidence.
  const EvidencePtr forged = Evidence::signature(
      e->place,
      Evidence::measurement("us", "us", "bmon", crypto::sha256("lie"),
                            "forged"),
      e->sig);
  const AppraisalResult res = appraise(forged, platform.goldens(), keys);
  ASSERT_FALSE(res.ok);
  bool saw_bad_sig = false;
  for (const auto& f : res.findings) {
    if (f.kind == AppraisalFinding::Kind::kBadSignature) saw_bad_sig = true;
  }
  EXPECT_TRUE(saw_bad_sig);
}

// --- testbed platform ------------------------------------------------------------

TEST_F(Fixture, CorruptAndRepair) {
  EXPECT_FALSE(platform.is_corrupt("us", "bmon"));
  platform.corrupt("us", "bmon", "evil");
  EXPECT_TRUE(platform.is_corrupt("us", "bmon"));
  platform.repair("us", "bmon");
  EXPECT_FALSE(platform.is_corrupt("us", "bmon"));
}

TEST_F(Fixture, CorruptUnknownComponentThrows) {
  EXPECT_THROW(platform.corrupt("us", "nope", "x"), std::invalid_argument);
  EXPECT_THROW(platform.repair("us", "nope"), std::invalid_argument);
}

TEST_F(Fixture, CorruptMeasurerLies) {
  platform.corrupt("us", "exts", "malware");
  platform.corrupt("us", "bmon", "corrupt monitor");
  // Corrupt bmon measures corrupt exts: reports the golden value (a lie).
  const MeasurementResult r = platform.measure("us", "bmon", "exts");
  EXPECT_EQ(r.value, *platform.golden("us", "exts"));
  // An honest measurer sees the truth.
  const MeasurementResult honest = platform.measure("us", "av", "exts");
  EXPECT_NE(honest.value, *platform.golden("us", "exts"));
}

}  // namespace
}  // namespace pera::copland
