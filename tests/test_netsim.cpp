// Tests for the discrete-event network simulator: event ordering,
// topologies and shortest paths, message delivery latency, transit hooks.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/stats.h"

namespace pera::netsim {
namespace {

// --- event queue ---------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(5, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(EventQueue, NestedScheduling) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    q.schedule_in(5, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 6);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(100, [&] { ++fired; });
  q.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, StepOne) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(1, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

// --- topology -------------------------------------------------------------------

TEST(Topology, AddAndFind) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kSwitch);
  t.add_link(a, b, 100);
  EXPECT_EQ(t.find("a"), a);
  EXPECT_EQ(t.require("b"), b);
  EXPECT_FALSE(t.find("c").has_value());
  EXPECT_THROW((void)t.require("c"), std::invalid_argument);
  EXPECT_THROW((void)t.add_node("a", NodeKind::kHost), std::invalid_argument);
  ASSERT_NE(t.link_between(a, b), nullptr);
  EXPECT_EQ(t.link_between(a, b)->latency, 100);
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99), std::invalid_argument);
}

TEST(Topology, ShortestPathPrefersLowLatency) {
  Topology t;
  t.add_node("a", NodeKind::kHost);
  t.add_node("b", NodeKind::kSwitch);
  t.add_node("c", NodeKind::kSwitch);
  t.add_node("d", NodeKind::kHost);
  t.add_link("a", "b", 10);
  t.add_link("b", "d", 10);
  t.add_link("a", "c", 5);
  t.add_link("c", "d", 100);
  const auto path = t.names(t.shortest_path("a", "d"));
  EXPECT_EQ(path, (std::vector<std::string>{"a", "b", "d"}));
}

TEST(Topology, UnreachableIsEmpty) {
  Topology t;
  t.add_node("a", NodeKind::kHost);
  t.add_node("b", NodeKind::kHost);
  EXPECT_TRUE(t.shortest_path("a", "b").empty());
}

TEST(Topology, ChainShape) {
  const Topology t = topo::chain(4);
  const auto path = t.names(t.shortest_path("client", "server"));
  EXPECT_EQ(path, (std::vector<std::string>{"client", "s1", "s2", "s3", "s4",
                                            "server"}));
  EXPECT_TRUE(t.find("Appraiser").has_value());
}

TEST(Topology, IspPathGoesThroughCore) {
  const Topology t = topo::isp();
  const auto path = t.names(t.shortest_path("client", "pm_phone"));
  ASSERT_GE(path.size(), 4u);
  EXPECT_EQ(path.front(), "client");
  EXPECT_EQ(path.back(), "pm_phone");
}

TEST(Topology, DatacenterHostsConnected) {
  const Topology t = topo::datacenter();
  const auto path = t.shortest_path("h1", "h8");
  EXPECT_FALSE(path.empty());
}

TEST(Link, TransmitTimeScalesWithSize) {
  LinkInfo l;
  l.gbps = 10.0;
  EXPECT_EQ(l.transmit_time(1250), 1000);  // 1250 B at 10 Gb/s = 1 us
  EXPECT_GT(l.transmit_time(10000), l.transmit_time(100));
}

// --- network delivery --------------------------------------------------------------

struct Recorder final : NodeBehavior {
  std::vector<Message> delivered;
  void on_deliver(Network&, NodeId, Message msg) override {
    delivered.push_back(std::move(msg));
  }
};

struct Delayer final : NodeBehavior {
  SimTime delay;
  int seen = 0;
  explicit Delayer(SimTime d) : delay(d) {}
  TransitResult on_transit(Network&, NodeId, Message&) override {
    ++seen;
    return {true, delay};
  }
};

struct Dropper final : NodeBehavior {
  TransitResult on_transit(Network&, NodeId, Message&) override {
    return TransitResult::dropped();
  }
};

Topology three_hop() {
  Topology t;
  t.add_node("a", NodeKind::kHost);
  t.add_node("m", NodeKind::kSwitch);
  t.add_node("b", NodeKind::kHost);
  t.add_link("a", "m", 1000, 8.0);  // 1 us
  t.add_link("m", "b", 1000, 8.0);
  return t;
}

TEST(Network, DeliversWithLatency) {
  Network net(three_hop());
  Recorder rec;
  net.attach("b", &rec);
  Message m;
  m.src = net.topology().require("a");
  m.dst = net.topology().require("b");
  m.type = "data";
  m.payload = crypto::Bytes(36, 0);  // wire size 100 B
  net.send(std::move(m));
  net.run();
  ASSERT_EQ(rec.delivered.size(), 1u);
  // Two links: 2 * (1000 ns + 100 B * 8 / 8e9 * 1e9 = 100 ns) = 2200 ns.
  EXPECT_EQ(net.now(), 2200);
  EXPECT_EQ(net.stats().hops_traversed, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST(Network, TransitHookSeesAndDelays) {
  Network net(three_hop());
  Recorder rec;
  Delayer delayer(500);
  net.attach("b", &rec);
  net.attach("m", &delayer);
  Message m;
  m.src = net.topology().require("a");
  m.dst = net.topology().require("b");
  m.type = "data";
  net.send(std::move(m));
  net.run();
  EXPECT_EQ(delayer.seen, 1);
  ASSERT_EQ(rec.delivered.size(), 1u);
  EXPECT_GT(net.now(), 2500);
}

TEST(Network, DropStopsForwarding) {
  Network net(three_hop());
  Recorder rec;
  Dropper dropper;
  net.attach("b", &rec);
  net.attach("m", &dropper);
  Message m;
  m.src = net.topology().require("a");
  m.dst = net.topology().require("b");
  m.type = "data";
  net.send(std::move(m));
  net.run();
  EXPECT_TRUE(rec.delivered.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(Network, SentAtStamped) {
  Network net(three_hop());
  Recorder rec;
  net.attach("b", &rec);
  Message m;
  m.src = net.topology().require("a");
  m.dst = net.topology().require("b");
  m.type = "data";
  net.send(std::move(m));
  net.run();
  ASSERT_EQ(rec.delivered.size(), 1u);
  EXPECT_EQ(rec.delivered[0].sent_at, 0);
}

TEST(Network, NoPathThrows) {
  Topology t;
  t.add_node("a", NodeKind::kHost);
  t.add_node("b", NodeKind::kHost);
  Network net(std::move(t));
  Message m;
  m.src = 0;
  m.dst = 1;
  EXPECT_THROW(net.send(std::move(m)), std::invalid_argument);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
  EXPECT_EQ(s.count(), 100u);
}

}  // namespace
}  // namespace pera::netsim
