// Tests for the NetKAT subset: predicate/policy semantics, Kleene star
// fixpoints, dup histories, topology encoding and reachability — the
// machinery behind Prim1 (path abstraction) and Prim3 (reachability).
#include <gtest/gtest.h>

#include "netkat/eval.h"
#include "netkat/topology.h"

namespace pera::netkat {
namespace {

Packet pkt(std::uint64_t sw, std::uint64_t pt, std::uint64_t dst = 0) {
  Packet p;
  p.set("sw", sw);
  p.set("pt", pt);
  p.set("dst", dst);
  return p;
}

// --- predicates --------------------------------------------------------------

TEST(Predicate, TestMatchesField) {
  EXPECT_TRUE(eval(Predicate::test("sw", 3), pkt(3, 1)));
  EXPECT_FALSE(eval(Predicate::test("sw", 4), pkt(3, 1)));
}

TEST(Predicate, MissingFieldReadsZero) {
  EXPECT_TRUE(eval(Predicate::test("vlan", 0), pkt(1, 1)));
}

TEST(Predicate, BooleanAlgebra) {
  const Packet p = pkt(1, 2);
  EXPECT_TRUE(eval(Predicate::tru(), p));
  EXPECT_FALSE(eval(Predicate::fls(), p));
  EXPECT_TRUE(eval(Predicate::conj(Predicate::test("sw", 1),
                                   Predicate::test("pt", 2)),
                   p));
  EXPECT_FALSE(eval(Predicate::conj(Predicate::test("sw", 1),
                                    Predicate::test("pt", 9)),
                    p));
  EXPECT_TRUE(eval(Predicate::disj(Predicate::test("sw", 9),
                                   Predicate::test("pt", 2)),
                   p));
  EXPECT_TRUE(eval(Predicate::neg(Predicate::test("sw", 9)), p));
}

TEST(Predicate, DeMorgan) {
  // !(a + b) == !a ; !b on a sample of packets.
  const auto a = Predicate::test("sw", 1);
  const auto b = Predicate::test("pt", 2);
  const auto lhs = Predicate::neg(Predicate::disj(a, b));
  const auto rhs =
      Predicate::conj(Predicate::neg(a), Predicate::neg(b));
  for (std::uint64_t sw = 0; sw < 3; ++sw) {
    for (std::uint64_t pt = 0; pt < 3; ++pt) {
      EXPECT_EQ(eval(lhs, pkt(sw, pt)), eval(rhs, pkt(sw, pt)));
    }
  }
}

// --- policies -----------------------------------------------------------------

TEST(Policy, FilterKeepsMatching) {
  const PacketSet in = {pkt(1, 1), pkt(2, 1)};
  const PacketSet out = eval(Policy::filter(Predicate::test("sw", 1)), in);
  EXPECT_EQ(out, PacketSet{pkt(1, 1)});
}

TEST(Policy, ModSetsField) {
  const PacketSet out = eval(Policy::mod("pt", 9), pkt(1, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.begin()->get("pt"), 9u);
}

TEST(Policy, UnionMergesOutcomes) {
  const PolicyPtr p =
      Policy::unite(Policy::mod("pt", 1), Policy::mod("pt", 2));
  const PacketSet out = eval(p, pkt(1, 0));
  EXPECT_EQ(out.size(), 2u);
}

TEST(Policy, SeqComposes) {
  const PolicyPtr p = Policy::seq(Policy::mod("pt", 1), Policy::mod("sw", 5));
  const PacketSet out = eval(p, pkt(1, 0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.begin()->get("pt"), 1u);
  EXPECT_EQ(out.begin()->get("sw"), 5u);
}

TEST(Policy, DropAnnihilates) {
  EXPECT_TRUE(eval(Policy::drop(), pkt(1, 1)).empty());
  EXPECT_TRUE(eval(Policy::seq(Policy::mod("pt", 1), Policy::drop()),
                   pkt(1, 1))
                  .empty());
}

TEST(Policy, IdPreserves) {
  EXPECT_EQ(eval(Policy::id(), pkt(1, 1)), PacketSet{pkt(1, 1)});
}

TEST(Policy, StarReachesFixpoint) {
  // p = sw<4 ? sw:=sw+1 modeled as union of per-value increments.
  std::vector<PolicyPtr> steps;
  for (std::uint64_t s = 0; s < 4; ++s) {
    steps.push_back(Policy::seq(Policy::filter(Predicate::test("sw", s)),
                                Policy::mod("sw", s + 1)));
  }
  const PolicyPtr star = Policy::star(union_all(steps));
  const PacketSet out = eval(star, pkt(0, 0));
  EXPECT_EQ(out.size(), 5u);  // sw = 0..4
}

TEST(Policy, StarZeroIterationsIncluded) {
  const PacketSet out = eval(Policy::star(Policy::drop()), pkt(3, 3));
  EXPECT_EQ(out, PacketSet{pkt(3, 3)});
}

TEST(Policy, KleeneAlgebraLaws) {
  // p* == id + p;p* on a finite example.
  const PolicyPtr p = Policy::seq(Policy::filter(Predicate::test("sw", 0)),
                                  Policy::mod("sw", 1));
  const PolicyPtr star = Policy::star(p);
  const PolicyPtr unfolded =
      Policy::unite(Policy::id(), Policy::seq(p, Policy::star(p)));
  PacketSet universe;
  for (std::uint64_t s = 0; s < 3; ++s) universe.insert(pkt(s, 0));
  EXPECT_TRUE(equivalent_on(star, unfolded, universe));
}

TEST(Policy, UnionCommutes) {
  const PolicyPtr a = Policy::mod("pt", 1);
  const PolicyPtr b = Policy::mod("pt", 2);
  PacketSet universe = {pkt(0, 0), pkt(1, 5), pkt(2, 2)};
  EXPECT_TRUE(equivalent_on(Policy::unite(a, b), Policy::unite(b, a),
                            universe));
}

// --- histories / dup ------------------------------------------------------------

TEST(Hist, DupRecordsCurrentPacket) {
  const HistorySet out = eval_hist(
      Policy::seq(Policy::dup(), Policy::mod("sw", 2)), pkt(1, 0));
  ASSERT_EQ(out.size(), 1u);
  const History& h = *out.begin();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].get("sw"), 2u);  // current
  EXPECT_EQ(h[1].get("sw"), 1u);  // recorded
}

TEST(Hist, StarWithDupThrowsOnLoop) {
  // sw:=1 under star with dup: histories grow forever.
  const PolicyPtr loop =
      Policy::star(Policy::seq(Policy::dup(), Policy::mod("sw", 1)));
  EXPECT_THROW((void)eval_hist(loop, pkt(1, 0), 16), std::runtime_error);
}

TEST(Hist, SwitchPathsExtraction) {
  // Chain 1 -> 2 -> 3 with dup before each hop.
  std::vector<PolicyPtr> hops;
  for (std::uint64_t s = 1; s <= 2; ++s) {
    hops.push_back(Policy::seq(Policy::filter(Predicate::test("sw", s)),
                               Policy::mod("sw", s + 1)));
  }
  const PolicyPtr net = instrumented_network(
      Policy::id(), union_all(hops));
  const HistorySet out = eval_hist(net, pkt(1, 0));
  const auto paths = switch_paths(out);
  EXPECT_TRUE(paths.contains(std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(paths.contains(std::vector<std::uint64_t>{1, 2, 3}));
}

// --- topology encoding ------------------------------------------------------------

TEST(TopologyPolicy, EncodesLinks) {
  const PolicyPtr t = topology_policy({Link{1, 2, 2, 1}});
  const PacketSet out = eval(t, pkt(1, 2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.begin()->get("sw"), 2u);
  EXPECT_EQ(out.begin()->get("pt"), 1u);
  EXPECT_TRUE(eval(t, pkt(1, 9)).empty());  // wrong port: no link
}

TEST(TopologyPolicy, EmptyIsDrop) {
  EXPECT_TRUE(eval(topology_policy({}), pkt(1, 1)).empty());
}

TEST(TopologyPolicy, ForwardRule) {
  const PolicyPtr r = forward_rule(3, Predicate::test("dst", 7), 2);
  const PacketSet hit = eval(r, pkt(3, 1, 7));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit.begin()->get("pt"), 2u);
  EXPECT_TRUE(eval(r, pkt(3, 1, 8)).empty());
  EXPECT_TRUE(eval(r, pkt(4, 1, 7)).empty());
}

TEST(Reachability, LinearChain) {
  // Program: at sw s forward dst=9 out port 1. Topology: (s,1)->(s+1,0).
  std::vector<PolicyPtr> rules;
  std::vector<Link> links;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    rules.push_back(forward_rule(s, Predicate::test("dst", 9), 1));
    links.push_back(Link{s, 1, s + 1, 0});
  }
  const PolicyPtr program = union_all(rules);
  const PolicyPtr topo = topology_policy(links);
  // Prim3: can a dst=9 packet injected at sw1 reach sw4?
  EXPECT_TRUE(reachable(program, topo, pkt(1, 0, 9),
                        Predicate::test("sw", 4)));
  // dst=5 matches no rule -> never leaves sw1.
  EXPECT_FALSE(reachable(program, topo, pkt(1, 0, 5),
                         Predicate::test("sw", 4)));
}

TEST(Reachability, FirewallBlocksGoal) {
  // sw2 drops dst=9 (no rule); with the rule removed, sw3 is unreachable.
  std::vector<PolicyPtr> rules = {
      forward_rule(1, Predicate::test("dst", 9), 1)};
  std::vector<Link> links = {Link{1, 1, 2, 0}, Link{2, 1, 3, 0}};
  EXPECT_FALSE(reachable(union_all(rules), topology_policy(links),
                         pkt(1, 0, 9), Predicate::test("sw", 3)));
}

TEST(PolicyPrinting, Renders) {
  const PolicyPtr p = Policy::seq(
      Policy::filter(Predicate::test("sw", 1)), Policy::mod("pt", 2));
  const std::string s = to_string(p);
  EXPECT_NE(s.find("sw=1"), std::string::npos);
  EXPECT_NE(s.find("pt:=2"), std::string::npos);
  EXPECT_GT(size(p), 3u);
}

}  // namespace
}  // namespace pera::netkat
