// Unit tests for the crypto substrate: SHA-256 / HMAC known-answer tests,
// DRBG determinism, WOTS and XMSS signature properties, Merkle proofs,
// signer/verifier interfaces, key store and nonce registry.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/merkle.h"
#include "crypto/nonce.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "crypto/wots.h"

namespace pera::crypto {
namespace {

// --- bytes -------------------------------------------------------------------

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(BytesView{data.data(), data.size()}), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, FromHexRejectsNonHex) {
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, U32RoundTrip) {
  Bytes b;
  append_u32(b, 0xdeadbeef);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(read_u32(BytesView{b.data(), b.size()}, 0), 0xdeadbeefu);
}

TEST(Bytes, U64RoundTrip) {
  Bytes b;
  append_u64(b, 0x0123456789abcdefULL);
  EXPECT_EQ(read_u64(BytesView{b.data(), b.size()}, 0), 0x0123456789abcdefULL);
}

TEST(Bytes, ReadPastEndThrows) {
  Bytes b = {1, 2, 3};
  EXPECT_THROW((void)read_u32(BytesView{b.data(), b.size()}, 0),
               std::out_of_range);
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(BytesView{a.data(), a.size()},
                       BytesView{b.data(), b.size()}));
  EXPECT_FALSE(ct_equal(BytesView{a.data(), a.size()},
                        BytesView{c.data(), c.size()}));
  EXPECT_FALSE(ct_equal(BytesView{a.data(), 2}, BytesView{b.data(), 3}));
}

// --- SHA-256 (FIPS 180-4 known answers) ---------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and often.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 h;
    for (char c : msg) h.update(std::string(1, c));
    EXPECT_EQ(h.finish(), sha256(msg)) << "len " << len;
  }
}

TEST(Sha256, PairCombinerDiffersFromConcat) {
  const Digest a = sha256("a");
  const Digest b = sha256("b");
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

TEST(Sha256, DigestIntoMatchesStreaming) {
  // The one-shot fast path must be byte-identical to the streaming
  // context at every padding boundary, including the empty input.
  for (std::size_t len :
       {0u, 1u, 31u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    Bytes data(len);
    for (std::size_t i = 0; i < len; ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    const BytesView view{data.data(), data.size()};
    Digest fast;
    Sha256::digest_into(view, fast);
    EXPECT_EQ(fast, sha256(view)) << "len " << len;
  }
}

TEST(Sha256, PairCombinerMatchesStreamingPath) {
  const Digest a = sha256("left");
  const Digest b = sha256("right");
  Sha256 h;
  h.update(a).update(b);
  EXPECT_EQ(sha256_pair(a, b), h.finish());
}

// --- HMAC (RFC 4231 test cases) -----------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest mac =
      hmac_sha256(BytesView{key.data(), key.size()}, as_bytes("Hi There"));
  EXPECT_EQ(mac.hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Digest mac = hmac_sha256(
      as_bytes("Jefe"), as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(mac.hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const Digest mac = hmac_sha256(BytesView{key.data(), key.size()},
                                 BytesView{data.data(), data.size()});
  EXPECT_EQ(mac.hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Digest mac = hmac_sha256(
      BytesView{key.data(), key.size()},
      as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(mac.hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, IncrementalMatchesOneShot) {
  Hmac h(as_bytes("key"));
  h.update(std::string_view{"part1"});
  h.update(std::string_view{"part2"});
  EXPECT_EQ(h.finish(), hmac_sha256(as_bytes("key"), as_bytes("part1part2")));
}

TEST(Hmac, PrecomputedScheduleMatchesReferencePath) {
  // Micro-assert for the HmacSigner key-schedule precompute: HmacKey::mac
  // must be byte-identical to a from-scratch RFC 2104 evaluation (the old
  // per-sign path: pad the key, then two full Sha256 passes).
  for (const std::string& key :
       {std::string("k"), std::string(64, 'K'), std::string(131, 'Q')}) {
    const BytesView key_view = as_bytes(key);
    std::array<std::uint8_t, 64> block{};
    if (key.size() > 64) {
      const Digest hashed = sha256(key_view);
      std::copy(hashed.v.begin(), hashed.v.end(), block.begin());
    } else {
      std::copy(key_view.begin(), key_view.end(), block.begin());
    }
    std::array<std::uint8_t, 64> ipad{};
    std::array<std::uint8_t, 64> opad{};
    for (std::size_t i = 0; i < 64; ++i) {
      ipad[i] = block[i] ^ 0x36;
      opad[i] = block[i] ^ 0x5c;
    }
    const std::string msg = "the quick brown packet";
    Sha256 inner;
    inner.update(BytesView{ipad.data(), ipad.size()}).update(msg);
    Sha256 outer;
    outer.update(BytesView{opad.data(), opad.size()}).update(inner.finish());
    const Digest reference = outer.finish();

    const HmacKey schedule(key_view);
    EXPECT_EQ(schedule.mac(as_bytes(msg)), reference) << "key len "
                                                      << key.size();
    // Reusing the same schedule must not perturb later MACs.
    EXPECT_EQ(schedule.mac(as_bytes(msg)), reference);
  }
}

TEST(Hmac, SignerReusesScheduleAcrossSignatures) {
  const Digest device_key = sha256("device");
  HmacSigner signer(device_key);
  const Digest m1 = sha256("m1");
  const Digest m2 = sha256("m2");
  const Signature s1 = signer.sign(m1);
  const Signature s2 = signer.sign(m2);
  const Signature s1_again = signer.sign(m1);
  EXPECT_EQ(s1.payload, s1_again.payload);
  EXPECT_NE(s1.payload, s2.payload);
  // And each signature equals the one-shot HMAC of its message.
  EXPECT_EQ(s1.payload,
            hmac_sha256(BytesView{device_key.v.data(), device_key.v.size()},
                        BytesView{m1.v.data(), m1.v.size()})
                .to_bytes());
}

TEST(Hmac, DeriveKeysAreDistinctAndStable) {
  const auto a = derive_keys(as_bytes("root"), "label", 8);
  const auto b = derive_keys(as_bytes("root"), "label", 8);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
  EXPECT_NE(derive_keys(as_bytes("root"), "other", 1)[0], a[0]);
}

// --- DRBG --------------------------------------------------------------------

TEST(Drbg, DeterministicAcrossInstances) {
  Drbg a(12345);
  Drbg b(12345);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(1);
  Drbg b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, UniformBoundRespected) {
  Drbg d(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(d.uniform(17), 17u);
  }
  EXPECT_THROW((void)d.uniform(0), std::invalid_argument);
}

TEST(Drbg, Uniform01InRange) {
  Drbg d(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Drbg, ChanceExtremes) {
  Drbg d(11);
  EXPECT_FALSE(d.chance(0.0));
  EXPECT_TRUE(d.chance(1.0));
}

TEST(Drbg, ChanceRoughlyCalibrated) {
  Drbg d(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (d.chance(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

TEST(Drbg, ForkIndependentStreams) {
  Drbg parent(42);
  Drbg c1 = parent.fork("x");
  Drbg c2 = parent.fork("x");  // same label, later fork -> different stream
  Drbg c3 = parent.fork("y");
  EXPECT_NE(c1.bytes(32), c2.bytes(32));
  EXPECT_NE(c1.bytes(32), c3.bytes(32));
}

TEST(Drbg, ForkDeterministicAcrossRuns) {
  Drbg p1(42);
  Drbg p2(42);
  EXPECT_EQ(p1.fork("x").bytes(16), p2.fork("x").bytes(16));
}

// --- WOTS --------------------------------------------------------------------

TEST(Wots, SignVerifyRoundTrip) {
  const Digest seed = sha256("wots seed");
  const auto sk = wots::keygen_secret(seed, 0);
  const auto pk = wots::derive_public(sk);
  const Digest msg = sha256("message");
  const auto sig = wots::sign(sk, msg);
  EXPECT_TRUE(wots::verify(pk, msg, sig));
}

TEST(Wots, WrongMessageFails) {
  const Digest seed = sha256("wots seed");
  const auto sk = wots::keygen_secret(seed, 0);
  const auto pk = wots::derive_public(sk);
  const auto sig = wots::sign(sk, sha256("message"));
  EXPECT_FALSE(wots::verify(pk, sha256("other message"), sig));
}

TEST(Wots, TamperedSignatureFails) {
  const Digest seed = sha256("wots seed");
  const auto sk = wots::keygen_secret(seed, 1);
  const auto pk = wots::derive_public(sk);
  const Digest msg = sha256("message");
  auto sig = wots::sign(sk, msg);
  sig.chains[10].v[0] ^= 0x01;
  EXPECT_FALSE(wots::verify(pk, msg, sig));
}

TEST(Wots, DifferentAddressesYieldDifferentKeys) {
  const Digest seed = sha256("seed");
  const auto pk0 = wots::derive_public(wots::keygen_secret(seed, 0));
  const auto pk1 = wots::derive_public(wots::keygen_secret(seed, 1));
  EXPECT_NE(pk0.compressed, pk1.compressed);
}

TEST(Wots, ChecksumChunksBalanceMessageChunks) {
  // Property: sum(msg chunks) + sum over checksum base-w digits weighted is
  // invariant: csum = sum(w-1 - c_i). Verify recomputation.
  const Digest msg = sha256("chunk property");
  const auto chunks = wots::chunk_message(msg);
  std::uint32_t csum = 0;
  for (std::size_t i = 0; i < wots::kLen1; ++i) {
    EXPECT_LT(chunks[i], wots::kW);
    csum += static_cast<std::uint32_t>(wots::kW - 1 - chunks[i]);
  }
  std::uint32_t encoded = 0;
  for (std::size_t i = 0; i < wots::kLen2; ++i) {
    encoded |= static_cast<std::uint32_t>(chunks[wots::kLen1 + i]) << (4 * i);
  }
  EXPECT_EQ(encoded, csum);
}

TEST(Wots, SignatureSerializeRoundTrip) {
  const auto sk = wots::keygen_secret(sha256("s"), 3);
  const auto sig = wots::sign(sk, sha256("m"));
  const Bytes ser = sig.serialize();
  EXPECT_EQ(ser.size(), wots::Signature::kWireSize);
  const auto back = wots::Signature::deserialize(BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back.chains, sig.chains);
  EXPECT_THROW(
      (void)wots::Signature::deserialize(BytesView{ser.data(), ser.size() - 1}),
      std::invalid_argument);
}

// Parameterized: signing many random messages always verifies.
class WotsMany : public ::testing::TestWithParam<int> {};

TEST_P(WotsMany, RandomMessagesVerify) {
  Drbg rng(static_cast<std::uint64_t>(GetParam()));
  const Digest seed = rng.digest();
  const auto sk = wots::keygen_secret(seed, 7);
  const auto pk = wots::derive_public(sk);
  const Digest msg = rng.digest();
  const auto sig = wots::sign(sk, msg);
  EXPECT_TRUE(wots::verify(pk, msg, sig));
  EXPECT_FALSE(wots::verify(pk, rng.digest(), sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WotsMany, ::testing::Range(0, 16));

// --- Merkle ------------------------------------------------------------------

class MerkleSizes : public ::testing::TestWithParam<int> {};

TEST_P(MerkleSizes, AllProofsVerify) {
  const int n = GetParam();
  std::vector<Digest> leaves;
  for (int i = 0; i < n; ++i) leaves.push_back(sha256("leaf" + std::to_string(i)));
  const MerkleTree tree(leaves);
  for (int i = 0; i < n; ++i) {
    const auto proof = tree.prove(static_cast<std::uint64_t>(i));
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[static_cast<std::size_t>(i)], proof))
        << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 64, 100));

TEST(Merkle, WrongLeafFails) {
  std::vector<Digest> leaves = {sha256("a"), sha256("b"), sha256("c")};
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(1);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), sha256("x"), proof));
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  const MerkleTree tree({});
  EXPECT_TRUE(tree.root().is_zero());
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Digest> leaves = {sha256("a"), sha256("b"), sha256("c"),
                                sha256("d")};
  const MerkleTree t1(leaves);
  leaves[2] = sha256("C");
  const MerkleTree t2(leaves);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(Merkle, ProveOutOfRangeThrows) {
  const MerkleTree tree({sha256("a")});
  EXPECT_THROW((void)tree.prove(1), std::out_of_range);
}

TEST(Merkle, ProofSerializeRoundTrip) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 9; ++i) leaves.push_back(sha256(std::to_string(i)));
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(5);
  const Bytes ser = proof.serialize();
  const auto back = MerkleProof::deserialize(BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back.leaf_index, proof.leaf_index);
  EXPECT_EQ(back.siblings, proof.siblings);
}

// --- XMSS --------------------------------------------------------------------

TEST(Xmss, SignVerifyMultiple) {
  XmssKeyPair kp(sha256("xmss seed"), 3);  // 8 signatures
  EXPECT_EQ(kp.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    const Digest msg = sha256("msg" + std::to_string(i));
    const auto sig = kp.sign(msg);
    EXPECT_TRUE(XmssKeyPair::verify(kp.public_root(), msg, sig)) << i;
  }
  EXPECT_TRUE(kp.exhausted());
}

TEST(Xmss, ExhaustionThrows) {
  XmssKeyPair kp(sha256("s"), 1);
  (void)kp.sign(sha256("a"));
  (void)kp.sign(sha256("b"));
  EXPECT_THROW((void)kp.sign(sha256("c")), std::runtime_error);
}

TEST(Xmss, WrongRootFails) {
  XmssKeyPair kp(sha256("s1"), 2);
  XmssKeyPair other(sha256("s2"), 2);
  const Digest msg = sha256("m");
  const auto sig = kp.sign(msg);
  EXPECT_FALSE(XmssKeyPair::verify(other.public_root(), msg, sig));
}

TEST(Xmss, SignatureSerializeRoundTrip) {
  XmssKeyPair kp(sha256("s"), 2);
  const Digest msg = sha256("m");
  const auto sig = kp.sign(msg);
  const Bytes ser = sig.serialize();
  const auto back = XmssSignature::deserialize(BytesView{ser.data(), ser.size()});
  EXPECT_TRUE(XmssKeyPair::verify(kp.public_root(), msg, back));
}

TEST(Xmss, HeightTooLargeThrows) {
  EXPECT_THROW(XmssKeyPair(sha256("s"), 21), std::invalid_argument);
}

// --- Signer / Verifier ---------------------------------------------------------

TEST(Signer, HmacRoundTrip) {
  const Digest key = sha256("device key");
  HmacSigner signer(key);
  HmacVerifier verifier(key);
  const Digest msg = sha256("claim");
  const Signature sig = signer.sign(msg);
  EXPECT_EQ(sig.scheme, SignatureScheme::kHmacDeviceKey);
  EXPECT_EQ(signer.key_id(), verifier.key_id());
  EXPECT_TRUE(verifier.verify(msg, sig));
  EXPECT_FALSE(verifier.verify(sha256("other"), sig));
}

TEST(Signer, HmacWrongKeyFails) {
  HmacSigner signer(sha256("k1"));
  HmacVerifier verifier(sha256("k2"));
  const Signature sig = signer.sign(sha256("m"));
  EXPECT_FALSE(verifier.verify(sha256("m"), sig));
}

TEST(Signer, XmssRoundTrip) {
  XmssSigner signer(sha256("seed"), 3);
  XmssVerifier verifier(signer.public_root());
  const Digest msg = sha256("claim");
  const Signature sig = signer.sign(msg);
  EXPECT_EQ(sig.scheme, SignatureScheme::kXmss);
  EXPECT_TRUE(verifier.verify(msg, sig));
  EXPECT_FALSE(verifier.verify(sha256("x"), sig));
  EXPECT_EQ(signer.signatures_remaining(), 7u);
}

TEST(Signer, XmssGarbagePayloadRejectedGracefully) {
  XmssSigner signer(sha256("seed"), 2);
  XmssVerifier verifier(signer.public_root());
  Signature sig = signer.sign(sha256("m"));
  sig.payload.resize(3);  // mangled
  EXPECT_FALSE(verifier.verify(sha256("m"), sig));
}

TEST(Signer, SignatureSerializeRoundTrip) {
  HmacSigner signer(sha256("k"));
  const Signature sig = signer.sign(sha256("m"));
  const Bytes ser = sig.serialize();
  EXPECT_EQ(ser.size(), sig.wire_size());
  const Signature back = Signature::deserialize(BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back, sig);
}

TEST(Signer, DeserializeRejectsBadScheme) {
  HmacSigner signer(sha256("k"));
  Bytes ser = signer.sign(sha256("m")).serialize();
  ser[0] = 99;
  EXPECT_THROW((void)Signature::deserialize(BytesView{ser.data(), ser.size()}),
               std::invalid_argument);
}

// --- KeyStore ------------------------------------------------------------------

TEST(KeyStore, ProvisionAndLookup) {
  KeyStore ks(77);
  Signer& s = ks.provision_hmac("switch1");
  EXPECT_TRUE(ks.has("switch1"));
  EXPECT_EQ(ks.signer_for("switch1"), &s);
  const Verifier* v = ks.verifier_for("switch1");
  ASSERT_NE(v, nullptr);
  const Signature sig = s.sign(sha256("m"));
  EXPECT_TRUE(v->verify(sha256("m"), sig));
  EXPECT_EQ(ks.verifier_by_key_id(sig.key_id), v);
  EXPECT_EQ(ks.principal_of(sig.key_id), "switch1");
}

TEST(KeyStore, UnknownPrincipalIsNull) {
  KeyStore ks(1);
  EXPECT_EQ(ks.signer_for("nobody"), nullptr);
  EXPECT_EQ(ks.verifier_for("nobody"), nullptr);
  EXPECT_EQ(ks.verifier_by_key_id(sha256("x")), nullptr);
}

TEST(KeyStore, XmssProvisioning) {
  KeyStore ks(5);
  Signer& s = ks.provision_xmss("sw", 3);
  const Signature sig = s.sign(sha256("m"));
  EXPECT_TRUE(ks.verifier_for("sw")->verify(sha256("m"), sig));
}

TEST(KeyStore, ReprovisionReplacesKeys) {
  KeyStore ks(9);
  Signer& s1 = ks.provision_hmac("sw");
  const Digest old_id = s1.key_id();
  const Signature old_sig = s1.sign(sha256("m"));
  Signer& s2 = ks.provision_hmac("sw");
  EXPECT_NE(s2.key_id(), old_id);
  EXPECT_EQ(ks.verifier_by_key_id(old_id), nullptr);
  EXPECT_FALSE(ks.verifier_for("sw")->verify(sha256("m"), old_sig));
}

TEST(KeyStore, DeterministicForSeed) {
  KeyStore a(123);
  KeyStore b(123);
  EXPECT_EQ(a.provision_hmac("x").key_id(), b.provision_hmac("x").key_id());
}

// --- NonceRegistry ----------------------------------------------------------------

TEST(NonceRegistry, IssueIsFreshAndTracked) {
  NonceRegistry reg(55);
  const Nonce a = reg.issue();
  const Nonce b = reg.issue();
  EXPECT_NE(a, b);
  EXPECT_TRUE(reg.issued(a));
  EXPECT_TRUE(reg.issued(b));
  EXPECT_FALSE(reg.issued(Nonce{sha256("fake")}));
  EXPECT_EQ(reg.issued_count(), 2u);
}

TEST(NonceRegistry, ObserveDetectsReplay) {
  NonceRegistry reg(56);
  const Nonce n = reg.issue();
  EXPECT_TRUE(reg.observe(n));
  EXPECT_FALSE(reg.observe(n));  // replay
  EXPECT_EQ(reg.observed_count(), 1u);
}

}  // namespace
}  // namespace pera::crypto
