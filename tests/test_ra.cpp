// Tests for the RA roles (Fig. 1), certificates, and evidence redaction.
#include <gtest/gtest.h>

#include "ra/redaction.h"
#include "ra/roles.h"

namespace pera::ra {
namespace {

struct Bed {
  Bed()
      : keys(71),
        attester("switch1", keys.provision_hmac("switch1")),
        appraiser("Appraiser", keys),
        rp("RP1", 72) {
    keys.provision_hmac("Appraiser");
    program_value = crypto::sha256("program contents v5");
    attester.add_claim_source(
        {"Program", [this] { return program_value; }, "program digest"});
    attester.add_claim_source(
        {"Hardware", [] { return crypto::sha256("PERA-1000/sn42"); },
         "hardware id"});
    appraiser.set_golden("switch1", "Program", program_value);
    appraiser.set_golden("switch1", "Hardware",
                         crypto::sha256("PERA-1000/sn42"));
  }

  crypto::KeyStore keys;
  Attester attester;
  Appraiser appraiser;
  RelyingParty rp;
  crypto::Digest program_value;
};

// --- the Fig. 1 loop -----------------------------------------------------------

TEST(Roles, FullLoopAccepted) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const copland::EvidencePtr evidence = bed.attester.attest({}, n);
  const AttestationResult res = bed.appraiser.appraise(evidence, n);
  EXPECT_TRUE(res.ok);
  ASSERT_TRUE(res.certificate.has_value());
  EXPECT_TRUE(bed.rp.accept(*res.certificate,
                            *bed.keys.verifier_for("Appraiser")));
  EXPECT_EQ(bed.rp.accepted_count(), 1u);
}

TEST(Roles, TamperedProgramRejected) {
  Bed bed;
  bed.program_value = crypto::sha256("rogue program");  // live value drifts
  const crypto::Nonce n = bed.rp.challenge();
  const copland::EvidencePtr evidence = bed.attester.attest({}, n);
  const AttestationResult res = bed.appraiser.appraise(evidence, n);
  EXPECT_FALSE(res.ok);
  ASSERT_TRUE(res.certificate.has_value());
  EXPECT_FALSE(res.certificate->verdict);
  EXPECT_FALSE(bed.rp.accept(*res.certificate,
                             *bed.keys.verifier_for("Appraiser")));
}

TEST(Roles, SelectiveTargets) {
  Bed bed;
  const copland::EvidencePtr e = bed.attester.attest({"Hardware"});
  const auto ms = copland::measurements_of(e);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0]->target, "Hardware");
  EXPECT_THROW((void)bed.attester.attest({"Nonexistent"}),
               std::invalid_argument);
}

TEST(Roles, HashBeforeSignShrinksEvidence) {
  Bed bed;
  const copland::EvidencePtr full = bed.attester.attest({}, std::nullopt, false);
  const copland::EvidencePtr hashed = bed.attester.attest({}, std::nullopt, true);
  EXPECT_LT(copland::wire_size(hashed), copland::wire_size(full));
  ASSERT_EQ(hashed->kind, copland::EvidenceKind::kSignature);
  EXPECT_EQ(hashed->child->kind, copland::EvidenceKind::kHashed);
}

TEST(Roles, NonceReplayRejected) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const copland::EvidencePtr evidence = bed.attester.attest({}, n);
  EXPECT_TRUE(bed.appraiser.appraise(evidence, n).ok);
  // Same nonce appraised again: stale.
  const AttestationResult replay = bed.appraiser.appraise(evidence, n);
  EXPECT_FALSE(replay.ok);
  bool stale = false;
  for (const auto& f : replay.detail.findings) {
    if (f.kind == copland::AppraisalFinding::Kind::kStaleNonce) stale = true;
  }
  EXPECT_TRUE(stale);
}

TEST(Roles, MissingNonceRejected) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const copland::EvidencePtr evidence = bed.attester.attest({});  // no nonce
  EXPECT_FALSE(bed.appraiser.appraise(evidence, n).ok);
}

TEST(Roles, CertificateStoreRetrieve) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const auto res = bed.appraiser.appraise(bed.attester.attest({}, n), n);
  const auto cert = bed.appraiser.retrieve(n);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->evidence_digest, res.certificate->evidence_digest);
  EXPECT_FALSE(bed.appraiser.retrieve(crypto::Nonce{crypto::sha256("x")})
                   .has_value());
}

TEST(Roles, RpRejectsForeignNonce) {
  Bed bed;
  // Certificate bound to a nonce this RP never issued.
  const crypto::Nonce foreign{crypto::sha256("foreign")};
  const auto res =
      bed.appraiser.appraise(bed.attester.attest({}, foreign), foreign);
  ASSERT_TRUE(res.certificate.has_value());
  EXPECT_FALSE(bed.rp.accept(*res.certificate,
                             *bed.keys.verifier_for("Appraiser")));
}

TEST(Roles, RpRejectsReusedCertificate) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const auto res = bed.appraiser.appraise(bed.attester.attest({}, n), n);
  const crypto::Verifier& v = *bed.keys.verifier_for("Appraiser");
  EXPECT_TRUE(bed.rp.accept(*res.certificate, v));
  EXPECT_FALSE(bed.rp.accept(*res.certificate, v));  // double-spend
}

// --- certificates ------------------------------------------------------------------

TEST(Certificate, SerializeRoundTrip) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const auto res = bed.appraiser.appraise(bed.attester.attest({}, n), n,
                                          true, 12345);
  ASSERT_TRUE(res.certificate.has_value());
  const crypto::Bytes ser = res.certificate->serialize();
  const Certificate back =
      Certificate::deserialize(crypto::BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back.appraiser, "Appraiser");
  EXPECT_EQ(back.nonce, n);
  EXPECT_EQ(back.issued_at, 12345);
  EXPECT_TRUE(back.verify(*bed.keys.verifier_for("Appraiser")));
}

TEST(Certificate, TamperedFieldsFailVerification) {
  Bed bed;
  const crypto::Nonce n = bed.rp.challenge();
  const auto res = bed.appraiser.appraise(bed.attester.attest({}, n), n);
  Certificate cert = *res.certificate;
  const crypto::Verifier& v = *bed.keys.verifier_for("Appraiser");
  EXPECT_TRUE(cert.verify(v));
  Certificate flipped = cert;
  flipped.verdict = !flipped.verdict;
  EXPECT_FALSE(flipped.verify(v));
  Certificate redigested = cert;
  redigested.evidence_digest = crypto::sha256("other evidence");
  EXPECT_FALSE(redigested.verify(v));
}

TEST(Certificate, DeserializeRejectsGarbage) {
  const crypto::Bytes junk(10, 0xab);
  EXPECT_THROW((void)Certificate::deserialize(
                   crypto::BytesView{junk.data(), junk.size()}),
               std::exception);
}

// --- redaction -----------------------------------------------------------------------

TEST(Redaction, PseudonymsDeterministicPerUser) {
  PseudonymTable table(crypto::sha256("operator key"));
  const std::string p1 = table.pseudonym("alice", "switch1");
  EXPECT_EQ(table.pseudonym("alice", "switch1"), p1);
  EXPECT_NE(table.pseudonym("bob", "switch1"), p1);  // unlinkable across users
  EXPECT_EQ(p1.rfind("pseu-", 0), 0u);
}

TEST(Redaction, LiftRecoversRealName) {
  PseudonymTable table(crypto::sha256("operator key"));
  const std::string p = table.pseudonym("alice", "switch1");
  EXPECT_EQ(table.lift(p), "switch1");
  EXPECT_FALSE(table.lift("pseu-000000000000").has_value());
}

TEST(Redaction, PlacesRenamedInEvidence) {
  Bed bed;
  const copland::EvidencePtr e = bed.attester.attest({});
  PseudonymTable table(crypto::sha256("k"));
  RedactionPolicy policy;
  const copland::EvidencePtr red = redact(e, "alice", table, policy);
  for (const auto* m : copland::measurements_of(red)) {
    EXPECT_EQ(m->place.rfind("pseu-", 0), 0u);
  }
  // Values survive by default (the compliance officer can still check).
  EXPECT_EQ(copland::measurements_of(red)[0]->value,
            copland::measurements_of(e)[0]->value);
}

TEST(Redaction, DropClaimsAndCollapseValues) {
  Bed bed;
  const copland::EvidencePtr e = bed.attester.attest({});
  PseudonymTable table(crypto::sha256("k"));
  RedactionPolicy policy;
  policy.drop_claims = true;
  policy.collapse_measurement_values = true;
  policy.pseudonymize_targets = true;
  const copland::EvidencePtr red = redact(e, "alice", table, policy);
  for (const auto* m : copland::measurements_of(red)) {
    EXPECT_TRUE(m->claim.empty());
    EXPECT_NE(m->value, bed.program_value);
    EXPECT_EQ(m->target.rfind("pseu-", 0), 0u);
  }
}

TEST(Redaction, ResignMakesRedactionVerifiable) {
  Bed bed;
  crypto::Signer& op_signer = bed.keys.provision_hmac("operator");
  const copland::EvidencePtr e = bed.attester.attest({});
  PseudonymTable table(crypto::sha256("k"));
  const copland::EvidencePtr red = redact_and_resign(
      e, "alice", table, RedactionPolicy{}, "operator", op_signer);
  ASSERT_EQ(red->kind, copland::EvidenceKind::kSignature);
  EXPECT_EQ(red->place, "operator");
  EXPECT_TRUE(bed.keys.verifier_for("operator")
                  ->verify(copland::digest(red->child), red->sig));
}

TEST(Redaction, RedactedEvidenceFailsOriginalGoldens) {
  // Renamed places no longer match golden entries — the appraiser-facing
  // copy and the compliance-facing copy are deliberately different views.
  Bed bed;
  const copland::EvidencePtr e = bed.attester.attest({});
  PseudonymTable table(crypto::sha256("k"));
  const copland::EvidencePtr red = redact(e, "alice", table, RedactionPolicy{});
  const auto res =
      copland::appraise(red, bed.appraiser.goldens(), bed.keys);
  EXPECT_FALSE(res.ok);
}

}  // namespace
}  // namespace pera::ra
