// Tests for network-aware Copland: detail masks, the path binder (Prim1/
// Prim2), the policy compiler, and the §5.2 wire formats.
#include <gtest/gtest.h>

#include "copland/parser.h"
#include "copland/pretty.h"
#include "copland/semantics.h"
#include "copland/testbed.h"
#include "nac/binder.h"
#include "nac/compiler.h"
#include "nac/header.h"

namespace pera::nac {
namespace {

using copland::parse_request;
using copland::parse_term;
using copland::TermKind;
using copland::TermPtr;

constexpr const char* kAP1 =
    "*bank<n, X> : forall hop, client : "
    "(@hop [Khop |> attest(n, X) -> !] -<+ @Appraiser [appraise -> store(n)]) "
    "*=> @client [Kclient |> @ks [av us bmon -> !] -<- @us [bmon us exts -> !]]";
constexpr const char* kAP2 =
    "*scanner<P> : @scanner [P |> attest(P) -> !] -<+ "
    "@Appraiser [appraise -> store]";
constexpr const char* kAP3 =
    "*pathCheck<F1, F2, Peer1, Peer2> : forall p, q, r, peer1, peer2 : "
    "(@peer1 [Peer1 |> !] -<+ @p [attest(F1) -> !] -<+ @q [attest(F2) -> !] "
    "-<+ @Appraiser [appraise -> store]) *=> "
    "(@r [Q |> !] -<+ @peer2 [Peer2 |> !] -<+ @Appraiser [appraise -> store])";
constexpr const char* kSimpleStar =
    "*rp<n> : forall hop : @hop [attest(Program) -> !] *=> @Appraiser [appraise]";

// --- detail masks ------------------------------------------------------------

TEST(Detail, MaskOps) {
  const DetailMask m = EvidenceDetail::kHardware | EvidenceDetail::kTables;
  EXPECT_TRUE(has_detail(m, EvidenceDetail::kHardware));
  EXPECT_TRUE(has_detail(m, EvidenceDetail::kTables));
  EXPECT_FALSE(has_detail(m, EvidenceDetail::kPacket));
}

TEST(Detail, TargetNameMapping) {
  EXPECT_EQ(detail_from_target("Hardware"), EvidenceDetail::kHardware);
  EXPECT_EQ(detail_from_target("Program"), EvidenceDetail::kProgram);
  EXPECT_EQ(detail_from_target("Tables"), EvidenceDetail::kTables);
  EXPECT_EQ(detail_from_target("State"), EvidenceDetail::kProgState);
  EXPECT_EQ(detail_from_target("Packet"), EvidenceDetail::kPacket);
  EXPECT_EQ(detail_from_target("firewall_version"), EvidenceDetail::kProgram);
}

TEST(Detail, DescribeMask) {
  EXPECT_EQ(describe_mask(0), "none");
  EXPECT_EQ(describe_mask(kAllDetail),
            "Hardware+Program+Tables+ProgState+Packet");
}

// --- binder -------------------------------------------------------------------

TEST(Binder, SubstitutePlaces) {
  const TermPtr t = parse_term("@hop [x] -> @fixed [y]");
  const TermPtr s = substitute_places(t, {{"hop", "s1"}});
  EXPECT_EQ(copland::to_string(s), "@s1 [x] -> @fixed [y]");
}

TEST(Binder, SubstituteRespectsForallShadowing) {
  const TermPtr t = parse_term("forall hop : @hop [x]");
  const TermPtr s = substitute_places(t, {{"hop", "s1"}});
  // Bound variable is shadowed, not substituted.
  EXPECT_NE(copland::to_string(s).find("@hop"), std::string::npos);
}

TEST(Binder, BindSimpleStarExpandsPerHop) {
  const auto req = parse_request(kSimpleStar);
  PathBinding binding;
  binding.hops = {"s1", "s2", "s3"};
  const TermPtr bound = bind_path(req.body, binding);
  EXPECT_FALSE(copland::is_network_aware(bound));
  const std::string printed = copland::to_string(bound);
  for (const char* hop : {"@s1", "@s2", "@s3"}) {
    EXPECT_NE(printed.find(hop), std::string::npos) << printed;
  }
}

TEST(Binder, EmptyPathStillHasTail) {
  const auto req = parse_request(kSimpleStar);
  PathBinding binding;  // zero hops: the star matches zero elements
  const TermPtr bound = bind_path(req.body, binding);
  EXPECT_NE(copland::to_string(bound).find("@Appraiser"), std::string::npos);
}

TEST(Binder, AP1BindsHopAndClient) {
  const auto req = parse_request(kAP1);
  PathBinding binding;
  binding.hops = {"s1", "s2"};
  binding.bindings = {{"client", "laptop"}};
  const TermPtr bound = bind_path(req.body, binding);
  const std::string printed = copland::to_string(bound);
  EXPECT_NE(printed.find("@s1"), std::string::npos);
  EXPECT_NE(printed.find("@s2"), std::string::npos);
  EXPECT_NE(printed.find("@laptop"), std::string::npos);
  EXPECT_EQ(printed.find("@hop"), std::string::npos);
}

TEST(Binder, AP3NeedsAllVarsPinned) {
  const auto req = parse_request(kAP3);
  PathBinding binding;
  binding.bindings = {{"p", "s1"},
                      {"q", "s2"},
                      {"r", "s3"},
                      {"peer1", "alice"},
                      {"peer2", "bob"}};
  const TermPtr bound = bind_path(req.body, binding);
  const std::string printed = copland::to_string(bound);
  for (const char* place : {"@alice", "@s1", "@s2", "@s3", "@bob"}) {
    EXPECT_NE(printed.find(place), std::string::npos) << printed;
  }
}

TEST(Binder, UnboundVariableThrows) {
  const auto req = parse_request(kAP1);
  PathBinding binding;
  binding.hops = {"s1"};
  // client left unbound
  EXPECT_THROW((void)bind_path(req.body, binding), std::invalid_argument);
}

TEST(Binder, CompositionModeSetsFlags) {
  const auto req = parse_request(kSimpleStar);
  PathBinding chained;
  chained.hops = {"s1", "s2"};
  chained.composition = CompositionMode::kChained;
  const TermPtr c = bind_path(req.body, chained);
  ASSERT_EQ(c->kind, TermKind::kBranch);
  EXPECT_TRUE(c->pass_right);  // evidence chains into the tail

  PathBinding pointwise = chained;
  pointwise.composition = CompositionMode::kPointwise;
  const TermPtr p = bind_path(req.body, pointwise);
  EXPECT_FALSE(p->pass_right);
}

TEST(Binder, BoundPolicyEvaluates) {
  // End-to-end: bind the simple star against two hops, then run the plain
  // Copland evaluator over a testbed that has the hop components.
  const auto req = parse_request(kSimpleStar);
  PathBinding binding;
  binding.hops = {"s1", "s2"};
  const TermPtr bound = bind_path(req.body, binding);

  crypto::KeyStore keys(3);
  copland::TestbedPlatform platform(keys);
  crypto::NonceRegistry nonces(4);
  platform.install("s1", "Program", "router v1 on s1");
  platform.install("s2", "Program", "router v1 on s2");
  platform.install_default_funcs(nonces);
  copland::Evaluator ev(platform);
  const copland::EvidencePtr e =
      ev.eval(bound, req.relying_party, copland::Evidence::empty());
  EXPECT_EQ(copland::measurements_of(e).size(), 2u);
  EXPECT_EQ(copland::signatures_of(e).size(), 2u);
}

// --- compiler ------------------------------------------------------------------

TEST(Compiler, AP1Shape) {
  const CompiledPolicy p = compile(std::string(kAP1));
  EXPECT_EQ(p.relying_party, "bank");
  EXPECT_EQ(p.params, (std::vector<std::string>{"n", "X"}));
  EXPECT_EQ(p.appraiser, "Appraiser");
  ASSERT_GE(p.hops.size(), 3u);
  // First hop: the wildcard per-hop instruction.
  EXPECT_TRUE(p.hops[0].wildcard);
  EXPECT_EQ(p.hops[0].guard, "Khop");
  EXPECT_TRUE(p.hops[0].sign_evidence);
  EXPECT_TRUE(p.hops[0].out_of_band);  // collector inside star-left
  EXPECT_TRUE(has_detail(p.hops[0].detail, EvidenceDetail::kProgram));
  EXPECT_TRUE(has_detail(p.hops[0].detail, EvidenceDetail::kTables));
  EXPECT_EQ(p.wildcard_count(), 1u);
}

TEST(Compiler, AP2ScannerGuard) {
  const CompiledPolicy p = compile(std::string(kAP2));
  ASSERT_EQ(p.hops.size(), 2u);
  EXPECT_FALSE(p.hops[0].wildcard);
  EXPECT_EQ(p.hops[0].place, "scanner");
  EXPECT_EQ(p.hops[0].guard, "P");
  EXPECT_TRUE(p.hops[0].sign_evidence);
  EXPECT_TRUE(p.hops[1].is_collector);
}

TEST(Compiler, AP3PinnedPlaces) {
  const CompiledPolicy p = compile(std::string(kAP3));
  // peer1/p/q sit in the star-left -> wildcards; r/peer2 follow the star
  // and stay symbolic until deployment pins them; Appraiser is pinned.
  EXPECT_EQ(p.wildcard_count(), 3u);
  EXPECT_EQ(p.appraiser, "Appraiser");
}

TEST(Compiler, Expr3DetailFromAttestArgs) {
  const CompiledPolicy p = compile(
      std::string("*RP1<n> : @Switch [attest(Hardware -~- Program) -> # -> !] "
                  "+<+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]"));
  ASSERT_GE(p.hops.size(), 2u);
  const HopInstruction& sw = p.hops[0];
  EXPECT_EQ(sw.place, "Switch");
  EXPECT_TRUE(has_detail(sw.detail, EvidenceDetail::kHardware));
  EXPECT_TRUE(has_detail(sw.detail, EvidenceDetail::kProgram));
  EXPECT_TRUE(sw.hash_evidence);
  EXPECT_TRUE(sw.sign_evidence);
  EXPECT_FALSE(sw.out_of_band);  // appraiser is a sibling, not in star-left
}

TEST(Compiler, PolicyIdIsStable) {
  EXPECT_EQ(compile(std::string(kAP2)).policy_id,
            compile(std::string(kAP2)).policy_id);
  EXPECT_NE(compile(std::string(kAP2)).policy_id,
            compile(std::string(kAP1)).policy_id);
}

TEST(Compiler, RejectsDegeneratePolicy) {
  EXPECT_THROW((void)compile(std::string("*rp : attest(Program)")),
               CompileError);
}

// --- wire formats ------------------------------------------------------------------

class HeaderRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(HeaderRoundTrip, SerializeDeserializeIdentity) {
  const CompiledPolicy p = compile(std::string(GetParam()));
  const crypto::Nonce nonce{crypto::sha256("hdr nonce")};
  const PolicyHeader h = make_header(p, nonce, /*in_band=*/true, 3);
  const crypto::Bytes ser = h.serialize();
  const PolicyHeader back =
      PolicyHeader::deserialize(crypto::BytesView{ser.data(), ser.size()});
  EXPECT_EQ(back.flags, h.flags);
  EXPECT_EQ(back.sampling_log2, 3);
  EXPECT_EQ(back.nonce, nonce);
  EXPECT_EQ(back.policy_id, h.policy_id);
  EXPECT_EQ(back.appraiser, h.appraiser);
  ASSERT_EQ(back.hops.size(), h.hops.size());
  for (std::size_t i = 0; i < h.hops.size(); ++i) {
    EXPECT_EQ(back.hops[i], h.hops[i]) << "hop " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, HeaderRoundTrip,
                         ::testing::Values(kAP1, kAP2, kAP3, kSimpleStar));

TEST(Header, FlagsReflectOptions) {
  const CompiledPolicy p =
      compile(std::string(kAP2), CompositionMode::kPointwise);
  const PolicyHeader in_band = make_header(p, {}, true);
  EXPECT_TRUE(in_band.in_band());
  EXPECT_FALSE(in_band.chained());
  const PolicyHeader oob = make_header(
      compile(std::string(kAP2), CompositionMode::kChained), {}, false);
  EXPECT_FALSE(oob.in_band());
  EXPECT_TRUE(oob.chained());
}

TEST(Header, RejectsBadMagicAndVersion) {
  const CompiledPolicy p = compile(std::string(kAP2));
  crypto::Bytes ser = make_header(p, {}, true).serialize();
  crypto::Bytes bad_magic = ser;
  bad_magic[0] = 0;
  EXPECT_THROW((void)PolicyHeader::deserialize(
                   crypto::BytesView{bad_magic.data(), bad_magic.size()}),
               std::invalid_argument);
  crypto::Bytes bad_version = ser;
  bad_version[2] = 9;
  EXPECT_THROW((void)PolicyHeader::deserialize(
                   crypto::BytesView{bad_version.data(), bad_version.size()}),
               std::invalid_argument);
  ser.push_back(0);
  EXPECT_THROW(
      (void)PolicyHeader::deserialize(crypto::BytesView{ser.data(), ser.size()}),
      std::invalid_argument);
}

TEST(Header, InstructionsForPinnedBeatsWildcard) {
  const CompiledPolicy p = compile(std::string(kAP2));
  const PolicyHeader h = make_header(p, {}, true);
  const auto for_scanner = h.instructions_for("scanner");
  ASSERT_EQ(for_scanner.size(), 1u);
  EXPECT_EQ(for_scanner[0]->place, "scanner");
  // Another place gets no instruction (AP2 has no wildcard).
  EXPECT_TRUE(h.instructions_for("other").empty());
}

TEST(Header, WildcardAppliesEverywhere) {
  const CompiledPolicy p = compile(std::string(kSimpleStar));
  const PolicyHeader h = make_header(p, {}, true);
  EXPECT_EQ(h.instructions_for("s1").size(), 1u);
  EXPECT_EQ(h.instructions_for("s99").size(), 1u);
  EXPECT_TRUE(h.instructions_for("s1")[0]->wildcard);
}

TEST(Carrier, RoundTripAndSizes) {
  EvidenceCarrier c;
  EXPECT_EQ(c.wire_size(), 4u);
  c.add("s1", crypto::Bytes{1, 2, 3});
  c.add("s2", crypto::Bytes{4, 5});
  const crypto::Bytes ser = c.serialize();
  const EvidenceCarrier back =
      EvidenceCarrier::deserialize(crypto::BytesView{ser.data(), ser.size()});
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].place, "s1");
  EXPECT_EQ(back.records[1].evidence, (crypto::Bytes{4, 5}));
}

TEST(Carrier, RejectsTruncation) {
  EvidenceCarrier c;
  c.add("s1", crypto::Bytes{1, 2, 3});
  crypto::Bytes ser = c.serialize();
  ser.pop_back();
  EXPECT_THROW((void)EvidenceCarrier::deserialize(
                   crypto::BytesView{ser.data(), ser.size()}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pera::nac
