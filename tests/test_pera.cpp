// Tests for PERA: the measurement unit's inertia levels and epochs, the
// inertia-aware evidence cache, the evidence engine (Fig. 3 D/E), and the
// PERA switch's per-packet policy execution.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "crypto/keystore.h"
#include "nac/compiler.h"
#include "pera/pera_switch.h"

namespace pera::pera {
namespace {

using dataplane::make_router;
using dataplane::make_tcp_packet;
using dataplane::PacketSpec;

struct Bed {
  Bed() : keys(21), signer(&keys.provision_hmac("sw1")) {}

  [[nodiscard]] PeraSwitch make_switch(PeraConfig cfg = {}) {
    return PeraSwitch("sw1", make_router(), *signer, cfg);
  }

  crypto::KeyStore keys;
  crypto::Signer* signer;
};

nac::HopInstruction program_inst(bool sign = true) {
  nac::HopInstruction inst;
  inst.detail = nac::mask_of(nac::EvidenceDetail::kProgram);
  inst.sign_evidence = sign;
  return inst;
}

// --- measurement unit ----------------------------------------------------------

TEST(MeasurementUnit, LevelsProduceDistinctDigests) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const MeasurementUnit& mu = sw.measurement();
  const crypto::Bytes pkt = make_tcp_packet({}).data;
  std::set<crypto::Digest> values;
  values.insert(mu.measure(nac::EvidenceDetail::kHardware));
  values.insert(mu.measure(nac::EvidenceDetail::kProgram));
  values.insert(mu.measure(nac::EvidenceDetail::kTables));
  values.insert(mu.measure(nac::EvidenceDetail::kProgState));
  values.insert(mu.measure(nac::EvidenceDetail::kPacket, &pkt));
  EXPECT_EQ(values.size(), 5u);
}

TEST(MeasurementUnit, PacketLevelNeedsBytes) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  EXPECT_THROW((void)sw.measurement().measure(nac::EvidenceDetail::kPacket),
               std::invalid_argument);
}

TEST(MeasurementUnit, ProgramMeasurementMatchesDigest) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  EXPECT_EQ(sw.measurement().measure(nac::EvidenceDetail::kProgram),
            sw.dataplane().program().program_digest());
}

TEST(MeasurementUnit, EpochsAdvanceWithState) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  MeasurementUnit& mu = sw.measurement();
  EXPECT_EQ(mu.epoch(nac::EvidenceDetail::kHardware), 0u);
  const auto prog0 = mu.epoch(nac::EvidenceDetail::kProgram);
  sw.load_program(make_router("v2"));
  EXPECT_GT(mu.epoch(nac::EvidenceDetail::kProgram), prog0);

  const auto tab0 = mu.epoch(nac::EvidenceDetail::kTables);
  dataplane::TableEntry e;
  e.keys = {dataplane::KeyMatch::lpm(0xC0A80000, 16)};
  e.action = "forward";
  e.action_params = {2};
  sw.update_table("route", e);
  EXPECT_GT(mu.epoch(nac::EvidenceDetail::kTables), tab0);

  const auto st0 = mu.epoch(nac::EvidenceDetail::kProgState);
  sw.dataplane().registers().declare("r", 2);
  sw.dataplane().registers().write("r", 0, 1);
  EXPECT_GT(mu.epoch(nac::EvidenceDetail::kProgState), st0);
}

TEST(MeasurementUnit, SwapChangesProgramMeasurement) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const crypto::Digest before =
      sw.measurement().measure(nac::EvidenceDetail::kProgram);
  sw.load_program(dataplane::make_rogue_router("v1"));
  EXPECT_NE(sw.measurement().measure(nac::EvidenceDetail::kProgram), before);
}

// --- cache ----------------------------------------------------------------------

TEST(Cache, HitOnSecondLookup) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const crypto::Nonce n{crypto::sha256("n")};
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram), n);
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram), n);
  EXPECT_EQ(sw.cache().stats().hits, 1u);
  EXPECT_EQ(sw.cache().stats().misses, 1u);
}

TEST(Cache, FreshNonceDefeatsCache) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram),
                            crypto::Nonce{crypto::sha256("n1")});
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram),
                            crypto::Nonce{crypto::sha256("n2")});
  EXPECT_EQ(sw.cache().stats().hits, 0u);
}

TEST(Cache, ProgramSwapInvalidates) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const crypto::Nonce n{crypto::sha256("n")};
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram), n);
  sw.load_program(dataplane::make_rogue_router("v1"));
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram), n);
  EXPECT_EQ(sw.cache().stats().hits, 0u);
  EXPECT_EQ(sw.cache().stats().invalidations, 1u);
}

TEST(Cache, RegisterWriteInvalidatesStateEvidence) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  sw.dataplane().registers().declare("r", 2);
  const crypto::Nonce n{crypto::sha256("n")};
  const auto mask = nac::mask_of(nac::EvidenceDetail::kProgState);
  (void)sw.attest_challenge(mask, n);
  sw.dataplane().registers().write("r", 0, 7);
  (void)sw.attest_challenge(mask, n);
  EXPECT_EQ(sw.cache().stats().invalidations, 1u);
}

TEST(Cache, PacketLevelNeverCached) {
  EvidenceCache cache(true);
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const auto mask = nac::EvidenceDetail::kProgram | nac::EvidenceDetail::kPacket;
  cache.store(mask, {}, copland::Evidence::empty(), sw.measurement());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(mask, {}, sw.measurement()).has_value());
}

TEST(Cache, DisabledAlwaysMisses) {
  PeraConfig cfg;
  cfg.cache_enabled = false;
  Bed bed;
  PeraSwitch sw = bed.make_switch(cfg);
  const crypto::Nonce n{crypto::sha256("n")};
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram), n);
  (void)sw.attest_challenge(nac::mask_of(nac::EvidenceDetail::kProgram), n);
  EXPECT_EQ(sw.cache().stats().hits, 0u);
  EXPECT_EQ(sw.cache().stats().misses, 2u);
}

TEST(Cache, HitRate) {
  CacheStats s;
  EXPECT_EQ(s.hit_rate(), 0.0);
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

// --- engine -----------------------------------------------------------------------

TEST(Engine, CreateSignsAndBindsNonce) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const crypto::Nonce n{crypto::sha256("fresh")};
  const copland::EvidencePtr e = sw.attest_challenge(
      nac::EvidenceDetail::kHardware | nac::EvidenceDetail::kProgram, n,
      /*hash_before_sign=*/false);
  ASSERT_EQ(e->kind, copland::EvidenceKind::kSignature);
  const auto ms = copland::measurements_of(e);
  EXPECT_EQ(ms.size(), 2u);
  bool has_nonce = false;
  std::function<void(const copland::EvidencePtr&)> scan =
      [&](const copland::EvidencePtr& node) {
        if (!node) return;
        if (node->kind == copland::EvidenceKind::kNonce &&
            node->nonce == n) {
          has_nonce = true;
        }
        scan(node->child);
        scan(node->left);
        scan(node->right);
      };
  scan(e);
  EXPECT_TRUE(has_nonce);
}

TEST(Engine, HashBeforeSignCollapses) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const copland::EvidencePtr e = sw.attest_challenge(
      nac::mask_of(nac::EvidenceDetail::kProgram),
      crypto::Nonce{crypto::sha256("n")}, /*hash_before_sign=*/true);
  ASSERT_EQ(e->kind, copland::EvidenceKind::kSignature);
  EXPECT_EQ(e->child->kind, copland::EvidenceKind::kHashed);
}

TEST(Engine, GuardFailureProducesNoEvidence) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  sw.set_guard("never", [](const dataplane::ParsedPacket&) { return false; });

  nac::HopInstruction inst = program_inst();
  inst.guard = "never";
  inst.wildcard = true;
  nac::CompiledPolicy pol;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  const nac::PolicyHeader hdr = nac::make_header(pol, {}, /*in_band=*/true);

  nac::EvidenceCarrier carrier;
  const PeraResult res =
      sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), &hdr, &carrier);
  EXPECT_TRUE(res.forwarded.has_value());
  EXPECT_FALSE(res.attested);
  EXPECT_TRUE(carrier.records.empty());
  EXPECT_EQ(sw.ra_stats().guard_failures, 1u);
}

TEST(Engine, ComposeModes) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const copland::EvidencePtr a = copland::Evidence::hashed("x", crypto::sha256("a"));
  const copland::EvidencePtr b = copland::Evidence::hashed("y", crypto::sha256("b"));
  const EngineResult chained =
      sw.engine().compose(a, b, nac::CompositionMode::kChained);
  EXPECT_EQ(chained.evidence->kind, copland::EvidenceKind::kSeq);
  const EngineResult pointwise =
      sw.engine().compose(a, b, nac::CompositionMode::kPointwise);
  EXPECT_EQ(pointwise.evidence->kind, copland::EvidenceKind::kPar);
  const EngineResult empty_prior = sw.engine().compose(
      copland::Evidence::empty(), b, nac::CompositionMode::kChained);
  EXPECT_TRUE(copland::equal(empty_prior.evidence, b));
}

TEST(Engine, CostsAccrue) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::HopInstruction inst = program_inst();
  const EngineResult r =
      sw.engine().create(inst, crypto::Nonce{crypto::sha256("n")}, nullptr,
                         nullptr);
  EXPECT_GT(r.cost, 0);
  EXPECT_FALSE(r.from_cache);
  const EngineResult r2 =
      sw.engine().create(inst, crypto::Nonce{crypto::sha256("n")}, nullptr,
                         nullptr);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_LT(r2.cost, r.cost);
}

// --- PERA switch packet path ----------------------------------------------------

TEST(PeraSwitchPath, InBandAppendsToCarrier) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::CompiledPolicy pol;
  nac::HopInstruction inst = program_inst();
  inst.wildcard = true;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  const nac::PolicyHeader hdr =
      nac::make_header(pol, crypto::Nonce{crypto::sha256("n")}, true);

  nac::EvidenceCarrier carrier;
  const PeraResult res =
      sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), &hdr, &carrier);
  ASSERT_TRUE(res.forwarded.has_value());
  EXPECT_TRUE(res.attested);
  ASSERT_EQ(carrier.records.size(), 1u);
  EXPECT_EQ(carrier.records[0].place, "sw1");
  EXPECT_TRUE(res.out_of_band.empty());
  EXPECT_GT(res.inband_bytes_added, 0u);
}

TEST(PeraSwitchPath, OutOfBandEmitsEvidence) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::CompiledPolicy pol;
  nac::HopInstruction inst = program_inst();
  inst.wildcard = true;
  inst.out_of_band = true;
  pol.hops = {inst};
  pol.appraiser = "Appraiser";
  const nac::PolicyHeader hdr =
      nac::make_header(pol, crypto::Nonce{crypto::sha256("n")}, true);

  nac::EvidenceCarrier carrier;
  const PeraResult res =
      sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), &hdr, &carrier);
  EXPECT_TRUE(carrier.records.empty());
  ASSERT_EQ(res.out_of_band.size(), 1u);
  EXPECT_EQ(res.out_of_band[0].to, "Appraiser");
  const copland::EvidencePtr e = copland::decode(crypto::BytesView{
      res.out_of_band[0].evidence.data(), res.out_of_band[0].evidence.size()});
  EXPECT_EQ(e->kind, copland::EvidenceKind::kSignature);
}

TEST(PeraSwitchPath, NoHeaderMeansPlainForwarding) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  const PeraResult res =
      sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), nullptr, nullptr);
  ASSERT_TRUE(res.forwarded.has_value());
  EXPECT_FALSE(res.attested);
  EXPECT_EQ(res.ra_latency, 0);
  EXPECT_EQ(sw.ra_stats().attestations, 0u);
}

TEST(PeraSwitchPath, SamplingSkipsPackets) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::CompiledPolicy pol;
  nac::HopInstruction inst = program_inst();
  inst.wildcard = true;
  pol.hops = {inst};
  const nac::PolicyHeader hdr = nac::make_header(
      pol, crypto::Nonce{crypto::sha256("n")}, true, /*sampling_log2=*/2);

  nac::EvidenceCarrier carrier;
  int attested = 0;
  for (int i = 0; i < 16; ++i) {
    const PeraResult res =
        sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), &hdr, &carrier);
    if (res.attested) ++attested;
  }
  EXPECT_EQ(attested, 4);  // 1 in 2^2
  EXPECT_EQ(sw.ra_stats().skipped_by_sampling, 12u);
}

TEST(PeraSwitchPath, PinnedInstructionOnlyOnNamedSwitch) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::CompiledPolicy pol;
  nac::HopInstruction inst = program_inst();
  inst.place = "other-switch";
  pol.hops = {inst};
  const nac::PolicyHeader hdr = nac::make_header(pol, {}, true);
  nac::EvidenceCarrier carrier;
  const PeraResult res =
      sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), &hdr, &carrier);
  EXPECT_FALSE(res.attested);
  EXPECT_TRUE(carrier.records.empty());
}

TEST(PeraSwitchPath, DroppedPacketStillAttests) {
  // A firewall-dropped packet can still produce evidence (UC3: evidence of
  // the drop decision), but nothing is forwarded.
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::CompiledPolicy pol;
  nac::HopInstruction inst = program_inst();
  inst.wildcard = true;
  pol.hops = {inst};
  const nac::PolicyHeader hdr = nac::make_header(pol, {}, true);
  nac::EvidenceCarrier carrier;
  const PeraResult res = sw.process(
      make_tcp_packet({.ip_dst = 0xC0A80001}), &hdr, &carrier);  // no route
  EXPECT_FALSE(res.forwarded.has_value());
  EXPECT_TRUE(res.attested);
}

TEST(PeraSwitchPath, RaLatencyAccounted) {
  Bed bed;
  PeraSwitch sw = bed.make_switch();
  nac::CompiledPolicy pol;
  nac::HopInstruction inst = program_inst();
  inst.wildcard = true;
  pol.hops = {inst};
  const nac::PolicyHeader hdr = nac::make_header(pol, {}, true);
  nac::EvidenceCarrier carrier;
  const PeraResult res =
      sw.process(make_tcp_packet({.ip_dst = 0x0a000202}), &hdr, &carrier);
  EXPECT_GT(res.ra_latency, 0);
  EXPECT_EQ(sw.ra_stats().ra_time_total, res.ra_latency);
}

TEST(PeraSwitchPath, XmssSignerWorksEndToEnd) {
  crypto::KeyStore keys(31);
  crypto::Signer& signer = keys.provision_xmss("sw1", 4);
  PeraSwitch sw("sw1", make_router(), signer);
  const copland::EvidencePtr e = sw.attest_challenge(
      nac::mask_of(nac::EvidenceDetail::kProgram),
      crypto::Nonce{crypto::sha256("n")}, false);
  ASSERT_EQ(e->kind, copland::EvidenceKind::kSignature);
  EXPECT_TRUE(keys.verifier_for("sw1")->verify(copland::digest(e->child),
                                               e->sig));
}

}  // namespace
}  // namespace pera::pera
