// Tests for the confinement analysis (Rowe-style adversary confinement,
// repurposed for dataplanes per §1) and the protocol trace recorder that
// turns Fig. 2 into an assertable message sequence.
#include <gtest/gtest.h>

#include "copland/analysis.h"
#include "copland/parser.h"
#include "core/deployment.h"

namespace pera::copland {
namespace {

const std::vector<std::pair<std::string, std::string>> kCompromise = {
    {"us", "bmon"},  // the evasion tool
    {"us", "exts"},  // the payload (the actual malware)
};

TEST(Confinement, Expression1DoesNotConfine) {
  const Request req = parse_request(
      "*bank : @ks [av us bmon] -~- @us [bmon us exts]");
  const ConfinementResult res =
      analyze_confinement(req.body, "bank", kCompromise, {"av"});
  EXPECT_FALSE(res.detection_guaranteed);
  ASSERT_EQ(res.tainted.size(), 1u);
  EXPECT_EQ(res.tainted[0].asp, "bmon");
}

TEST(Confinement, Expression2Confines) {
  const Request req = parse_request(
      "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]");
  const ConfinementResult res =
      analyze_confinement(req.body, "bank", kCompromise, {"av"});
  EXPECT_TRUE(res.detection_guaranteed);
  ASSERT_EQ(res.detecting.size(), 1u);
  EXPECT_EQ(res.detecting[0].asp, "av");
  EXPECT_EQ(res.detecting[0].target, "bmon");
}

TEST(Confinement, DirectMeasurementOfPayloadAlwaysDetects) {
  // av measures exts directly: the adversary cannot repair the payload
  // without forfeiting the attack, so even a parallel policy detects.
  const Request req = parse_request(
      "*bank : @us [av us exts] -~- @us [bmon us exts]");
  const ConfinementResult res =
      analyze_confinement(req.body, "bank", kCompromise, {"av"});
  EXPECT_TRUE(res.detection_guaranteed);
}

TEST(Confinement, UnmeasuredToolEvades) {
  // bmon is never itself measured: nothing confines it.
  const Request req = parse_request("*bank : @us [bmon us exts]");
  const ConfinementResult res =
      analyze_confinement(req.body, "bank", kCompromise, {"av"});
  EXPECT_FALSE(res.detection_guaranteed);
  EXPECT_EQ(res.tainted.size(), 1u);
}

TEST(Confinement, CleanSystemHasNothingToDetect) {
  const Request req = parse_request(
      "*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]");
  const ConfinementResult res =
      analyze_confinement(req.body, "bank", {}, {"av"});
  EXPECT_FALSE(res.detection_guaranteed);  // nothing corrupt to find
  EXPECT_TRUE(res.tainted.empty());
  EXPECT_TRUE(res.detecting.empty());
}

TEST(Confinement, ToolMeasuredAfterUseEvades) {
  // Sequential, but in the wrong order: use first, then measurement.
  const Request req = parse_request(
      "*bank : @us [bmon us exts -> !] -<- @ks [av us bmon -> !]");
  const ConfinementResult res =
      analyze_confinement(req.body, "bank", kCompromise, {"av"});
  EXPECT_FALSE(res.detection_guaranteed);
}

TEST(Confinement, AgreesWithRepairVulnerabilityAnalysis) {
  for (const auto& [src, confined] :
       std::vector<std::pair<const char*, bool>>{
           {"*bank : @ks [av us bmon] -~- @us [bmon us exts]", false},
           {"*bank : @ks [av us bmon -> !] -<- @us [bmon us exts -> !]",
            true}}) {
    const Request req = parse_request(src);
    const bool vulnerable =
        !find_repair_vulnerabilities(req.body, "bank", {"av"}).empty();
    const bool detects =
        analyze_confinement(req.body, "bank", kCompromise, {"av"})
            .detection_guaranteed;
    EXPECT_EQ(vulnerable, !confined) << src;
    EXPECT_EQ(detects, confined) << src;
  }
}

}  // namespace
}  // namespace pera::copland

namespace pera::core {
namespace {

// Fig. 2 as an assertable sequence: challenge (➀), evidence (➁/➂),
// result (➃).
TEST(Trace, OutOfBandSequenceMatchesFig2) {
  Deployment dep(netsim::topo::chain(2));
  dep.provision_goldens();
  std::vector<netsim::TraceEvent> trace;
  dep.network().record_trace(&trace);

  const auto rep = dep.run_out_of_band(
      "client", "s2", nac::mask_of(nac::EvidenceDetail::kProgram));
  ASSERT_TRUE(rep.accepted);
  dep.network().record_trace(nullptr);

  std::vector<std::string> delivered;
  for (const auto& e : trace) {
    if (e.kind == netsim::TraceEvent::Kind::kDelivered) {
      delivered.push_back(e.type);
    }
  }
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], "challenge");  // ➀ RP -> switch
  EXPECT_EQ(delivered[1], "evidence");   // ➁ switch -> appraiser
  EXPECT_EQ(delivered[2], "result");     // ➃ appraiser -> RP

  // Timestamps strictly increase along the exchange.
  netsim::SimTime last = -1;
  for (const auto& e : trace) {
    EXPECT_GE(e.at, last);
    last = e.at;
  }

  const std::string rendered =
      netsim::format_trace(dep.network().topology(), trace);
  EXPECT_NE(rendered.find("client"), std::string::npos);
  EXPECT_NE(rendered.find("Appraiser"), std::string::npos);
  EXPECT_NE(rendered.find("challenge"), std::string::npos);
}

TEST(Trace, LossEventsRecorded) {
  Deployment dep(netsim::topo::chain(1));
  dep.provision_goldens();
  dep.network().set_loss(1.0, 3);
  std::vector<netsim::TraceEvent> trace;
  dep.network().record_trace(&trace);
  (void)dep.run_out_of_band("client", "s1",
                            nac::mask_of(nac::EvidenceDetail::kProgram));
  dep.network().record_trace(nullptr);
  bool saw_loss = false;
  for (const auto& e : trace) {
    if (e.kind == netsim::TraceEvent::Kind::kLost) saw_loss = true;
  }
  EXPECT_TRUE(saw_loss);
}

}  // namespace
}  // namespace pera::core
